//! APEx — accuracy-aware privacy engine for data exploration (SIGMOD 2019
//! reproduction): workspace facade crate.
//!
//! This crate re-exports the workspace's sub-crates under one roof so that
//! downstream users (and the integration tests and examples in this
//! repository) can depend on a single `apex` crate:
//!
//! * [`core`] — the privacy engine (budget, mechanism selection, transcripts)
//! * [`data`] — schema, datasets, predicates, domain partitioning
//! * [`query`] — exploration queries, accuracy specs, compiled workloads
//! * [`mech`] — the differentially private mechanism suite
//! * [`linalg`] — dense + sparse (CSR) linear algebra
//! * [`cleaning`] — the entity-resolution case study

pub use apex_cleaning as cleaning;
pub use apex_core as core;
pub use apex_data as data;
pub use apex_linalg as linalg;
pub use apex_mech as mech;
pub use apex_query as query;
