//! The Section 8 case study in one run: privately learn blocking and
//! matching formulas for entity resolution.
//!
//! ```text
//! cargo run --release -p apex-bench --example entity_resolution
//! ```
//!
//! A "cleaner" (a simulated human analyst, sampled from the paper's
//! Table 3 model) explores a labeled record-pair table through APEx only
//! — every decision it makes is based on differentially private answers —
//! and produces boolean formulas over similarity predicates. We then
//! score those formulas against the ground truth.

use apex_cleaning::strategies::{materialize_for_cleaner, run_strategy_on};
use apex_cleaning::{CleanerModel, StrategyKind};
use apex_data::synth::{citations_dataset, CitationsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let pairs = citations_dataset(&CitationsConfig {
        n_pairs: 2_000,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(2024);
    let cleaner = CleanerModel::default().sample(&mut rng);

    println!(
        "sampled cleaner: {} transforms × {} sims × {} thresholds in [{:.2}, {:.2}]",
        cleaner.transforms.len(),
        cleaner.sims.len(),
        cleaner.n_thetas,
        cleaner.theta_lo,
        cleaner.theta_hi
    );

    // Materialize the cleaner's candidate predicates once; both tasks
    // reuse it (the derivation is a per-tuple map, so DP over the derived
    // table is DP over the pairs).
    let m = materialize_for_cleaner(&pairs, &cleaner).expect("materializes");
    println!(
        "materialized {} candidate predicates over {} pairs\n",
        m.predicates.len(),
        pairs.len()
    );

    let budget = 2.0;
    let alpha = 0.08 * pairs.len() as f64;

    for kind in [StrategyKind::Bs2, StrategyKind::Ms2] {
        let out =
            run_strategy_on(kind, &m, &cleaner, budget, alpha, 5e-4, 77).expect("strategy runs");
        println!("{} (budget {budget}, α = {alpha}):", kind.name());
        println!(
            "  queries answered: {}   denied: {}   privacy spent: {:.4}",
            out.queries_answered, out.queries_denied, out.spent
        );
        println!("  selected {} predicate(s):", out.selected.len());
        for &i in &out.selected {
            println!("    {}", m.predicates[i]);
        }
        if kind.is_blocking() {
            println!(
                "  ground truth: recall = {:.3}, blocking cost = {} pairs\n",
                out.quality.recall, out.cost
            );
        } else {
            println!(
                "  ground truth: precision = {:.3}, recall = {:.3}, F1 = {:.3}\n",
                out.quality.precision, out.quality.recall, out.quality.f1
            );
        }
    }
}
