//! Optimistic vs pessimistic mechanism selection (Algorithm 1, Lines
//! 8/10) on a sequence of iceberg queries.
//!
//! ```text
//! cargo run --release -p apex-bench --example adaptive_budget
//! ```
//!
//! The multi-poking mechanism's privacy loss depends on the data: far
//! from the threshold it stops after one poke (cheap); near the
//! threshold it burns its whole worst-case allowance. Optimistic mode
//! gambles on the cheap case — this example shows both modes on the same
//! query sequence so you can watch the gamble pay off (or not).

use apex_core::{ApexEngine, EngineConfig, EngineResponse, Mode};
use apex_data::synth::adult_dataset;
use apex_data::Predicate;
use apex_query::{AccuracySpec, ExplorationQuery};

fn run(mode: Mode) -> (usize, f64) {
    let data = adult_dataset(32_561, 7);
    let n = data.len() as f64;
    let mut engine = ApexEngine::new(
        data,
        EngineConfig {
            budget: 0.5,
            mode,
            seed: 31,
        },
    );
    let acc = AccuracySpec::new(0.02 * n, 5e-4).expect("valid");

    // A sequence of iceberg queries over occupation groups at thresholds
    // increasingly close to real counts — late queries get expensive for
    // the optimist.
    let occupations = [
        "tech",
        "craft",
        "exec",
        "admin",
        "sales",
        "service",
        "machine-op",
        "transport",
    ];
    let mut answered = 0;
    for (i, frac) in [0.5, 0.3, 0.2, 0.15, 0.12, 0.1, 0.08, 0.05]
        .iter()
        .enumerate()
    {
        let workload: Vec<Predicate> = occupations
            .iter()
            .map(|o| Predicate::eq("occupation", *o))
            .collect();
        let q = ExplorationQuery::icq(workload, frac * n);
        match engine.submit(&q, &acc).expect("well-formed") {
            EngineResponse::Answered(a) => {
                answered += 1;
                println!(
                    "  [{mode:?}] q{i}: c = {:.2}|D| → {} bins over, mech {}, ε = {:.4} (εᵘ was {:.4})",
                    frac,
                    a.answer.as_bins().expect("ICQ").len(),
                    a.mechanism,
                    a.epsilon,
                    a.epsilon_upper
                );
            }
            EngineResponse::Denied => {
                println!(
                    "  [{mode:?}] q{i}: denied — remaining budget {:.4}",
                    engine.remaining()
                );
            }
        }
    }
    (answered, engine.spent())
}

fn main() {
    println!("pessimistic mode (min εᵘ — never gambles):");
    let (ans_p, spent_p) = run(Mode::Pessimistic);
    println!("\noptimistic mode (min εˡ — bets on data-dependent savings):");
    let (ans_o, spent_o) = run(Mode::Optimistic);

    println!("\nsummary under budget B = 0.5:");
    println!("  pessimistic: {ans_p} answered, {spent_p:.4} spent");
    println!("  optimistic:  {ans_o} answered, {spent_o:.4} spent");
    println!(
        "(the paper runs its evaluation in optimistic mode; Section 7.3 \
              shows a case where optimism backfires when c sits near true counts)"
    );
}
