//! Quickstart: ask accuracy-bounded questions about a sensitive table.
//!
//! ```text
//! cargo run --release -p apex-bench --example quickstart
//! ```
//!
//! The analyst writes queries in the paper's declarative syntax with an
//! `ERROR α CONFIDENCE 1−β` clause; APEx picks the cheapest private
//! mechanism, answers, and accounts the privacy loss against the owner's
//! budget.

use apex_core::{ApexEngine, EngineConfig, EngineResponse, Mode};
use apex_data::synth::adult_dataset;
use apex_query::parse_query;

fn main() {
    // The data owner loads the sensitive table and sets the budget B.
    let data = adult_dataset(32_561, 7);
    let n = data.len() as f64;
    let mut engine = ApexEngine::new(
        data,
        EngineConfig {
            budget: 1.0,
            mode: Mode::Optimistic,
            seed: 42,
        },
    );

    // The analyst asks for a histogram of capital gain with a guaranteed
    // max error of 0.5% of the table size, 99.95% of the time.
    let alpha = 0.005 * n;
    let stmt = format!(
        "BIN D ON COUNT(*) WHERE W = {{ capital_gain IN [0, 1000), capital_gain IN [1000, 2000), \
         capital_gain IN [2000, 3000), capital_gain IN [3000, 4000), capital_gain IN [4000, 5000) }} \
         ERROR {alpha} CONFIDENCE 0.9995;"
    );
    let parsed = parse_query(&stmt).expect("statement parses");
    let accuracy = parsed.accuracy.expect("statement has an accuracy clause");

    match engine
        .submit(&parsed.query, &accuracy)
        .expect("query is well-formed")
    {
        EngineResponse::Answered(a) => {
            println!(
                "mechanism: {}   privacy spent: ε = {:.5}",
                a.mechanism, a.epsilon
            );
            for (i, c) in a.answer.as_counts().expect("WCQ").iter().enumerate() {
                println!("  gain in [{}k, {}k): ~{:.0} people", i, i + 1, c.max(0.0));
            }
        }
        EngineResponse::Denied => println!("query denied — budget too small for this accuracy"),
    }

    // A follow-up iceberg query: which bins hold more than 2% of people?
    let stmt = format!(
        "BIN D ON COUNT(*) WHERE W = {{ capital_gain IN [0, 1000), capital_gain IN [1000, 2000), \
         capital_gain IN [2000, 3000), capital_gain IN [3000, 4000), capital_gain IN [4000, 5000) }} \
         HAVING COUNT(*) > {} ERROR {alpha} CONFIDENCE 0.9995;",
        0.02 * n
    );
    let parsed = parse_query(&stmt).expect("parses");
    let accuracy = parsed.accuracy.expect("has accuracy");
    if let EngineResponse::Answered(a) = engine.submit(&parsed.query, &accuracy).expect("ok") {
        println!(
            "bins over 2%: {:?}   (mechanism {}, ε = {:.5})",
            a.answer.as_bins().expect("ICQ"),
            a.mechanism,
            a.epsilon
        );
    }

    println!(
        "total spent: {:.5} of budget {:.1}  ({} answered, {} denied)",
        engine.spent(),
        engine.budget(),
        engine.transcript().answered(),
        engine.transcript().denied()
    );
    assert!(engine.transcript().is_valid(engine.budget()));
}
