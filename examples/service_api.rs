//! Drive the `apex-serve` HTTP API in-process: start the service on an
//! ephemeral port, open two analyst sessions against different tenant
//! datasets, submit queries in the paper's concrete syntax, and read the
//! budget and cache statistics back — the whole multi-tenant loop over
//! real sockets.
//!
//! Run with: `cargo run --example service_api`

use std::sync::Arc;

use apex_core::{EngineConfig, Mode};
use apex_data::synth::{adult_dataset, nytaxi_dataset};
use apex_serve::{client, router, Json, ServerState};

fn main() {
    // One shared translator cache (cap 64) behind two tenant datasets,
    // each with its own privacy budget B.
    let config = |seed: u64| EngineConfig {
        budget: 1.0,
        mode: Mode::Optimistic,
        seed,
    };
    let state = Arc::new(
        ServerState::builder(64)
            .dataset("adult", adult_dataset(5_000, 7), config(1))
            .dataset("taxi", nytaxi_dataset(5_000, 9), config(2))
            .build(),
    );
    let handler_state = state.clone();
    let handle = apex_serve::serve("127.0.0.1:0", 4, move |req| {
        router::route(&handler_state, req)
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();
    println!("serving on http://{addr}\n");

    // Open a session per tenant, each holding a slice of that tenant's B.
    let mut sessions = Vec::new();
    for dataset in ["adult", "taxi"] {
        let (status, body) = client::request(
            addr,
            "POST",
            "/v1/sessions",
            Some(&format!("{{\"dataset\":\"{dataset}\",\"budget\":0.5}}")),
        )
        .unwrap();
        let id = body.get("session").and_then(Json::as_u64).unwrap();
        println!("POST /v1/sessions ({dataset}) -> {status}: session {id}");
        sessions.push((dataset, id));
    }

    // Submit a histogram to each; the ERROR/CONFIDENCE clause carries
    // the (α, β) accuracy requirement.
    let queries = [
        "BIN adult ON COUNT(*) WHERE W = { age IN [17, 40), age IN [40, 60), age IN [60, 91) } \
         ERROR 200 CONFIDENCE 0.99;",
        "BIN taxi ON COUNT(*) WHERE W = { pickup_hour IN [0, 12), pickup_hour IN [12, 24) } \
         ERROR 200 CONFIDENCE 0.99;",
    ];
    for ((dataset, id), query) in sessions.iter().zip(&queries) {
        let body = format!("{{\"query\":{}}}", Json::from(*query).render());
        let (status, resp) = client::request(
            addr,
            "POST",
            &format!("/v1/sessions/{id}/query"),
            Some(&body),
        )
        .unwrap();
        println!(
            "POST /v1/sessions/{id}/query ({dataset}) -> {status}: mechanism {}, spent eps = {}",
            resp.get("mechanism").and_then(Json::as_str).unwrap_or("-"),
            resp.get("epsilon").and_then(Json::as_f64).unwrap_or(0.0),
        );

        let (_, budget) =
            client::request(addr, "GET", &format!("/v1/sessions/{id}/budget"), None).unwrap();
        println!(
            "GET  /v1/sessions/{id}/budget -> slice {} of {}, engine {} of {}",
            budget.get("spent").and_then(Json::as_f64).unwrap(),
            budget.get("allowance").and_then(Json::as_f64).unwrap(),
            budget
                .get("engine")
                .and_then(|e| e.get("spent"))
                .and_then(Json::as_f64)
                .unwrap(),
            budget
                .get("engine")
                .and_then(|e| e.get("budget"))
                .and_then(Json::as_f64)
                .unwrap(),
        );
    }

    // Cache statistics: global plus per-tenant scopes.
    let (_, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
    println!("\nGET /v1/stats -> {}", stats.render());

    // Graceful shutdown through the admin endpoint.
    let (status, _) = client::request(addr, "POST", "/v1/admin/shutdown", Some("{}")).unwrap();
    println!("\nPOST /v1/admin/shutdown -> {status}");
    handle.join();
    println!("server drained and stopped");
}
