//! Adaptive drill-down: the exploration pattern the paper motivates.
//!
//! ```text
//! cargo run --release -p apex-bench --example histogram_explorer
//! ```
//!
//! The analyst starts with a coarse histogram (cheap, loose accuracy),
//! finds the heaviest region, and zooms in with a finer, more accurate
//! query — letting APEx trade budget for precision query by query. Each
//! choice depends on previous *noisy* answers, which is exactly the
//! adaptively-chosen-sequence setting Theorem 6.2 covers.

use apex_core::{ApexEngine, EngineConfig, EngineResponse, Mode};
use apex_data::synth::nytaxi_dataset;
use apex_data::Predicate;
use apex_query::{AccuracySpec, ExplorationQuery};

fn main() {
    let data = nytaxi_dataset(200_000, 5);
    let n = data.len() as f64;
    let mut engine = ApexEngine::new(
        data,
        EngineConfig {
            budget: 0.01,
            mode: Mode::Optimistic,
            seed: 9,
        },
    );

    // Round 1: coarse — ten 1-mile bins, loose accuracy (1% of |D|).
    let coarse: Vec<Predicate> = (0..10)
        .map(|i| Predicate::range("trip_distance", i as f64, (i + 1) as f64))
        .collect();
    let acc = AccuracySpec::new(0.01 * n, 5e-4).expect("valid");
    let answer = match engine
        .submit(&ExplorationQuery::wcq(coarse), &acc)
        .expect("ok")
    {
        EngineResponse::Answered(a) => a,
        EngineResponse::Denied => {
            println!("coarse query denied");
            return;
        }
    };
    let counts = answer.answer.as_counts().expect("WCQ").to_vec();
    let (hot, _) = counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    println!(
        "coarse pass (ε = {:.6}): heaviest mile bucket = [{hot}, {} mi)",
        answer.epsilon,
        hot + 1
    );

    // Round 2: zoom into the heaviest mile with 0.1-mile bins and a 4×
    // tighter accuracy bound. The analyst's choice of region is
    // post-processing of a private answer — no extra privacy cost.
    let fine: Vec<Predicate> = (0..10)
        .map(|i| {
            Predicate::range(
                "trip_distance",
                hot as f64 + 0.1 * i as f64,
                hot as f64 + 0.1 * (i + 1) as f64,
            )
        })
        .collect();
    let tight = AccuracySpec::new(0.0025 * n, 5e-4).expect("valid");
    match engine
        .submit(&ExplorationQuery::wcq(fine), &tight)
        .expect("ok")
    {
        EngineResponse::Answered(a) => {
            println!("fine pass (ε = {:.6}):", a.epsilon);
            for (i, c) in a.answer.as_counts().expect("WCQ").iter().enumerate() {
                let lo = hot as f64 + 0.1 * i as f64;
                println!("  [{:.1}, {:.1}) mi: ~{:>8.0}", lo, lo + 0.1, c.max(0.0));
            }
        }
        EngineResponse::Denied => println!("fine pass denied — tighten the budget or loosen α"),
    }

    // Round 3: a deliberately extravagant request to show denial.
    let extravagant = AccuracySpec::new(5.0, 5e-4).expect("valid"); // ±5 trips of 200k!
    let one_bin = vec![Predicate::range("trip_distance", 0.0, 1.0)];
    match engine
        .submit(&ExplorationQuery::wcq(one_bin), &extravagant)
        .expect("ok")
    {
        EngineResponse::Answered(a) => println!("surprisingly answered at ε = {:.4}", a.epsilon),
        EngineResponse::Denied => {
            println!("extravagant request denied (as expected) — budget is preserved")
        }
    }

    // Round 4: revisit the coarse histogram at a few accuracy levels —
    // the classic session pattern. The workload's domain partition is
    // unchanged, so the engine's translator cache answers every
    // accuracy-to-privacy translation without redoing the O(n³)
    // pseudoinverse or the Monte-Carlo simulation.
    let coarse_again: Vec<Predicate> = (0..10)
        .map(|i| Predicate::range("trip_distance", i as f64, (i + 1) as f64))
        .collect();
    for alpha_frac in [0.02, 0.015, 0.0125] {
        let acc = AccuracySpec::new(alpha_frac * n, 5e-4).expect("valid");
        let q = ExplorationQuery::wcq(coarse_again.clone());
        if let EngineResponse::Answered(a) = engine.submit(&q, &acc).expect("ok") {
            println!("revisit at α = {:.3}|D|: ε = {:.6}", alpha_frac, a.epsilon);
        }
    }
    let stats = engine.translator_cache().stats();
    println!(
        "translator cache: {} hits, {} misses over {} distinct workloads",
        stats.hits,
        stats.misses,
        engine.translator_cache().len()
    );

    println!(
        "spent {:.6} of {:.3}; transcript valid: {}",
        engine.spent(),
        engine.budget(),
        engine.transcript().is_valid(engine.budget())
    );
}
