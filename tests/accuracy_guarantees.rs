//! Empirical validation of the `(α, β)`-accuracy contracts
//! (Definitions 3.1–3.3) for every mechanism, across repeated runs.
//!
//! β is set moderately large (0.05) so that "no failures beyond the
//! statistical allowance" is a meaningful check at a few hundred runs.

use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
use apex_mech::{
    LaplaceMechanism, LaplaceTopKMechanism, Mechanism, MultiPokingMechanism, PreparedQuery,
    StrategyMechanism,
};
use apex_query::{AccuracySpec, ExplorationQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schema() -> Schema {
    Schema::new(vec![Attribute::new(
        "v",
        Domain::IntRange { min: 0, max: 31 },
    )])
    .unwrap()
}

/// Bin counts 320, 310, …, 10 across 32 value bins.
fn staircase() -> Dataset {
    let mut d = Dataset::empty(schema());
    for v in 0..32_i64 {
        for _ in 0..(10 * (32 - v)) {
            d.push(vec![Value::Int(v)]).unwrap();
        }
    }
    d
}

fn value_bins() -> Vec<Predicate> {
    (0..32).map(|i| Predicate::eq("v", i as i64)).collect()
}

fn prefix_bins() -> Vec<Predicate> {
    (1..=32)
        .map(|i| Predicate::range("v", 0.0, i as f64))
        .collect()
}

const ALPHA: f64 = 60.0;
const BETA: f64 = 0.05;
const RUNS: usize = 300;

/// Allowed failures: a generous 3σ above the binomial mean β·RUNS.
fn failure_allowance() -> usize {
    let mean = BETA * RUNS as f64;
    (mean + 3.0 * (mean * (1.0 - BETA)).sqrt()).ceil() as usize
}

fn count_wcq_failures(mech: &dyn Mechanism, q: &PreparedQuery, d: &Dataset) -> usize {
    let acc = AccuracySpec::new(ALPHA, BETA).unwrap();
    let truth = q.compiled().true_answer(d);
    let mut rng = StdRng::seed_from_u64(0xACC);
    (0..RUNS)
        .filter(|_| {
            let out = mech.run(q, &acc, d, &mut rng).unwrap();
            let counts = out.answer.as_counts().unwrap();
            let err = counts
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            err >= ALPHA
        })
        .count()
}

#[test]
fn lm_wcq_accuracy_holds() {
    let d = staircase();
    let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(value_bins())).unwrap();
    let failures = count_wcq_failures(&LaplaceMechanism, &q, &d);
    assert!(
        failures <= failure_allowance(),
        "{failures} failures in {RUNS} runs"
    );
}

#[test]
fn sm_wcq_accuracy_holds_on_prefixes() {
    let d = staircase();
    let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(prefix_bins())).unwrap();
    let failures = count_wcq_failures(&StrategyMechanism::h2(), &q, &d);
    assert!(
        failures <= failure_allowance(),
        "{failures} failures in {RUNS} runs"
    );
}

/// ICQ contract: bins with count > c+α always in, bins < c−α always out.
fn count_icq_failures(mech: &dyn Mechanism, c: f64) -> usize {
    let d = staircase();
    let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::icq(value_bins(), c)).unwrap();
    let acc = AccuracySpec::new(ALPHA, BETA).unwrap();
    let truth = q.compiled().true_answer(&d);
    let mut rng = StdRng::seed_from_u64(0x1C9);
    (0..RUNS)
        .filter(|_| {
            let out = mech.run(&q, &acc, &d, &mut rng).unwrap();
            let bins: std::collections::HashSet<usize> =
                out.answer.as_bins().unwrap().iter().copied().collect();
            truth.iter().enumerate().any(|(i, &t)| {
                (t > c + ALPHA && !bins.contains(&i)) || (t < c - ALPHA && bins.contains(&i))
            })
        })
        .count()
}

#[test]
fn lm_icq_accuracy_holds() {
    let failures = count_icq_failures(&LaplaceMechanism, 150.0);
    assert!(failures <= failure_allowance(), "{failures} failures");
}

#[test]
fn sm_icq_accuracy_holds() {
    let failures = count_icq_failures(&StrategyMechanism::h2(), 150.0);
    assert!(failures <= failure_allowance(), "{failures} failures");
}

#[test]
fn mpm_icq_accuracy_holds() {
    let failures = count_icq_failures(&MultiPokingMechanism::default(), 150.0);
    assert!(failures <= failure_allowance(), "{failures} failures");
}

/// TCQ contract relative to ck (Definition 3.3).
fn count_tcq_failures(mech: &dyn Mechanism, k: usize) -> usize {
    let d = staircase();
    let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::tcq(value_bins(), k)).unwrap();
    let acc = AccuracySpec::new(ALPHA, BETA).unwrap();
    let truth = q.compiled().true_answer(&d);
    let mut sorted = truth.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let ck = sorted[k - 1];
    let mut rng = StdRng::seed_from_u64(0x7C9);
    (0..RUNS)
        .filter(|_| {
            let out = mech.run(&q, &acc, &d, &mut rng).unwrap();
            let bins: std::collections::HashSet<usize> =
                out.answer.as_bins().unwrap().iter().copied().collect();
            // Violation: returned bin with count < ck−α, or excluded bin
            // with count > ck+α.
            truth.iter().enumerate().any(|(i, &t)| {
                (bins.contains(&i) && t < ck - ALPHA) || (!bins.contains(&i) && t > ck + ALPHA)
            })
        })
        .count()
}

#[test]
fn lm_tcq_accuracy_holds() {
    let failures = count_tcq_failures(&LaplaceMechanism, 5);
    assert!(failures <= failure_allowance(), "{failures} failures");
}

#[test]
fn ltm_tcq_accuracy_holds() {
    let failures = count_tcq_failures(&LaplaceTopKMechanism, 5);
    assert!(failures <= failure_allowance(), "{failures} failures");
}

#[test]
fn accuracy_contract_is_uniform_over_datasets() {
    // Definition 3.1 quantifies over every D; spot-check LM's WCQ bound
    // on three very different shapes.
    let shapes: [&dyn Fn() -> Dataset; 3] = [
        &staircase,
        &|| {
            // All mass in one bin.
            let mut d = Dataset::empty(schema());
            for _ in 0..5_000 {
                d.push(vec![Value::Int(0)]).unwrap();
            }
            d
        },
        &|| Dataset::empty(schema()), // empty data: pure noise
    ];
    for (si, make) in shapes.iter().enumerate() {
        let d = make();
        let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(value_bins())).unwrap();
        let failures = count_wcq_failures(&LaplaceMechanism, &q, &d);
        assert!(
            failures <= failure_allowance(),
            "shape {si}: {failures} failures"
        );
    }
}

#[test]
fn translation_is_the_minimal_cost_for_lm() {
    // Minimality (Theorem 5.2): running LM at 0.8× the translated ε must
    // observably violate the accuracy bound more often than β allows.
    let d = staircase();
    let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(value_bins())).unwrap();
    let acc = AccuracySpec::new(ALPHA, BETA).unwrap();
    let eps = LaplaceMechanism.translate(&q, &acc).unwrap().upper;
    // Simulate the cheaper mechanism by scaling α up by the same factor
    // (equivalent to shrinking ε) and measuring failures against ALPHA.
    let cheat = AccuracySpec::new(ALPHA / 0.7, BETA).unwrap();
    let cheat_eps = LaplaceMechanism.translate(&q, &cheat).unwrap().upper;
    assert!(cheat_eps < eps);
    let truth = q.compiled().true_answer(&d);
    let mut rng = StdRng::seed_from_u64(0x31);
    let failures = (0..RUNS)
        .filter(|_| {
            let out = LaplaceMechanism.run(&q, &cheat, &d, &mut rng).unwrap();
            let err = out
                .answer
                .as_counts()
                .unwrap()
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            err >= ALPHA
        })
        .count();
    assert!(
        failures > failure_allowance(),
        "under-budgeted mechanism should fail noticeably, got {failures}"
    );
}
