//! Service-layer integration tests: the multi-tenant invariants under
//! real concurrency, both at the library seam (`SharedEngine` +
//! `EngineSession` hammered from 8 threads) and end to end through the
//! HTTP server loop (the `--self-test` plumbing on an ephemeral port) —
//! plus the durability contract: kill the server mid-workload, restart
//! from disk, and the recovered ledger must equal the sum of responses
//! the clients were actually acked (HISTEX-style history checking
//! against the ledger invariant).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use apex_core::{
    ApexEngine, EngineConfig, EngineSession, Mode, PendingCharge, SharedEngine, TranslatorCache,
};
use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
use apex_query::{AccuracySpec, ExplorationQuery};
use apex_serve::state::{start_reaper, PersistOptions, SubmitOutcome};
use apex_serve::{Json, ManualClock, ServerState};

fn dataset(n_values: i64, rows_per_value: usize) -> Dataset {
    let schema = Schema::new(vec![Attribute::new(
        "v",
        Domain::IntRange {
            min: 0,
            max: n_values - 1,
        },
    )])
    .unwrap();
    let mut d = Dataset::empty(schema);
    for i in 0..n_values {
        for _ in 0..rows_per_value {
            d.push(vec![Value::Int(i)]).unwrap();
        }
    }
    d
}

fn histogram(n_values: i64, bins: usize) -> ExplorationQuery {
    ExplorationQuery::wcq(
        (0..bins)
            .map(|i| {
                Predicate::range(
                    "v",
                    (n_values as usize * i / bins) as f64,
                    (n_values as usize * (i + 1) / bins) as f64,
                )
            })
            .collect(),
    )
}

/// Eight threads, each with its own session slice, all slamming one
/// engine: joint spend must never exceed `B`, each session must stay
/// within its slice, and the ledger must balance exactly.
#[test]
fn eight_threads_never_overshoot_budget_or_slices() {
    const B: f64 = 0.5;
    let engine = SharedEngine::new(ApexEngine::new(
        dataset(16, 8),
        EngineConfig {
            budget: B,
            mode: Mode::Pessimistic,
            seed: 11,
        },
    ));
    // Slices oversubscribe B threefold, so both admission bounds bite.
    let sessions: Vec<EngineSession> = (0..8).map(|_| engine.session(B * 3.0 / 8.0)).collect();
    let acc = AccuracySpec::new(60.0, 0.01).unwrap();
    std::thread::scope(|s| {
        for sess in &sessions {
            s.spawn(|| {
                let q = histogram(16, 8);
                for _ in 0..12 {
                    // Interleave submissions with budget reads; a read
                    // must never observe an overshoot mid-flight.
                    let _ = sess.submit(&q, &acc).unwrap();
                    assert!(sess.spent() <= sess.allowance() + 1e-9);
                    assert!(sess.engine().spent() <= B + 1e-9);
                }
            });
        }
    });
    let joint: f64 = sessions.iter().map(EngineSession::spent).sum();
    assert!(engine.spent() <= B + 1e-9, "spent {}", engine.spent());
    assert!((joint - engine.spent()).abs() < 1e-9, "ledger must balance");
    assert!(joint > 0.0, "the workload must actually answer something");
    engine.with_engine(|e| assert!(e.transcript().is_valid(B)));
}

/// Concurrent cache warms across engines sharing one `TranslatorCache`:
/// every thread must see the same (data-independent) worst-case ε for
/// the same workload — a cache hit must verify as identical to a fresh
/// build — and the counters must account for every lookup.
#[test]
fn concurrent_cache_warms_are_verify_on_hit_consistent() {
    let cache = TranslatorCache::with_capacity(32);
    let engines: Vec<SharedEngine> = (0..8)
        .map(|i| {
            SharedEngine::new(ApexEngine::with_translator_cache(
                dataset(32, 4),
                EngineConfig {
                    budget: 50.0,
                    mode: Mode::Pessimistic,
                    seed: 100 + i,
                },
                cache.scoped(),
            ))
        })
        .collect();
    let acc = AccuracySpec::new(25.0, 0.01).unwrap();
    let uppers: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = engines
            .iter()
            .map(|e| {
                s.spawn(move || {
                    let q = histogram(32, 16);
                    let r = e.submit(&q, &acc).unwrap();
                    r.answered().expect("budget is ample").epsilon_upper
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // All eight saw the very same translation, whether they built the
    // artifacts or hit a concurrent warm.
    for w in uppers.windows(2) {
        assert_eq!(w[0], w[1], "cache hit diverged from fresh build");
    }
    let stats = cache.stats();
    assert!(stats.hits + stats.misses >= 8, "{stats:?}");
    assert!(stats.misses >= 1, "{stats:?}");
    // A fresh engine re-running the workload from cache agrees too.
    let mut fresh = ApexEngine::with_translator_cache(
        dataset(32, 4),
        EngineConfig {
            budget: 50.0,
            mode: Mode::Pessimistic,
            seed: 999,
        },
        cache.scoped(),
    );
    let r = fresh.submit(&histogram(32, 16), &acc).unwrap();
    assert_eq!(r.answered().unwrap().epsilon_upper, uppers[0]);
    // The warm entry definitely existed by now, so the fresh engine's
    // translation must have been a hit (concurrent first submits may all
    // race to build — hits only become guaranteed once a warm settles).
    assert!(cache.stats().hits >= 1, "{:?}", cache.stats());
}

/// HISTEX-style interleaving (PAPERS.md): drive a concurrent *history*
/// against the two-phase protocol and check the outcome contract. N
/// sessions evaluate concurrently against the untouched ledger — all
/// fit, nothing is charged — then the commits race; the budget fits
/// exactly one worst case, so exactly one commit wins and every loser
/// is denied **at the commit point**, with `spent ≤ B` throughout and
/// the ledger balancing the slices exactly.
#[test]
fn concurrent_evaluates_racing_one_commit_deny_losers() {
    let acc = AccuracySpec::new(60.0, 0.01).unwrap();
    let q = histogram(16, 8);
    let mk = |budget: f64| {
        SharedEngine::new(ApexEngine::new(
            dataset(16, 8),
            EngineConfig {
                budget,
                mode: Mode::Pessimistic,
                seed: 31,
            },
        ))
    };
    // Learn the (deterministic, data-independent) worst case, then size
    // B to fit exactly one of them.
    let upper = mk(100.0)
        .evaluate(&q, &acc)
        .unwrap()
        .epsilon_upper()
        .unwrap();
    let b = upper * 1.5;
    let engine = mk(b);
    let sessions: Vec<EngineSession> = (0..6).map(|_| engine.session(upper * 2.0)).collect();

    // Phase 1: six concurrent evaluates, all against the full budget.
    let pendings: Vec<PendingCharge> = std::thread::scope(|s| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|sess| {
                let q = q.clone();
                s.spawn(move || sess.evaluate(&q, &acc).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for p in &pendings {
        assert!(
            p.epsilon_upper().is_some(),
            "every evaluate fits the untouched ledger"
        );
    }
    assert_eq!(engine.spent(), 0.0, "speculation must charge nothing");

    // Phase 2: the commits race from six threads. Whoever linearizes
    // first exhausts the budget; every later commit must re-check and
    // deny. `spent ≤ B` is asserted mid-race from every thread.
    let denials: Vec<bool> = std::thread::scope(|s| {
        let engine = &engine;
        let handles: Vec<_> = sessions
            .iter()
            .zip(pendings)
            .map(|(sess, pending)| {
                s.spawn(move || {
                    let denied = sess.commit(pending).unwrap().is_denied();
                    assert!(engine.spent() <= b + 1e-9, "overshoot mid-race");
                    denied
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let answered = denials.iter().filter(|d| !**d).count();
    assert_eq!(answered, 1, "B fits exactly one worst case");
    assert_eq!(denials.len() - answered, 5, "losers deny at commit");
    assert!(engine.spent() <= b + 1e-9, "spent {}", engine.spent());
    let joint: f64 = sessions.iter().map(EngineSession::spent).sum();
    assert!((joint - engine.spent()).abs() < 1e-9, "ledger must balance");
    engine.with_engine(|e| {
        assert!(e.transcript().is_valid(b));
        assert_eq!(e.transcript().len(), 6, "every commit leaves a trace");
    });
}

/// The server loop end to end, via the same plumbing `--self-test`
/// drives in CI: concurrent sessions over real sockets, budget
/// conservation, protocol discipline, cross-session cache hits — and
/// the compaction-pause scenario (forced WAL rotations must complete
/// while a slow query is still evaluating).
#[test]
fn http_self_test_passes() {
    let report = apex_serve::run_self_test(apex_serve::SelfTestConfig {
        server_threads: 4,
        shards: 2,
        sessions: 8,
        submits: 5,
        rows: 500,
        cache_cap: 32,
        state_dir: None,
        data_dir: None,
        slow_query_prefixes: 64,
    })
    .expect("self-test invariants must hold");
    assert!(report.answered > 0);
    assert_eq!(
        report.datasets_synthesized, 2,
        "a fresh data dir ingests the paged tenants"
    );
    assert!(
        report.store_pool_hits > 0,
        "paged rescans must be served from the buffer pool"
    );
    assert!(report.denied > 0, "oversubscription must force denials");
    assert!(report.cache_hits > 0, "sessions must share warm artifacts");
    assert!(
        report.recovery_replayed > 0,
        "the self-test must exercise restart recovery"
    );
    for (name, spent, budget) in &report.budgets {
        assert!(
            spent <= &(budget + 1e-9),
            "{name} overshot: {spent} > {budget}"
        );
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    std::env::temp_dir().join(format!("apex-it-{tag}-{}-{nanos}", std::process::id()))
}

fn service_dataset() -> Dataset {
    dataset(16, 8)
}

fn try_durable_state(
    dir: &PathBuf,
    budget: f64,
    truncate_corrupt: bool,
) -> Result<(ServerState, apex_serve::RecoveryReport), apex_serve::RecoverError> {
    ServerState::builder(16)
        .dataset(
            "demo",
            service_dataset(),
            EngineConfig {
                budget,
                mode: Mode::Pessimistic,
                seed: 77,
            },
        )
        .build_recovered(PersistOptions {
            sync: false, // tests trade per-record fsync for speed
            truncate_corrupt,
            ..PersistOptions::new(dir)
        })
}

fn durable_state(dir: &PathBuf, budget: f64) -> (ServerState, apex_serve::RecoveryReport) {
    try_durable_state(dir, budget, false).expect("recovery must succeed")
}

/// The acceptance-criterion test: a concurrent workload over real
/// sockets, the server hard-dropped mid-flight (no graceful admin
/// shutdown, no final compaction, a torn half-record left on the WAL
/// tail exactly as a crash mid-append would), restarted from disk — and
/// the recovered spent budget equals the Σε of the responses clients
/// were **acked**, never less.
#[test]
fn crash_recovery_preserves_every_acked_debit() {
    const B: f64 = 0.5;
    let dir = temp_dir("crash");
    let acked: Vec<f64> = {
        let (state, _) = durable_state(&dir, B);
        let state = Arc::new(state);
        let handler = state.clone();
        let handle = apex_serve::serve("127.0.0.1:0", 4, move |req| {
            apex_serve::router::route(&handler, req)
        })
        .unwrap();
        let addr = handle.addr();

        // Six concurrent analysts, oversubscribed slices, real sockets.
        let sums = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    scope.spawn(move || {
                        let body = format!("{{\"dataset\":\"demo\",\"budget\":{}}}", B / 2.0);
                        let (status, created) =
                            apex_serve::client::request(addr, "POST", "/v1/sessions", Some(&body))
                                .unwrap();
                        assert_eq!(status, 201);
                        let id = created.get("session").and_then(Json::as_u64).unwrap();
                        let mut acked_sum = 0.0;
                        for _ in 0..6 {
                            let q = "{\"query\":\"BIN demo ON COUNT(*) WHERE W = \
                                     { v IN [0, 8), v IN [8, 16) } ERROR 40 CONFIDENCE 0.95;\"}";
                            let (status, resp) = apex_serve::client::request(
                                addr,
                                "POST",
                                &format!("/v1/sessions/{id}/query"),
                                Some(q),
                            )
                            .unwrap();
                            match status {
                                // Only what was ACKED counts: the ε in a
                                // 200 response the client actually read.
                                200 => {
                                    acked_sum += resp.get("epsilon").and_then(Json::as_f64).unwrap()
                                }
                                409 => {}
                                other => panic!("protocol violation: {other}"),
                            }
                        }
                        acked_sum
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<f64>>()
        });

        // Hard drop: stop accepting and tear the server down with NO
        // graceful flush or compaction…
        handle.stop();
        handle.join();
        sums
        // …and `state` is dropped here without any shutdown hook.
    };
    let acked_sum: f64 = acked.iter().sum();
    assert!(acked_sum > 0.0, "the workload must answer something");

    // Simulate the torn tail a mid-append crash leaves behind.
    let gens = apex_serve::snapshot::list_wal_gens(&dir).unwrap();
    let wal = apex_serve::snapshot::wal_path(&dir, *gens.last().unwrap());
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0x02, 0x00, 0x00]); // half a frame header
    std::fs::write(&wal, &bytes).unwrap();

    // Restart from disk: the torn tail is truncated, every acked debit
    // replays, and the ledger matches the acked sum exactly (never
    // less — losing an acked charge would silently refill B).
    let (recovered, report) = durable_state(&dir, B);
    assert!(report.truncated.is_some(), "the torn tail must be detected");
    let spent = recovered.tenant("demo").unwrap().engine.spent();
    assert!(
        spent >= acked_sum - 1e-9,
        "recovered ledger {spent} lost acked budget {acked_sum}"
    );
    assert!(
        (spent - acked_sum).abs() < 1e-9,
        "recovered ledger {spent} must equal the acked sum {acked_sum}"
    );
    assert!(spent <= B + 1e-9, "recovery must never refill past B");
    // The restored sessions resume mid-slice: their joint spend balances
    // the engine ledger.
    let joint: f64 = (1..=6)
        .filter_map(|id| recovered.with_session(id, |s| s.session.spent()))
        .sum();
    assert!(
        (joint - spent).abs() < 1e-9,
        "restored slices {joint} must balance the ledger {spent}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A checksum-corrupt tail (bit rot, not a torn write) refuses recovery
/// by default and, with explicit consent, truncates at the last valid
/// record — the damaged record is dropped, never partially replayed.
#[test]
fn corrupt_wal_tail_refuses_then_truncates_with_consent() {
    const B: f64 = 0.5;
    let dir = temp_dir("corrupt");
    let spent_live = {
        let (state, _) = durable_state(&dir, B);
        let id = state.create_session("demo", 0.4).unwrap().unwrap();
        let q = histogram(16, 2);
        let acc = AccuracySpec::new(40.0, 0.05).unwrap();
        for _ in 0..3 {
            match state.submit(id, &q, &acc).unwrap() {
                SubmitOutcome::Response(_) => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
        state.tenant("demo").unwrap().engine.spent()
    };
    assert!(spent_live > 0.0);

    // Flip one bit inside the final WAL record.
    let gens = apex_serve::snapshot::list_wal_gens(&dir).unwrap();
    let wal = apex_serve::snapshot::wal_path(&dir, *gens.last().unwrap());
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    std::fs::write(&wal, &bytes).unwrap();

    // Default policy: refuse to start.
    let refused = try_durable_state(&dir, B, false);
    assert!(
        matches!(
            refused,
            Err(apex_serve::RecoverError::CorruptWalTail { .. })
        ),
        "corrupt tails must refuse by default"
    );

    // With consent: truncate at the last valid record. The damaged final
    // debit is dropped (truncated, not replayed), so the ledger is a
    // strict prefix of the live run — less than the live spend, and
    // consistent with the surviving records.
    let (recovered, report) = try_durable_state(&dir, B, true).unwrap();
    assert!(report.truncated.is_some());
    let spent = recovered.tenant("demo").unwrap().engine.spent();
    assert!(
        spent < spent_live - 1e-12,
        "the damaged record must not have been replayed"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// TTL semantics with the injectable clock: an expired session's queries
/// get 410 at the router, its unspent slice is reclaimed exactly once,
/// and the tombstone distinguishes 410 from 404.
#[test]
fn ttl_expiry_is_exactly_once_and_visible_as_410() {
    let clock = ManualClock::new();
    let state = Arc::new(
        ServerState::builder(16)
            .dataset(
                "demo",
                service_dataset(),
                EngineConfig {
                    budget: 2.0,
                    mode: Mode::Pessimistic,
                    seed: 5,
                },
            )
            .clock(Arc::new(clock.clone()))
            .session_ttl(Duration::from_millis(100))
            .build(),
    );
    let id = state.create_session("demo", 0.5).unwrap().unwrap();
    let q = histogram(16, 4);
    let acc = AccuracySpec::new(40.0, 0.05).unwrap();
    match state.submit(id, &q, &acc).unwrap() {
        SubmitOutcome::Response(r) => assert!(!r.is_denied()),
        other => panic!("unexpected: {other:?}"),
    }
    let spent = state.with_session(id, |s| s.session.spent()).unwrap();

    clock.advance(101);
    let reaped = state.reap_expired().unwrap();
    assert_eq!(reaped.len(), 1);
    assert!((reaped[0].1 - (0.5 - spent)).abs() < 1e-12);
    // Exactly once: the tenant pool saw one release, and repeats add 0.
    let reclaimed = state.tenant("demo").unwrap().reclaimed();
    assert!((reclaimed - (0.5 - spent)).abs() < 1e-12);
    assert!(state.reap_expired().unwrap().is_empty());
    assert_eq!(state.expire_session(id).unwrap(), None);
    assert_eq!(state.tenant("demo").unwrap().reclaimed(), reclaimed);

    // Router-visible: queries to the corpse are 410 Gone, unknown ids
    // stay 404.
    let q_body = "{\"query\":\"BIN demo ON COUNT(*) WHERE { v IN [0, 16) } \
                  ERROR 40 CONFIDENCE 0.95;\"}";
    let resp = apex_serve::router::route(
        &state,
        &apex_serve::Request::new("POST", &format!("/v1/sessions/{id}/query"), q_body),
    );
    assert_eq!(resp.status, 410, "{}", resp.body);
    let resp = apex_serve::router::route(
        &state,
        &apex_serve::Request::new("POST", "/v1/sessions/999/query", q_body),
    );
    assert_eq!(resp.status, 404, "{}", resp.body);
}

/// The 8-thread hammer with the reaper running: sessions churn (expire
/// mid-flight, new ones open), time is cranked by hand, and the engine
/// must still never overshoot `B` while every released slice is released
/// exactly once.
#[test]
fn hammer_with_reaper_never_overshoots_budget() {
    const B: f64 = 0.5;
    let clock = ManualClock::new();
    let state = Arc::new(
        ServerState::builder(16)
            .dataset(
                "demo",
                service_dataset(),
                EngineConfig {
                    budget: B,
                    mode: Mode::Pessimistic,
                    seed: 21,
                },
            )
            .clock(Arc::new(clock.clone()))
            .session_ttl(Duration::from_millis(3))
            .build(),
    );
    let reaper = start_reaper(state.clone(), Duration::from_millis(1));

    let acc = AccuracySpec::new(60.0, 0.05).unwrap();
    std::thread::scope(|scope| {
        for t in 0..8 {
            let state = state.clone();
            let clock = clock.clone();
            scope.spawn(move || {
                let q = histogram(16, 8);
                let mut id = None;
                for i in 0..12 {
                    // Every worker cranks the clock, so TTLs keep firing
                    // mid-hammer (8 workers × 12 ticks ≫ the 3 ms TTL);
                    // worker-side reaps make expiry deterministic even
                    // if the real-time reaper thread lags.
                    clock.advance(1);
                    let _ = state.reap_expired();
                    let sid = match id {
                        Some(sid) => sid,
                        None => {
                            let sid = state
                                .create_session("demo", B * 3.0 / 8.0)
                                .unwrap()
                                .expect("dataset exists");
                            id = Some(sid);
                            sid
                        }
                    };
                    match state.submit(sid, &q, &acc).unwrap() {
                        SubmitOutcome::Response(_) => {}
                        // Expired under us: open a fresh session and
                        // keep hammering.
                        SubmitOutcome::Gone => id = None,
                        SubmitOutcome::NoSuchSession => {
                            panic!("thread {t} iteration {i}: issued id vanished")
                        }
                    }
                    // Mid-flight: never over B, whatever the reaper does.
                    let spent = state.tenant("demo").unwrap().engine.spent();
                    assert!(spent <= B + 1e-9, "OVERSHOOT mid-flight: {spent}");
                }
            });
        }
    });
    // Quiesce: everything still live goes idle past the TTL.
    clock.advance(10);
    state.reap_expired().unwrap();
    reaper.stop();

    let tenant = state.tenant("demo").unwrap();
    let spent = tenant.engine.spent();
    assert!(spent <= B + 1e-9, "spent {spent} > B {B}");
    assert!(spent > 0.0, "the hammer must answer something");
    assert!(state.expired_count() > 0, "sessions must have expired");
    assert_eq!(state.session_count(), 0, "everything idles out in the end");
    // Exactly-once release accounting: granted allowance splits exactly
    // into spent + reclaimed (every closed slice returned its remainder
    // once — a double release would push reclaimed past this identity).
    let granted = state.expired_count() as f64 * (B * 3.0 / 8.0);
    assert!(
        (tenant.reclaimed() + spent - granted).abs() < 1e-9,
        "granted {granted} must equal spent {spent} + reclaimed {} exactly",
        tenant.reclaimed()
    );
    tenant.engine.with_engine(|e| {
        assert!(
            e.transcript().is_valid(B),
            "transcript validity under churn"
        )
    });
}

/// Sharded crash recovery: traffic on every shard of a 4-shard server,
/// hard-dropped with sessions still open (no graceful shutdown, no
/// compaction), restarted from the per-shard WALs — and every shard's
/// recovered ledger must independently equal what that shard's tenants
/// were acked on the wire, with the aggregate grant accounting
/// balancing to the last slice.
#[test]
fn sharded_crash_recovery_preserves_every_shards_acked_debits() {
    use apex_serve::shard::session_shard;
    use apex_serve::{serve_sharded, ServeConfig, ShardRing, ShardSet};

    const SHARDS: usize = 4;
    const B: f64 = 4.0; // per-tenant budget
    const SLICE: f64 = 0.25; // per-session allowance

    // Enough tenants that consistent hashing gives every shard at least
    // one; the ring is the same construction the server uses, so the
    // ownership map here matches routing exactly.
    let ring = ShardRing::new(SHARDS);
    let names: Vec<String> = (0..4 * SHARDS).map(|i| format!("crash_{i}")).collect();
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); SHARDS];
    for (t, name) in names.iter().enumerate() {
        owned[ring.shard_for(name)].push(t);
    }
    assert!(
        owned.iter().all(|o| !o.is_empty()),
        "every shard needs traffic for a per-shard recovery check"
    );

    let dir = temp_dir("shard-crash");
    let build = |root: &PathBuf| {
        ShardSet::recover(
            root,
            SHARDS,
            |k| {
                let mut b = ServerState::builder(16);
                for name in &names {
                    b = b.dataset(
                        name,
                        service_dataset(),
                        EngineConfig {
                            budget: B,
                            mode: Mode::Pessimistic,
                            seed: 77 ^ (k as u64),
                        },
                    );
                }
                b
            },
            |d| PersistOptions {
                sync: false, // tests trade per-record fsync for speed
                ..PersistOptions::new(d)
            },
        )
        .expect("shard recovery must succeed")
    };

    // Per tenant: (sessions opened, Σε acked); per thread: the session
    // left open at the crash and the ε acked on it.
    let mut acked: Vec<(usize, f64)> = vec![(0, 0.0); names.len()];
    let mut left_open: Vec<(u64, usize, f64)> = Vec::new();
    {
        let (set, _) = build(&dir);
        let set = Arc::new(set);
        let handle = serve_sharded(
            "127.0.0.1:0",
            set.clone(),
            ServeConfig {
                workers_per_shard: 2,
                ..ServeConfig::default()
            },
        )
        .expect("bind sharded server");
        let addr = handle.addr();

        let per_thread = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SHARDS)
                .map(|k| {
                    let owned = &owned;
                    let names = &names;
                    scope.spawn(move || {
                        let mut acked: Vec<(usize, f64)> = vec![(0, 0.0); names.len()];
                        let mut open = None;
                        for round in 0..3 {
                            let t = owned[k][round % owned[k].len()];
                            let name = &names[t];
                            let body = format!("{{\"dataset\":\"{name}\",\"budget\":{SLICE}}}");
                            let (status, created) = apex_serve::client::request(
                                addr,
                                "POST",
                                "/v1/sessions",
                                Some(&body),
                            )
                            .unwrap();
                            assert_eq!(status, 201, "open on shard {k}: {created:?}");
                            let id = created.get("session").and_then(Json::as_u64).unwrap();
                            assert_eq!(session_shard(id), k, "routing must respect the ring");
                            acked[t].0 += 1;
                            let mut session_eps = 0.0;
                            for _ in 0..2 {
                                let q = format!(
                                    "{{\"query\":\"BIN {name} ON COUNT(*) WHERE W = \
                                     {{ v IN [0, 8), v IN [8, 16) }} \
                                     ERROR 40 CONFIDENCE 0.95;\"}}"
                                );
                                let (status, resp) = apex_serve::client::request(
                                    addr,
                                    "POST",
                                    &format!("/v1/sessions/{id}/query"),
                                    Some(&q),
                                )
                                .unwrap();
                                match status {
                                    // Only what was ACKED counts.
                                    200 => {
                                        let eps =
                                            resp.get("epsilon").and_then(Json::as_f64).unwrap();
                                        acked[t].1 += eps;
                                        session_eps += eps;
                                    }
                                    409 => {}
                                    other => panic!("protocol violation: {other}"),
                                }
                            }
                            if round + 1 < 3 {
                                let (status, _) = apex_serve::client::request(
                                    addr,
                                    "POST",
                                    &format!("/v1/sessions/{id}/close"),
                                    Some("{}"),
                                )
                                .unwrap();
                                assert_eq!(status, 200, "close on shard {k}");
                            } else {
                                // The crash happens with this one live.
                                open = Some((id, t, session_eps));
                            }
                        }
                        (acked, open.expect("one session stays open"))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for (per_tenant, open) in per_thread {
            for (t, (opened, eps)) in per_tenant.into_iter().enumerate() {
                acked[t].0 += opened;
                acked[t].1 += eps;
            }
            left_open.push(open);
        }

        // Hard drop: no graceful shutdown, no final compaction — the
        // per-shard WAL tails are exactly what a crash leaves.
        handle.stop();
        handle.join();
    }
    let total_acked: f64 = acked.iter().map(|a| a.1).sum();
    assert!(total_acked > 0.0, "the workload must answer something");

    // Restart from disk: every shard replays its own WAL independently.
    let (recovered, reports) = build(&dir);
    assert_eq!(reports.len(), SHARDS);
    assert!(
        reports.iter().all(|r| r.replayed > 0),
        "every shard saw traffic, so every shard must replay records: {reports:?}"
    );

    // Per shard: the recovered spend of the tenants it owns equals the
    // Σε those tenants were acked — shard by shard, not just in sum.
    for (k, owned_tenants) in owned.iter().enumerate() {
        let shard_spent: f64 = owned_tenants
            .iter()
            .map(|&t| recovered.spent(&names[t]))
            .sum();
        let shard_acked: f64 = owned_tenants.iter().map(|&t| acked[t].1).sum();
        assert!(
            (shard_spent - shard_acked).abs() <= 1e-9 * shard_acked.max(1.0),
            "shard {k}: recovered spent {shard_spent} != acked {shard_acked}"
        );
    }
    for (t, name) in names.iter().enumerate() {
        let spent = recovered.spent(name);
        assert!(
            spent <= B + 1e-9,
            "tenant {name} recovered past its budget: {spent}"
        );
        assert!(
            (spent - acked[t].1).abs() <= 1e-9 * acked[t].1.max(1.0),
            "tenant {name}: recovered {spent} != acked {}",
            acked[t].1
        );
    }

    // The sessions that were live at the crash are live again, resumed
    // mid-slice with exactly the spend their client saw acked.
    assert_eq!(
        recovered.session_count(),
        SHARDS,
        "one live session per shard"
    );
    let mut live_slack = vec![0.0; names.len()];
    for &(id, t, session_eps) in &left_open {
        let spent = recovered
            .state(session_shard(id))
            .with_session(id, |s| s.session.spent())
            .expect("the open session must survive the crash");
        assert!(
            (spent - session_eps).abs() <= 1e-9 * session_eps.max(1.0),
            "live session {id}: recovered {spent} != acked {session_eps}"
        );
        live_slack[t] += SLICE - spent;
    }

    // Aggregate grant accounting balances: every opened slice is
    // spent, reclaimed by a close, or still held by a live session.
    for (t, name) in names.iter().enumerate() {
        let granted = acked[t].0 as f64 * SLICE;
        let spent = recovered.spent(name);
        let reclaimed: f64 = recovered
            .states()
            .iter()
            .filter_map(|s| s.tenant(name))
            .map(apex_serve::state::Tenant::reclaimed)
            .sum();
        assert!(
            (granted - (spent + reclaimed + live_slack[t])).abs() <= 1e-9 * granted.max(1.0),
            "tenant {name}: granted {granted} != spent {spent} + reclaimed {reclaimed} \
             + live {}",
            live_slack[t]
        );
    }

    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
