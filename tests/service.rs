//! Service-layer integration tests: the multi-tenant invariants under
//! real concurrency, both at the library seam (`SharedEngine` +
//! `EngineSession` hammered from 8 threads) and end to end through the
//! HTTP server loop (the `--self-test` plumbing on an ephemeral port).

use apex_core::{ApexEngine, EngineConfig, EngineSession, Mode, SharedEngine, TranslatorCache};
use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
use apex_query::{AccuracySpec, ExplorationQuery};

fn dataset(n_values: i64, rows_per_value: usize) -> Dataset {
    let schema = Schema::new(vec![Attribute::new(
        "v",
        Domain::IntRange {
            min: 0,
            max: n_values - 1,
        },
    )])
    .unwrap();
    let mut d = Dataset::empty(schema);
    for i in 0..n_values {
        for _ in 0..rows_per_value {
            d.push(vec![Value::Int(i)]).unwrap();
        }
    }
    d
}

fn histogram(n_values: i64, bins: usize) -> ExplorationQuery {
    ExplorationQuery::wcq(
        (0..bins)
            .map(|i| {
                Predicate::range(
                    "v",
                    (n_values as usize * i / bins) as f64,
                    (n_values as usize * (i + 1) / bins) as f64,
                )
            })
            .collect(),
    )
}

/// Eight threads, each with its own session slice, all slamming one
/// engine: joint spend must never exceed `B`, each session must stay
/// within its slice, and the ledger must balance exactly.
#[test]
fn eight_threads_never_overshoot_budget_or_slices() {
    const B: f64 = 0.5;
    let engine = SharedEngine::new(ApexEngine::new(
        dataset(16, 8),
        EngineConfig {
            budget: B,
            mode: Mode::Pessimistic,
            seed: 11,
        },
    ));
    // Slices oversubscribe B threefold, so both admission bounds bite.
    let sessions: Vec<EngineSession> = (0..8).map(|_| engine.session(B * 3.0 / 8.0)).collect();
    let acc = AccuracySpec::new(60.0, 0.01).unwrap();
    std::thread::scope(|s| {
        for sess in &sessions {
            s.spawn(|| {
                let q = histogram(16, 8);
                for _ in 0..12 {
                    // Interleave submissions with budget reads; a read
                    // must never observe an overshoot mid-flight.
                    let _ = sess.submit(&q, &acc).unwrap();
                    assert!(sess.spent() <= sess.allowance() + 1e-9);
                    assert!(sess.engine().spent() <= B + 1e-9);
                }
            });
        }
    });
    let joint: f64 = sessions.iter().map(EngineSession::spent).sum();
    assert!(engine.spent() <= B + 1e-9, "spent {}", engine.spent());
    assert!((joint - engine.spent()).abs() < 1e-9, "ledger must balance");
    assert!(joint > 0.0, "the workload must actually answer something");
    engine.with_engine(|e| assert!(e.transcript().is_valid(B)));
}

/// Concurrent cache warms across engines sharing one `TranslatorCache`:
/// every thread must see the same (data-independent) worst-case ε for
/// the same workload — a cache hit must verify as identical to a fresh
/// build — and the counters must account for every lookup.
#[test]
fn concurrent_cache_warms_are_verify_on_hit_consistent() {
    let cache = TranslatorCache::with_capacity(32);
    let engines: Vec<SharedEngine> = (0..8)
        .map(|i| {
            SharedEngine::new(ApexEngine::with_translator_cache(
                dataset(32, 4),
                EngineConfig {
                    budget: 50.0,
                    mode: Mode::Pessimistic,
                    seed: 100 + i,
                },
                cache.scoped(),
            ))
        })
        .collect();
    let acc = AccuracySpec::new(25.0, 0.01).unwrap();
    let uppers: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = engines
            .iter()
            .map(|e| {
                s.spawn(move || {
                    let q = histogram(32, 16);
                    let r = e.submit(&q, &acc).unwrap();
                    r.answered().expect("budget is ample").epsilon_upper
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // All eight saw the very same translation, whether they built the
    // artifacts or hit a concurrent warm.
    for w in uppers.windows(2) {
        assert_eq!(w[0], w[1], "cache hit diverged from fresh build");
    }
    let stats = cache.stats();
    assert!(stats.hits + stats.misses >= 8, "{stats:?}");
    assert!(stats.misses >= 1, "{stats:?}");
    // A fresh engine re-running the workload from cache agrees too.
    let mut fresh = ApexEngine::with_translator_cache(
        dataset(32, 4),
        EngineConfig {
            budget: 50.0,
            mode: Mode::Pessimistic,
            seed: 999,
        },
        cache.scoped(),
    );
    let r = fresh.submit(&histogram(32, 16), &acc).unwrap();
    assert_eq!(r.answered().unwrap().epsilon_upper, uppers[0]);
    // The warm entry definitely existed by now, so the fresh engine's
    // translation must have been a hit (concurrent first submits may all
    // race to build — hits only become guaranteed once a warm settles).
    assert!(cache.stats().hits >= 1, "{:?}", cache.stats());
}

/// The server loop end to end, via the same plumbing `--self-test`
/// drives in CI: concurrent sessions over real sockets, budget
/// conservation, protocol discipline, cross-session cache hits.
#[test]
fn http_self_test_passes() {
    let report = apex_serve::run_self_test(apex_serve::SelfTestConfig {
        server_threads: 4,
        sessions: 8,
        submits: 5,
        rows: 500,
        cache_cap: 32,
    })
    .expect("self-test invariants must hold");
    assert!(report.answered > 0);
    assert!(report.denied > 0, "oversubscription must force denials");
    assert!(report.cache_hits > 0, "sessions must share warm artifacts");
    for (name, spent, budget) in &report.budgets {
        assert!(
            spent <= &(budget + 1e-9),
            "{name} overshot: {spent} > {budget}"
        );
    }
}
