//! Privacy-analyzer invariants (Section 6 / Theorem 6.2) under
//! adversarially adaptive query sequences.

use apex_core::{ApexEngine, EngineConfig, EngineResponse, Mode};
use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
use apex_query::{AccuracySpec, ExplorationQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::new(vec![Attribute::new(
        "v",
        Domain::IntRange { min: 0, max: 15 },
    )])
    .unwrap()
}

fn data(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::empty(schema());
    for _ in 0..2_000 {
        d.push(vec![Value::Int(rng.gen_range(0..16))]).unwrap();
    }
    d
}

/// An adversary that picks query types, workloads and accuracies based
/// on previous answers, trying to squeeze the budget.
fn adversarial_session(budget: f64, seed: u64, mode: Mode) -> ApexEngine {
    let mut engine = ApexEngine::new(data(seed), EngineConfig { budget, mode, seed });
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBAD);
    let mut last_noisy = 100.0_f64;
    for step in 0..60 {
        let l = rng.gen_range(1..=8);
        let workload: Vec<Predicate> = (0..l)
            .map(|i| Predicate::range("v", (2 * i) as f64, (2 * i + 2) as f64))
            .collect();
        // Adapt α to previous answers (tight after big counts).
        let alpha = (last_noisy.abs().max(10.0) / (1 + step % 5) as f64).max(5.0);
        let acc = AccuracySpec::new(alpha, 1e-3).unwrap();
        let q = match step % 3 {
            0 => ExplorationQuery::wcq(workload),
            1 => ExplorationQuery::icq(workload, last_noisy.abs().max(1.0)),
            _ => {
                let k = rng.gen_range(1..=l);
                ExplorationQuery::tcq(workload, k)
            }
        };
        if let EngineResponse::Answered(a) = engine.submit(&q, &acc).unwrap() {
            if let Some(c) = a.answer.as_counts() {
                last_noisy = c.iter().fold(0.0_f64, |m, v| m.max(*v));
            }
        }
    }
    engine
}

#[test]
fn budget_never_exceeded_under_adaptive_adversary() {
    for seed in 0..8 {
        for mode in [Mode::Optimistic, Mode::Pessimistic] {
            let budget = 0.2 + 0.1 * seed as f64;
            let engine = adversarial_session(budget, seed, mode);
            assert!(
                engine.spent() <= budget + 1e-9,
                "seed {seed} {mode:?}: spent {} > {budget}",
                engine.spent()
            );
            assert!(engine.transcript().is_valid(budget), "seed {seed} {mode:?}");
        }
    }
}

#[test]
fn every_answered_entry_fit_in_the_worst_case() {
    let engine = adversarial_session(1.0, 3, Mode::Optimistic);
    let mut running = 0.0;
    for e in engine.transcript().entries() {
        if let apex_core::TranscriptEntry::Answered {
            epsilon,
            epsilon_upper,
            ..
        } = e
        {
            assert!(
                running + epsilon_upper <= 1.0 + 1e-9,
                "analyzer admitted a mechanism that could overshoot"
            );
            assert!(
                *epsilon <= epsilon_upper + 1e-12,
                "actual loss above worst case"
            );
            running += epsilon;
        }
    }
}

#[test]
fn spent_equals_sum_of_actual_losses() {
    let engine = adversarial_session(0.7, 5, Mode::Optimistic);
    let total: f64 = engine
        .transcript()
        .entries()
        .iter()
        .map(|e| e.epsilon())
        .sum();
    assert!((engine.spent() - total).abs() < 1e-12);
}

#[test]
fn optimistic_mode_spends_at_most_pessimistic_upper_bounds() {
    // Not a theorem — optimism can backfire per query — but across a
    // session the optimist's *total* spend must still respect the same
    // budget invariant, and both transcripts must be valid.
    let opt = adversarial_session(0.8, 11, Mode::Optimistic);
    let pes = adversarial_session(0.8, 11, Mode::Pessimistic);
    assert!(opt.transcript().is_valid(0.8));
    assert!(pes.transcript().is_valid(0.8));
}

#[test]
fn denials_are_data_independent() {
    // Two very different datasets: the *denial pattern* for a fixed
    // query/accuracy sequence must be identical, because admission uses
    // only data-independent worst cases (Case 3 of the Theorem 6.2
    // proof). Actual spend may differ (MPM), so compare denial indices
    // under pessimistic mode where every admitted loss is data-free too.
    let sparse = {
        let mut d = Dataset::empty(schema());
        for _ in 0..10 {
            d.push(vec![Value::Int(0)]).unwrap();
        }
        d
    };
    let dense = data(99);

    let run = |d: Dataset| -> Vec<bool> {
        let mut engine = ApexEngine::new(
            d,
            EngineConfig {
                budget: 0.05,
                mode: Mode::Pessimistic,
                seed: 1,
            },
        );
        let acc = AccuracySpec::new(20.0, 1e-3).unwrap();
        (0..20)
            .map(|i| {
                let wl: Vec<Predicate> = (0..4)
                    .map(|j| Predicate::eq("v", (4 * (i % 2) + j) as i64))
                    .collect();
                engine
                    .submit(&ExplorationQuery::wcq(wl), &acc)
                    .unwrap()
                    .is_denied()
            })
            .collect()
    };
    assert_eq!(run(sparse), run(dense));
}
