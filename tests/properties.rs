//! Property-based tests (proptest) on the core invariants:
//! pseudoinverse identities, workload sensitivity, partition
//! correctness, translation monotonicity, and Laplace tails.

use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
use apex_linalg::{l1_operator_norm, pinv, Matrix};
use apex_mech::{Laplace, LaplaceMechanism, Mechanism, PreparedQuery};
use apex_query::{AccuracySpec, ExplorationQuery, Strategy as HierStrategy};
use proptest::prelude::*;

fn schema(max: i64) -> Schema {
    Schema::new(vec![Attribute::new("v", Domain::IntRange { min: 0, max })]).unwrap()
}

/// Strategy producing a random interval workload over [0, 64).
fn interval_workload() -> impl proptest::strategy::Strategy<Value = Vec<Predicate>> {
    proptest::collection::vec((0i64..64, 1i64..32), 1..12).prop_map(|spans| {
        spans
            .into_iter()
            .map(|(lo, w)| Predicate::range("v", lo as f64, (lo + w).min(64) as f64))
            .collect()
    })
}

/// Strategy producing a random small dataset over [0, 64).
fn dataset() -> impl proptest::strategy::Strategy<Value = Dataset> {
    proptest::collection::vec(0i64..64, 0..300).prop_map(|vals| {
        let mut d = Dataset::empty(schema(63));
        for v in vals {
            d.push(vec![Value::Int(v)]).unwrap();
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled workload answer always equals direct counting —
    /// for any interval workload and any dataset.
    #[test]
    fn partition_answers_match_direct_counts(wl in interval_workload(), d in dataset()) {
        let q = PreparedQuery::prepare(&schema(63), &ExplorationQuery::wcq(wl.clone())).unwrap();
        let ans = q.compiled().true_answer(&d);
        for (i, pred) in wl.iter().enumerate() {
            prop_assert_eq!(ans[i], d.count(pred).unwrap() as f64);
        }
    }

    /// Sensitivity is the max, over single-tuple insertions, of the
    /// answer-vector L1 change — by definition. Verify ‖W‖₁ dominates
    /// the observed change for arbitrary inserted values.
    #[test]
    fn sensitivity_bounds_single_tuple_influence(
        wl in interval_workload(),
        d in dataset(),
        extra in 0i64..64,
    ) {
        let q = PreparedQuery::prepare(&schema(63), &ExplorationQuery::wcq(wl)).unwrap();
        let before = q.compiled().true_answer(&d);
        let mut d2 = d.clone();
        d2.push(vec![Value::Int(extra)]).unwrap();
        let after = q.compiled().true_answer(&d2);
        let l1_change: f64 = before.iter().zip(&after).map(|(a, b)| (b - a).abs()).sum();
        prop_assert!(l1_change <= q.sensitivity() + 1e-9);
    }

    /// Moore–Penrose identities for every hierarchical strategy size.
    #[test]
    fn pinv_identities_for_strategies(n in 1usize..40, b in 2usize..5) {
        let a = HierStrategy::Hierarchical { branching: b }.build(n).unwrap();
        let ap = pinv(&a).unwrap();
        let aapa = a.matmul(&ap).unwrap().matmul(&a).unwrap();
        prop_assert!(aapa.approx_eq(&a, 1e-7));
        let apaap = ap.matmul(&a).unwrap().matmul(&ap).unwrap();
        prop_assert!(apaap.approx_eq(&ap, 1e-7));
        // Full column rank ⇒ A⁺A = I.
        prop_assert!(ap.matmul(&a).unwrap().approx_eq(&Matrix::identity(n), 1e-7));
    }

    /// H_b sensitivity equals the number of tree levels covering the
    /// deepest cell: ≤ ceil(log_b n) + 1.
    #[test]
    fn hierarchical_sensitivity_is_logarithmic(n in 2usize..200, b in 2usize..5) {
        let a = HierStrategy::Hierarchical { branching: b }.build(n).unwrap();
        let sens = l1_operator_norm(&a);
        let depth = (n as f64).log(b as f64).ceil() + 1.0;
        prop_assert!(sens <= depth + 1.0, "sens {} vs depth bound {}", sens, depth);
    }

    /// LM translation is monotone: tighter α or β never costs less.
    #[test]
    fn lm_translation_monotone(
        wl in interval_workload(),
        a1 in 1.0f64..100.0,
        factor in 1.01f64..4.0,
        beta in 1e-4f64..0.2,
    ) {
        let q = PreparedQuery::prepare(&schema(63), &ExplorationQuery::wcq(wl)).unwrap();
        let tight = AccuracySpec::new(a1, beta).unwrap();
        let loose = AccuracySpec::new(a1 * factor, beta).unwrap();
        let e_tight = LaplaceMechanism.translate(&q, &tight).unwrap().upper;
        let e_loose = LaplaceMechanism.translate(&q, &loose).unwrap().upper;
        prop_assert!(e_tight >= e_loose);

        let looser_beta = AccuracySpec::new(a1, (beta * 2.0).min(0.5)).unwrap();
        let e_lb = LaplaceMechanism.translate(&q, &looser_beta).unwrap().upper;
        prop_assert!(e_lb <= e_tight + 1e-12);
    }

    /// Laplace quantile/CDF round-trip and tail bound, for any scale.
    #[test]
    fn laplace_quantile_cdf_roundtrip(b in 0.01f64..100.0, p in 0.001f64..0.999) {
        let d = Laplace::new(b);
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
        // abs_tail is monotone decreasing.
        prop_assert!(d.abs_tail(1.0) >= d.abs_tail(2.0));
    }

    /// The engine transcript stays valid for arbitrary budgets and query
    /// sequences (a smaller randomized cousin of the dedicated
    /// integration tests, exercised across many budgets).
    #[test]
    fn transcript_valid_for_random_budgets(budget in 0.01f64..2.0, seed in 0u64..50) {
        use apex_core::{ApexEngine, EngineConfig, Mode};
        let mut d = Dataset::empty(schema(15));
        for i in 0..200 {
            d.push(vec![Value::Int(i % 16)]).unwrap();
        }
        let mut engine = ApexEngine::new(d, EngineConfig { budget, mode: Mode::Optimistic, seed });
        let acc = AccuracySpec::new(25.0, 1e-3).unwrap();
        for i in 0..6 {
            let wl: Vec<Predicate> =
                (0..4).map(|j| Predicate::eq("v", ((i + j) % 16) as i64)).collect();
            let _ = engine.submit(&ExplorationQuery::wcq(wl), &acc).unwrap();
        }
        prop_assert!(engine.spent() <= budget + 1e-9);
        prop_assert!(engine.transcript().is_valid(budget));
    }
}
