//! Corruption-injection property tests for the durable paged store —
//! the `store-fault-gate` CI job.
//!
//! The store's contract is *fail-stop*: any bit the disk (or a buggy
//! writer) changes must surface as an error, never as silently wrong
//! rows. These tests earn that claim the brute-force way:
//!
//! - **every** single-bit flip of a sealed page fails verification;
//! - **every** single-bit flip of a manifest fails its checksum;
//! - **every** byte-truncation of a manifest or a page file is rejected;
//! - a torn final append past the manifest's coverage — even one that
//!   *would* verify as a page — is never served;
//! - reopen-after-kill round-trips exactly the committed state, for both
//!   row stores and transcript logs (unflushed tail records are lost,
//!   flushed ones survive, corruption in either is detected);
//! - **every** single-bit flip and **every** byte-truncation of the
//!   mutation log stops replay at the last valid record — never a wrong
//!   or reordered record — and the full store open path re-applies
//!   exactly that valid acked prefix.
//!
//! The exhaustive page sweep runs in memory against `page::verify` (the
//! same routine every disk read goes through); a strided sweep then
//! flips bits in the actual file and asserts the full `open`+scan path
//! reports them, so the two layers can't drift apart.

use apex_data::store::{
    page, Manifest, MutationLog, MutationOp, MutationRecord, PageLog, PagedRows, MUTATION_LOG_FILE,
    PAGE_CAPACITY, PAGE_SIZE,
};
use apex_data::{Attribute, Domain, Schema, StoreError, Value};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apex-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::new(
            "v",
            Domain::IntRange {
                min: 0,
                max: 1 << 20,
            },
        ),
        Attribute::new("tag", Domain::Text),
    ])
    .unwrap()
}

fn demo_rows(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| vec![Value::Int(i as i64), Value::Str(format!("row-{i}"))])
        .collect()
}

fn ingest(dir: &Path, rows: &[Vec<Value>]) -> PagedRows {
    PagedRows::ingest(dir, &demo_schema(), rows.iter().map(|r| r.as_slice()), 1, 4).unwrap()
}

/// Deterministic byte soup (no RNG dependency in the fault gate).
fn xorshift_bytes(n: usize, mut seed: u64) -> Vec<u8> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as u8
        })
        .collect()
}

#[test]
fn every_single_bit_flip_of_a_page_is_detected() {
    // A sealed page filled to capacity with adversarial-ish bytes; the
    // header (crc, len, page_no) is inside the flip range too.
    let mut buf = vec![0u8; PAGE_SIZE];
    let payload = xorshift_bytes(PAGE_CAPACITY, 0x5EED_CAFE);
    page::payload_mut(&mut buf).copy_from_slice(&payload);
    page::set_len(&mut buf, PAGE_CAPACITY as u32);
    page::seal(&mut buf, 7);
    page::verify(&buf, 7).expect("the unflipped page verifies");

    for bit in 0..PAGE_SIZE * 8 {
        buf[bit / 8] ^= 1 << (bit % 8);
        assert!(
            page::verify(&buf, 7).is_err(),
            "bit flip at offset {bit} went undetected"
        );
        buf[bit / 8] ^= 1 << (bit % 8);
    }
    page::verify(&buf, 7).expect("restored page verifies again");
}

#[test]
fn every_single_bit_flip_of_a_manifest_is_detected() {
    let dir = tmp_dir("manifest-flip");
    ingest(&dir, &demo_rows(64));
    let path = dir.join("manifest.bin");
    let pristine = std::fs::read(&path).unwrap();
    Manifest::load(&dir).expect("the pristine manifest loads");

    for bit in 0..pristine.len() * 8 {
        let mut bytes = pristine.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            Manifest::load(&dir).is_err(),
            "manifest bit flip at offset {bit} went undetected"
        );
    }
    std::fs::write(&path, &pristine).unwrap();
    Manifest::load(&dir).expect("restored manifest loads");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_byte_truncation_of_a_manifest_is_rejected() {
    let dir = tmp_dir("manifest-trunc");
    ingest(&dir, &demo_rows(64));
    let path = dir.join("manifest.bin");
    let pristine = std::fs::read(&path).unwrap();

    for len in 0..pristine.len() {
        std::fs::write(&path, &pristine[..len]).unwrap();
        assert!(
            Manifest::load(&dir).is_err(),
            "manifest truncated to {len} bytes went undetected"
        );
    }
    // Trailing garbage is as corrupt as a missing tail.
    let mut bloated = pristine.clone();
    bloated.push(0);
    std::fs::write(&path, &bloated).unwrap();
    assert!(
        Manifest::load(&dir).is_err(),
        "trailing byte went undetected"
    );

    std::fs::write(&path, &pristine).unwrap();
    Manifest::load(&dir).expect("restored manifest loads");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn on_disk_page_bit_flips_surface_through_open_and_scan() {
    // The in-memory sweep proves `verify` catches everything; this one
    // proves the service path (open → pool read → scan) actually calls
    // it: strided single-bit flips across the whole page file, each of
    // which must turn the scan into an error, never wrong rows.
    let dir = tmp_dir("page-flip");
    let rows = demo_rows(2_000);
    let store = ingest(&dir, &rows);
    assert!(store.page_count() >= 2, "want a multi-page file");
    drop(store);
    let path = dir.join("pages.dat");
    let pristine = std::fs::read(&path).unwrap();

    let total_bits = pristine.len() * 8;
    let mut hit_pages = std::collections::HashSet::new();
    for bit in (0..total_bits).step_by(1_009) {
        let mut bytes = pristine.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        hit_pages.insert(bit / (PAGE_SIZE * 8));
        let outcome = PagedRows::open(&dir, 4).and_then(|s| s.materialize());
        match outcome {
            Err(_) => {}
            Ok(served) => panic!(
                "bit flip at offset {bit} served {} rows as if nothing happened",
                served.len()
            ),
        }
    }
    assert!(hit_pages.len() >= 2, "the stride must cover every page");
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(
        PagedRows::open(&dir, 4).unwrap().materialize().unwrap(),
        rows
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_byte_truncation_of_the_page_file_is_rejected() {
    let dir = tmp_dir("page-trunc");
    let rows = demo_rows(700); // two pages
    let store = ingest(&dir, &rows);
    assert_eq!(store.page_count(), 2, "the sweep below assumes two pages");
    drop(store);
    let path = dir.join("pages.dat");
    let pristine = std::fs::read(&path).unwrap();

    for len in 0..pristine.len() {
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len as u64).unwrap();
        drop(f);
        assert!(
            matches!(PagedRows::open(&dir, 4), Err(StoreError::Truncated { .. })),
            "page file truncated to {len} bytes went undetected"
        );
        std::fs::write(&path, &pristine).unwrap();
    }
    assert_eq!(
        PagedRows::open(&dir, 4).unwrap().materialize().unwrap(),
        rows
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_torn_final_append_is_never_served() {
    let dir = tmp_dir("torn");
    let rows = demo_rows(300);
    ingest(&dir, &rows);
    let path = dir.join("pages.dat");
    let pristine = std::fs::read(&path).unwrap();

    // A half-written garbage page past the manifest's coverage: ignored.
    let mut torn = pristine.clone();
    torn.extend_from_slice(&xorshift_bytes(PAGE_SIZE / 2, 0xDEAD));
    std::fs::write(&path, &torn).unwrap();
    assert_eq!(
        PagedRows::open(&dir, 4).unwrap().materialize().unwrap(),
        rows
    );

    // The nastier case: the torn tail is a byte-exact copy of a *valid*
    // page. It would pass verification if read — the manifest, not the
    // checksum, is what must keep it out of the result set.
    let mut forged = pristine.clone();
    forged.extend_from_slice(&pristine[..PAGE_SIZE]);
    std::fs::write(&path, &forged).unwrap();
    let served = PagedRows::open(&dir, 4).unwrap().materialize().unwrap();
    assert_eq!(served, rows, "a forged page beyond coverage was served");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_after_kill_round_trips_the_committed_state() {
    let dir = tmp_dir("reopen");
    let rows = demo_rows(1_500);
    // `ingest` returns an open store which we drop without any explicit
    // close — the kill. Durability must come from the write path alone.
    drop(ingest(&dir, &rows));
    for _ in 0..3 {
        let store = PagedRows::open(&dir, 2).unwrap();
        assert_eq!(store.row_count(), 1_500);
        assert_eq!(store.materialize().unwrap(), rows);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Byte ranges of the consecutive records in a pristine mutation log.
fn record_spans(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut off = 0usize;
    while let Some((_, used)) = MutationRecord::decode(&bytes[off..]) {
        spans.push(off..off + used);
        off += used;
    }
    assert_eq!(off, bytes.len(), "the pristine log must parse completely");
    spans
}

/// A three-record mutation log (insert, delete, insert) plus its byte
/// image, span table, and the records a clean replay yields.
fn seeded_mutation_log(
    dir: &Path,
) -> (
    PathBuf,
    Vec<u8>,
    Vec<std::ops::Range<usize>>,
    Vec<MutationRecord>,
) {
    let mut log = MutationLog::open(dir).unwrap();
    log.append(MutationOp::Insert, demo_rows(2)).unwrap();
    log.append(MutationOp::Delete, demo_rows(1)).unwrap();
    log.append(
        MutationOp::Insert,
        vec![vec![Value::Int(9), Value::Str("tail".to_string())]],
    )
    .unwrap();
    drop(log);
    let path = dir.join(MUTATION_LOG_FILE);
    let pristine = std::fs::read(&path).unwrap();
    let spans = record_spans(&pristine);
    assert_eq!(spans.len(), 3);
    let mut records = Vec::new();
    assert_eq!(MutationLog::replay(dir, |r| records.push(r)).unwrap(), 3);
    (path, pristine, spans, records)
}

#[test]
fn every_single_bit_flip_of_the_mutation_log_stops_replay_at_the_last_valid_record() {
    // Replay must never yield a record whose bytes changed, and must never
    // resynchronize past one: a flip inside record i cuts the log to the
    // first i records, byte-identical to the pristine prefix.
    let dir = tmp_dir("mlog-flip");
    let (path, pristine, spans, clean) = seeded_mutation_log(&dir);

    for bit in 0..pristine.len() * 8 {
        let mut bytes = pristine.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        let hit = spans
            .iter()
            .position(|s| s.contains(&(bit / 8)))
            .expect("every byte belongs to a record");
        let mut replayed = Vec::new();
        let n = MutationLog::replay(&dir, |r| replayed.push(r)).unwrap();
        assert_eq!(
            n as usize, hit,
            "log bit flip at offset {bit} (record {hit}) replayed {n} records"
        );
        assert_eq!(
            replayed,
            clean[..hit],
            "log bit flip at offset {bit} altered a replayed record"
        );
    }
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(MutationLog::replay(&dir, |_| {}).unwrap(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_byte_truncation_of_the_mutation_log_replays_only_whole_records() {
    let dir = tmp_dir("mlog-trunc");
    let (path, pristine, spans, clean) = seeded_mutation_log(&dir);

    for len in 0..pristine.len() {
        std::fs::write(&path, &pristine[..len]).unwrap();
        let whole = spans.iter().filter(|s| s.end <= len).count();
        let mut replayed = Vec::new();
        let n = MutationLog::replay(&dir, |r| replayed.push(r)).unwrap();
        assert_eq!(
            n as usize, whole,
            "log truncated to {len} bytes replayed {n} records"
        );
        assert_eq!(replayed, clean[..whole]);

        // `open` heals the tear: the file is cut back to the last whole
        // record and the next append continues at that sequence number.
        let boundary = spans[..whole].last().map(|s| s.end).unwrap_or(0);
        let log = MutationLog::open(&dir).unwrap();
        assert_eq!(log.next_seq() as usize, whole);
        drop(log);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), boundary as u64);
    }
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(MutationLog::replay(&dir, |_| {}).unwrap(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Recursively copies `src` into a fresh `dst`.
fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

#[test]
fn a_corrupt_acked_mutation_stops_store_replay_at_the_last_valid_record() {
    // The crash window the log exists for: mutations acked (fsynced in the
    // log) but not yet folded into the pages. If the log then corrupts,
    // `PagedRows::open` must re-apply exactly the valid prefix — never a
    // damaged record, never rows from beyond the first bad byte.
    let dir = tmp_dir("mlog-store");
    let base = demo_rows(64);
    drop(ingest(&dir, &base));
    let extra: Vec<Vec<Value>> = (0..2)
        .map(|i| vec![Value::Int(100 + i), Value::Str(format!("extra-{i}"))])
        .collect();
    let mut log = MutationLog::open(&dir).unwrap();
    log.append(MutationOp::Insert, vec![extra[0].clone()])
        .unwrap();
    log.append(MutationOp::Insert, vec![extra[1].clone()])
        .unwrap();
    drop(log);
    let log_path = dir.join(MUTATION_LOG_FILE);
    let pristine_log = std::fs::read(&log_path).unwrap();
    let spans = record_spans(&pristine_log);
    assert_eq!(spans.len(), 2);

    // `open` commits whatever it replays, so every flip must start from
    // the same acked-but-unapplied on-disk state: snapshot and restore.
    let snap = tmp_dir("mlog-store-snap");
    copy_dir(&dir, &snap);

    for bit in (0..pristine_log.len() * 8).step_by(13) {
        copy_dir(&snap, &dir);
        let mut bytes = pristine_log.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&log_path, &bytes).unwrap();
        let hit = spans
            .iter()
            .position(|s| s.contains(&(bit / 8)))
            .expect("every byte belongs to a record");
        let store = PagedRows::open(&dir, 4).unwrap();
        assert_eq!(
            store.mutations_applied() as usize,
            hit,
            "log bit flip at offset {bit} changed how many records applied"
        );
        let mut want = base.clone();
        want.extend(extra[..hit].iter().cloned());
        assert_eq!(
            store.materialize().unwrap(),
            want,
            "log bit flip at offset {bit} leaked into the served rows"
        );
    }

    // The unflipped log replays both records exactly once.
    copy_dir(&snap, &dir);
    let store = PagedRows::open(&dir, 4).unwrap();
    assert_eq!(store.mutations_applied(), 2);
    let mut want = base.clone();
    want.extend(extra.iter().cloned());
    assert_eq!(store.materialize().unwrap(), want);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&snap).unwrap();
}

#[test]
fn transcript_log_kill_and_corruption_semantics() {
    let dir = tmp_dir("log");
    let mut log = PageLog::open_or_create(&dir, 1).unwrap();
    for i in 0..10 {
        log.append(format!("flushed-{i}").as_bytes()).unwrap();
    }
    log.flush().unwrap();
    for i in 0..5 {
        log.append(format!("lost-{i}").as_bytes()).unwrap();
    }
    drop(log); // kill: the unflushed tail records must vanish, cleanly

    let mut replayed = Vec::new();
    let n = PageLog::replay(&dir, |rec| replayed.push(rec.to_vec())).unwrap();
    assert_eq!(n, 10, "exactly the flushed records survive the kill");
    assert_eq!(replayed[9], b"flushed-9");

    // Corruption in the log is detected the same way as in row stores.
    let path = dir.join("pages.dat");
    let pristine = std::fs::read(&path).unwrap();
    for bit in (0..pristine.len() * 8).step_by(509) {
        let mut bytes = pristine.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            PageLog::replay(&dir, |_| {}).is_err(),
            "log bit flip at offset {bit} went undetected"
        );
    }
    std::fs::write(&path, &pristine).unwrap();

    // Reopen-and-append continues where the flush left off.
    let mut log = PageLog::open_or_create(&dir, 1).unwrap();
    assert_eq!(log.record_count(), 10);
    log.append(b"after-restart").unwrap();
    log.flush().unwrap();
    drop(log);
    assert_eq!(PageLog::replay(&dir, |_| {}).unwrap(), 11);
    std::fs::remove_dir_all(&dir).unwrap();
}
