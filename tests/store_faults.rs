//! Corruption-injection property tests for the durable paged store —
//! the `store-fault-gate` CI job.
//!
//! The store's contract is *fail-stop*: any bit the disk (or a buggy
//! writer) changes must surface as an error, never as silently wrong
//! rows. These tests earn that claim the brute-force way:
//!
//! - **every** single-bit flip of a sealed page fails verification;
//! - **every** single-bit flip of a manifest fails its checksum;
//! - **every** byte-truncation of a manifest or a page file is rejected;
//! - a torn final append past the manifest's coverage — even one that
//!   *would* verify as a page — is never served;
//! - reopen-after-kill round-trips exactly the committed state, for both
//!   row stores and transcript logs (unflushed tail records are lost,
//!   flushed ones survive, corruption in either is detected).
//!
//! The exhaustive page sweep runs in memory against `page::verify` (the
//! same routine every disk read goes through); a strided sweep then
//! flips bits in the actual file and asserts the full `open`+scan path
//! reports them, so the two layers can't drift apart.

use apex_data::store::{page, Manifest, PageLog, PagedRows, PAGE_CAPACITY, PAGE_SIZE};
use apex_data::{Attribute, Domain, Schema, StoreError, Value};
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apex-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::new(
            "v",
            Domain::IntRange {
                min: 0,
                max: 1 << 20,
            },
        ),
        Attribute::new("tag", Domain::Text),
    ])
    .unwrap()
}

fn demo_rows(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| vec![Value::Int(i as i64), Value::Str(format!("row-{i}"))])
        .collect()
}

fn ingest(dir: &Path, rows: &[Vec<Value>]) -> PagedRows {
    PagedRows::ingest(dir, &demo_schema(), rows.iter().map(|r| r.as_slice()), 1, 4).unwrap()
}

/// Deterministic byte soup (no RNG dependency in the fault gate).
fn xorshift_bytes(n: usize, mut seed: u64) -> Vec<u8> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as u8
        })
        .collect()
}

#[test]
fn every_single_bit_flip_of_a_page_is_detected() {
    // A sealed page filled to capacity with adversarial-ish bytes; the
    // header (crc, len, page_no) is inside the flip range too.
    let mut buf = vec![0u8; PAGE_SIZE];
    let payload = xorshift_bytes(PAGE_CAPACITY, 0x5EED_CAFE);
    page::payload_mut(&mut buf).copy_from_slice(&payload);
    page::set_len(&mut buf, PAGE_CAPACITY as u32);
    page::seal(&mut buf, 7);
    page::verify(&buf, 7).expect("the unflipped page verifies");

    for bit in 0..PAGE_SIZE * 8 {
        buf[bit / 8] ^= 1 << (bit % 8);
        assert!(
            page::verify(&buf, 7).is_err(),
            "bit flip at offset {bit} went undetected"
        );
        buf[bit / 8] ^= 1 << (bit % 8);
    }
    page::verify(&buf, 7).expect("restored page verifies again");
}

#[test]
fn every_single_bit_flip_of_a_manifest_is_detected() {
    let dir = tmp_dir("manifest-flip");
    ingest(&dir, &demo_rows(64));
    let path = dir.join("manifest.bin");
    let pristine = std::fs::read(&path).unwrap();
    Manifest::load(&dir).expect("the pristine manifest loads");

    for bit in 0..pristine.len() * 8 {
        let mut bytes = pristine.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            Manifest::load(&dir).is_err(),
            "manifest bit flip at offset {bit} went undetected"
        );
    }
    std::fs::write(&path, &pristine).unwrap();
    Manifest::load(&dir).expect("restored manifest loads");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_byte_truncation_of_a_manifest_is_rejected() {
    let dir = tmp_dir("manifest-trunc");
    ingest(&dir, &demo_rows(64));
    let path = dir.join("manifest.bin");
    let pristine = std::fs::read(&path).unwrap();

    for len in 0..pristine.len() {
        std::fs::write(&path, &pristine[..len]).unwrap();
        assert!(
            Manifest::load(&dir).is_err(),
            "manifest truncated to {len} bytes went undetected"
        );
    }
    // Trailing garbage is as corrupt as a missing tail.
    let mut bloated = pristine.clone();
    bloated.push(0);
    std::fs::write(&path, &bloated).unwrap();
    assert!(
        Manifest::load(&dir).is_err(),
        "trailing byte went undetected"
    );

    std::fs::write(&path, &pristine).unwrap();
    Manifest::load(&dir).expect("restored manifest loads");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn on_disk_page_bit_flips_surface_through_open_and_scan() {
    // The in-memory sweep proves `verify` catches everything; this one
    // proves the service path (open → pool read → scan) actually calls
    // it: strided single-bit flips across the whole page file, each of
    // which must turn the scan into an error, never wrong rows.
    let dir = tmp_dir("page-flip");
    let rows = demo_rows(2_000);
    let store = ingest(&dir, &rows);
    assert!(store.page_count() >= 2, "want a multi-page file");
    drop(store);
    let path = dir.join("pages.dat");
    let pristine = std::fs::read(&path).unwrap();

    let total_bits = pristine.len() * 8;
    let mut hit_pages = std::collections::HashSet::new();
    for bit in (0..total_bits).step_by(1_009) {
        let mut bytes = pristine.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        hit_pages.insert(bit / (PAGE_SIZE * 8));
        let outcome = PagedRows::open(&dir, 4).and_then(|s| s.materialize());
        match outcome {
            Err(_) => {}
            Ok(served) => panic!(
                "bit flip at offset {bit} served {} rows as if nothing happened",
                served.len()
            ),
        }
    }
    assert!(hit_pages.len() >= 2, "the stride must cover every page");
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(
        PagedRows::open(&dir, 4).unwrap().materialize().unwrap(),
        rows
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_byte_truncation_of_the_page_file_is_rejected() {
    let dir = tmp_dir("page-trunc");
    let rows = demo_rows(700); // two pages
    let store = ingest(&dir, &rows);
    assert_eq!(store.page_count(), 2, "the sweep below assumes two pages");
    drop(store);
    let path = dir.join("pages.dat");
    let pristine = std::fs::read(&path).unwrap();

    for len in 0..pristine.len() {
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len as u64).unwrap();
        drop(f);
        assert!(
            matches!(PagedRows::open(&dir, 4), Err(StoreError::Truncated { .. })),
            "page file truncated to {len} bytes went undetected"
        );
        std::fs::write(&path, &pristine).unwrap();
    }
    assert_eq!(
        PagedRows::open(&dir, 4).unwrap().materialize().unwrap(),
        rows
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_torn_final_append_is_never_served() {
    let dir = tmp_dir("torn");
    let rows = demo_rows(300);
    ingest(&dir, &rows);
    let path = dir.join("pages.dat");
    let pristine = std::fs::read(&path).unwrap();

    // A half-written garbage page past the manifest's coverage: ignored.
    let mut torn = pristine.clone();
    torn.extend_from_slice(&xorshift_bytes(PAGE_SIZE / 2, 0xDEAD));
    std::fs::write(&path, &torn).unwrap();
    assert_eq!(
        PagedRows::open(&dir, 4).unwrap().materialize().unwrap(),
        rows
    );

    // The nastier case: the torn tail is a byte-exact copy of a *valid*
    // page. It would pass verification if read — the manifest, not the
    // checksum, is what must keep it out of the result set.
    let mut forged = pristine.clone();
    forged.extend_from_slice(&pristine[..PAGE_SIZE]);
    std::fs::write(&path, &forged).unwrap();
    let served = PagedRows::open(&dir, 4).unwrap().materialize().unwrap();
    assert_eq!(served, rows, "a forged page beyond coverage was served");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_after_kill_round_trips_the_committed_state() {
    let dir = tmp_dir("reopen");
    let rows = demo_rows(1_500);
    // `ingest` returns an open store which we drop without any explicit
    // close — the kill. Durability must come from the write path alone.
    drop(ingest(&dir, &rows));
    for _ in 0..3 {
        let store = PagedRows::open(&dir, 2).unwrap();
        assert_eq!(store.row_count(), 1_500);
        assert_eq!(store.materialize().unwrap(), rows);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn transcript_log_kill_and_corruption_semantics() {
    let dir = tmp_dir("log");
    let mut log = PageLog::open_or_create(&dir, 1).unwrap();
    for i in 0..10 {
        log.append(format!("flushed-{i}").as_bytes()).unwrap();
    }
    log.flush().unwrap();
    for i in 0..5 {
        log.append(format!("lost-{i}").as_bytes()).unwrap();
    }
    drop(log); // kill: the unflushed tail records must vanish, cleanly

    let mut replayed = Vec::new();
    let n = PageLog::replay(&dir, |rec| replayed.push(rec.to_vec())).unwrap();
    assert_eq!(n, 10, "exactly the flushed records survive the kill");
    assert_eq!(replayed[9], b"flushed-9");

    // Corruption in the log is detected the same way as in row stores.
    let path = dir.join("pages.dat");
    let pristine = std::fs::read(&path).unwrap();
    for bit in (0..pristine.len() * 8).step_by(509) {
        let mut bytes = pristine.clone();
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            PageLog::replay(&dir, |_| {}).is_err(),
            "log bit flip at offset {bit} went undetected"
        );
    }
    std::fs::write(&path, &pristine).unwrap();

    // Reopen-and-append continues where the flush left off.
    let mut log = PageLog::open_or_create(&dir, 1).unwrap();
    assert_eq!(log.record_count(), 10);
    log.append(b"after-restart").unwrap();
    log.flush().unwrap();
    drop(log);
    assert_eq!(PageLog::replay(&dir, |_| {}).unwrap(), 11);
    std::fs::remove_dir_all(&dir).unwrap();
}
