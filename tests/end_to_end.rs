//! End-to-end integration: parser → engine → mechanisms → transcript,
//! across all three query types on the synthetic Adult data.

use apex_core::{ApexEngine, EngineConfig, EngineResponse, Mode};
use apex_data::synth::adult_dataset;
use apex_data::Predicate;
use apex_query::{parse_query, AccuracySpec, ExplorationQuery, QueryKind};

fn engine(budget: f64, mode: Mode) -> ApexEngine {
    ApexEngine::new(
        adult_dataset(8_000, 3),
        EngineConfig {
            budget,
            mode,
            seed: 17,
        },
    )
}

#[test]
fn parsed_statement_flows_through_the_engine() {
    let mut e = engine(2.0, Mode::Optimistic);
    let stmt = "BIN D ON COUNT(*) WHERE W = { capital_gain IN [0, 2500), \
                capital_gain IN [2500, 5000) } ERROR 400 CONFIDENCE 0.9995;";
    let parsed = parse_query(stmt).expect("parses");
    assert_eq!(parsed.query.kind, QueryKind::Wcq);
    let acc = parsed.accuracy.expect("accuracy clause present");
    let r = e.submit(&parsed.query, &acc).expect("valid query");
    let a = r.answered().expect("budget suffices");
    let counts = a.answer.as_counts().expect("WCQ");
    assert_eq!(counts.len(), 2);
    // ~91% of 8000 have zero gain → bin 0 dominates even with noise.
    assert!(counts[0] > counts[1]);
}

#[test]
fn all_three_query_types_answer_and_compose() {
    let mut e = engine(5.0, Mode::Optimistic);
    let n = 8_000.0;
    let acc = AccuracySpec::new(0.05 * n, 5e-4).unwrap();

    let hist: Vec<Predicate> = (0..10)
        .map(|i| Predicate::range("capital_gain", 500.0 * i as f64, 500.0 * (i + 1) as f64))
        .collect();

    let wcq = e
        .submit(&ExplorationQuery::wcq(hist.clone()), &acc)
        .unwrap();
    let icq = e
        .submit(&ExplorationQuery::icq(hist.clone(), 0.2 * n), &acc)
        .unwrap();
    let tcq = e.submit(&ExplorationQuery::tcq(hist, 3), &acc).unwrap();

    assert!(wcq.answered().is_some());
    let icq_bins = icq
        .answered()
        .expect("icq answered")
        .answer
        .as_bins()
        .unwrap()
        .to_vec();
    // Only the zero-gain bin holds > 20% of people.
    assert_eq!(icq_bins, vec![0]);
    let tcq_bins = tcq
        .answered()
        .expect("tcq answered")
        .answer
        .as_bins()
        .unwrap()
        .to_vec();
    assert_eq!(tcq_bins.len(), 3);
    assert_eq!(tcq_bins[0], 0, "zero-gain bin is the clear max");

    // Sequential composition: spend equals the sum of the three answers.
    let total: f64 = e.transcript().entries().iter().map(|t| t.epsilon()).sum();
    assert!((e.spent() - total).abs() < 1e-12);
    assert!(e.transcript().is_valid(5.0));
}

#[test]
fn adaptive_sequence_respects_budget_until_denial() {
    let mut e = engine(0.3, Mode::Pessimistic);
    let n = 8_000.0;
    let acc = AccuracySpec::new(0.02 * n, 5e-4).unwrap();
    let mut denied_seen = false;
    // Adaptively narrow the range based on the previous noisy answer.
    let mut lo = 0.0;
    let mut hi = 5_000.0;
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        let wl = vec![
            Predicate::range("capital_gain", lo, mid),
            Predicate::range("capital_gain", mid, hi),
        ];
        match e.submit(&ExplorationQuery::wcq(wl), &acc).unwrap() {
            EngineResponse::Answered(a) => {
                let c = a.answer.as_counts().unwrap();
                if c[0] >= c[1] {
                    hi = mid;
                } else {
                    lo = mid;
                }
                if hi - lo < 2.0 {
                    lo = 0.0;
                    hi = 5_000.0;
                }
            }
            EngineResponse::Denied => {
                denied_seen = true;
                break;
            }
        }
    }
    assert!(denied_seen, "budget 0.3 cannot sustain 40 tight queries");
    assert!(e.spent() <= 0.3 + 1e-9);
    assert!(e.transcript().is_valid(0.3));
}

#[test]
fn mode_changes_mechanism_choice_for_icq() {
    let n = 8_000.0;
    let acc = AccuracySpec::new(0.05 * n, 5e-4).unwrap();
    let wl: Vec<Predicate> = (0..8)
        .map(|i| Predicate::range("capital_gain", 625.0 * i as f64, 625.0 * (i + 1) as f64))
        .collect();
    // Threshold at 0.5·|D|: the zero-gain bin (~0.91·|D|) and the rest
    // (~0.01·|D| each) are both far from it, so MPM decides after few
    // pokes. (0.9·|D| would sit right on the big bin's count — the bad
    // case for the optimist, exercised in the fig4c experiment instead.)
    let q = ExplorationQuery::icq(wl, 0.5 * n);

    let mut opt = engine(5.0, Mode::Optimistic);
    let a_opt = opt.submit(&q, &acc).unwrap();
    assert_eq!(a_opt.answered().unwrap().mechanism, "MPM");

    let mut pes = engine(5.0, Mode::Pessimistic);
    let a_pes = pes.submit(&q, &acc).unwrap();
    assert_ne!(a_pes.answered().unwrap().mechanism, "MPM");

    // On this easy threshold the optimist's actual spend is below the
    // pessimist's (MPM stops at the first poke).
    assert!(opt.spent() < pes.spent());
}

#[test]
fn denial_leaves_budget_for_smaller_questions() {
    let mut e = engine(0.02, Mode::Pessimistic);
    let n = 8_000.0;
    // Too tight: denied.
    let tight = AccuracySpec::new(0.001 * n, 5e-4).unwrap();
    let wl = vec![Predicate::range("capital_gain", 0.0, 2_500.0)];
    assert!(e
        .submit(&ExplorationQuery::wcq(wl.clone()), &tight)
        .unwrap()
        .is_denied());
    // Loose: answered.
    let loose = AccuracySpec::new(0.2 * n, 5e-4).unwrap();
    assert!(!e
        .submit(&ExplorationQuery::wcq(wl), &loose)
        .unwrap()
        .is_denied());
}
