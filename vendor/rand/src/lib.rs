//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the small subset of the `rand 0.8` API it actually
//! uses, implemented from scratch on top of xoshiro256++ (Blackman &
//! Vigna). The subset:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`,
//! * [`SeedableRng::seed_from_u64`] (SplitMix64 seeding, as upstream),
//! * [`rngs::StdRng`],
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! Determinism matters more than statistical pedigree here: every seeded
//! stream must reproduce bit-for-bit across runs and platforms, because the
//! privacy analyzer's accept/deny decisions are required to be deterministic
//! functions of their inputs. xoshiro256++ is exactly reproducible from its
//! 256-bit state and passes BigCrush, which is far more than the Monte-Carlo
//! translation needs. The streams do **not** match upstream `rand`'s ChaCha12
//! `StdRng` — nothing in this workspace depends on upstream-compatible
//! streams, only on internal stability.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "natural" distribution
/// (the moral equivalent of upstream's `Standard`): full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
pub trait Random: Sized {
    /// Draws one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// 53-bit uniform in `[0, 1)`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// 24-bit uniform in `[0, 1)`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` by bitmask rejection — unbiased and exactly
/// reproducible (no platform-dependent widening tricks).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    let mask = u64::MAX >> (n - 1).leading_zeros();
    loop {
        let v = rng.next_u64() & mask;
        if v < n {
            return v;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::random(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against the rounding edge where v == end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the type's natural distribution (see [`Random`]).
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all residues of a small range hit");
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v != (0..50).collect::<Vec<_>>(), "50 elements should move");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
