//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: the build environment has no registry access, and the workspace
//! only uses `Mutex` with `parking_lot`'s non-poisoning `lock()` signature.
//!
//! Implemented over `std::sync::Mutex`; a poisoned lock is recovered rather
//! than propagated, matching `parking_lot` semantics (no poisoning).

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type; identical to the std guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is ignored
    /// (`parking_lot` has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
