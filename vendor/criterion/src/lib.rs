//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness: the build environment has no registry access, so this
//! crate implements the subset the APEx benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Compared to upstream it keeps the measurement loop simple: warm up,
//! calibrate the per-sample iteration count so a sample takes a minimum wall
//! time, collect `sample_size` samples, and report min/median/mean ns per
//! iteration. Every result is retained on the [`Criterion`] value
//! (see [`Criterion::results`]) so benches can post-process measurements —
//! e.g. emit machine-readable JSON for performance tracking.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value` (re-export of the std
/// hint, which is what upstream criterion uses on recent toolchains).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `"{name}/{parameter}"`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id, so `bench_function` accepts both
/// strings and [`BenchmarkId`]s (upstream's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (empty for ungrouped benches).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Fastest observed sample, ns per iteration.
    pub min_ns: f64,
    /// Median sample, ns per iteration.
    pub median_ns: f64,
    /// Mean over samples, ns per iteration.
    pub mean_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

impl BenchResult {
    /// Full name `group/id` (or just `id` when ungrouped).
    pub fn full_name(&self) -> String {
        if self.group.is_empty() {
            self.id.clone()
        } else {
            format!("{}/{}", self.group, self.id)
        }
    }
}

/// Runs the timing loop for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    min_sample_time: Duration,
    /// ns-per-iteration samples collected by the last `iter` call.
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize, min_sample_time: Duration) -> Self {
        Self {
            sample_size,
            min_sample_time,
            samples_ns: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Measures `routine`: calibrates an iteration count so one sample meets
    /// the minimum sample time, then records `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: run once, scale the iteration count until a
        // sample takes at least `min_sample_time`.
        let mut iters: u64 = 1;
        let target = self.min_sample_time;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= target || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed.as_nanos() == 0 {
                16
            } else {
                ((target.as_nanos() / elapsed.as_nanos()) + 1).min(16) as u64
            };
            iters = iters.saturating_mul(grow.max(2));
        }

        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            self.samples_ns.push(ns);
        }
    }

    fn result(&self, group: &str, id: &str) -> BenchResult {
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median_ns = if n == 0 {
            f64::NAN
        } else if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        BenchResult {
            group: group.to_string(),
            id: id.to_string(),
            min_ns: sorted.first().copied().unwrap_or(f64::NAN),
            median_ns,
            mean_ns: sorted.iter().sum::<f64>() / n.max(1) as f64,
            samples: n,
            iters_per_sample: self.iters_per_sample,
        }
    }
}

/// The benchmark harness: collects results and prints a summary line per
/// benchmark as it finishes.
#[derive(Debug)]
pub struct Criterion {
    results: Vec<BenchResult>,
    default_sample_size: usize,
    min_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            results: Vec::new(),
            default_sample_size: 15,
            min_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let mut b = Bencher::new(self.default_sample_size, self.min_sample_time);
        f(&mut b);
        self.record(b.result("", &id));
        self
    }

    fn record(&mut self, r: BenchResult) {
        println!(
            "bench {:<48} median {:>14} ns/iter  (min {:.0} ns, {} samples x {} iters)",
            r.full_name(),
            format!("{:.1}", r.median_ns),
            r.min_ns,
            r.samples,
            r.iters_per_sample,
        );
        self.results.push(r);
    }

    /// All results measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks measured", self.results.len());
    }
}

/// A group of related benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let mut b = Bencher::new(self.sample_size, self.criterion.min_sample_time);
        f(&mut b);
        let r = b.result(&self.name, &id);
        self.criterion.record(r);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let mut b = Bencher::new(self.sample_size, self.criterion.min_sample_time);
        f(&mut b, input);
        let r = b.result(&self.name, &id);
        self.criterion.record(r);
        self
    }

    /// Ends the group (kept for API compatibility; groups have no teardown).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function, mirroring
/// upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a set of groups, mirroring upstream
/// `criterion_main!`. Requires `harness = false` on the `[[bench]]` target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        let r = &c.results()[0];
        assert_eq!(r.full_name(), "g/noop");
        assert!(r.median_ns.is_finite() && r.median_ns >= 0.0);
        assert_eq!(r.samples, 3);
        assert_eq!(c.results()[1].full_name(), "g/param/7");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).into_id(), "a/3");
        assert_eq!(BenchmarkId::from_parameter(64).into_id(), "64");
    }
}
