//! A zero-dependency JSON value type, parser, and serializer.
//!
//! The repo policy is offline and std-only (no serde), so the service's
//! wire format is handled by this small module. It covers exactly what a
//! JSON API needs: the full value grammar (RFC 8259) with string escapes
//! and `\uXXXX` sequences (surrogate pairs included), a recursion depth
//! cap so adversarial bodies cannot overflow the stack, and deterministic
//! rendering (object keys keep insertion order; numbers that are exact
//! integers print without a fraction).
//!
//! Non-finite numbers have no JSON representation; rendering maps them to
//! `null` rather than emitting invalid output (the wire types never
//! contain them — budgets and epsilons are finite by construction).

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered (duplicate keys: last one wins on
    /// lookup, all are rendered — the parser never produces duplicates
    /// from well-formed senders, and lookup order matches serde_json).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fraction, no overflow past 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failures, with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
/// [`JsonError`] on malformed input, unterminated strings, bad escapes,
/// numbers outside the grammar, or nesting beyond a fixed depth cap.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str, whole: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(whole))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null", "expected null").map(|()| Json::Null),
            Some(b't') => self.eat("true", "expected true").map(|()| Json::Bool(true)),
            Some(b'f') => self
                .eat("false", "expected false")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes or quotes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is &str, so the run is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("slice of a str on char boundaries"),
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        if self.peek() != Some(b'u') {
                            return Err(self.err("expected low surrogate escape"));
                        }
                        self.pos += 1;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number slice of a str");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-1", "3.25", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.render(), text, "{text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#" {"a": [1, 2, {"b": null}], "c": "x" } "#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(v.render(), r#"{"a":[1,2,{"b":null}],"c":"x"}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{e9}\u{1f600}"));
        // Render escapes the minimum and re-parses to the same value.
        let again = parse(&v.render()).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.",
            "-",
            "\"\\x\"",
            "\"",
            "01a",
            "1 2",
            "{\"a\":1,}",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_cap_stops_recursion() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_render_readably() {
        assert_eq!(Json::Num(2.0).render(), "2");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(-0.0).render(), "0");
        assert_eq!(Json::from(123_u64).render(), "123");
    }

    #[test]
    fn u64_accessor_is_exact() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
