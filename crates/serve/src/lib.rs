//! `apex-serve` — a multi-tenant HTTP/1.1 JSON query service over shared
//! APEx engines.
//!
//! The ROADMAP's multi-tenant north star needs a front end: analysts
//! open **sessions** against registered datasets, each session holding a
//! slice of that dataset's privacy budget, and submit exploration
//! queries in the paper's concrete syntax. The service is std-only — a
//! hand-rolled HTTP server over `std::net` with a fixed thread pool
//! ([`http`]), a zero-dependency JSON module ([`json`]), and no async
//! runtime — consistent with the repo's offline vendored-shim policy.
//!
//! Layering:
//!
//! * [`json`] — JSON values, parsing, rendering;
//! * [`http`] — the socket layer: request parsing, thread pool, graceful
//!   shutdown;
//! * [`wire`] — bodies ↔ engine types ([`apex_query::ExplorationQuery`],
//!   [`apex_core::EngineResponse`], …);
//! * [`state`] — tenants (one [`apex_core::SharedEngine`] per dataset,
//!   one shared translator cache with per-tenant stat scopes) and live
//!   sessions (budget slices);
//! * [`router`] — endpoint dispatch and status-code mapping (a *denied*
//!   query is 409, not an error);
//! * [`selftest`] — the end-to-end gate CI runs (`--self-test`): a
//!   scripted concurrent workload over real sockets asserting budget
//!   conservation, protocol discipline, and cross-session cache sharing;
//! * [`client`] — the small blocking client the self-test and examples
//!   drive the server with.
//!
//! Budget semantics under concurrency are documented in
//! `docs/SERVICE.md`; the one-line summary: admission checks the
//! session's slice **and** the engine's remaining `B` atomically under
//! the engine lock, so no interleaving of sessions can overshoot either.

pub mod client;
pub mod http;
pub mod json;
pub mod router;
pub mod selftest;
pub mod state;
pub mod wire;

pub use http::{serve, Request, Response, ServerHandle};
pub use json::Json;
pub use selftest::{run as run_self_test, SelfTestConfig, SelfTestReport};
pub use state::{ServerState, ServerStateBuilder};
