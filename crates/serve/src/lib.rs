//! `apex-serve` — a multi-tenant HTTP/1.1 JSON query service over shared
//! APEx engines.
//!
//! The ROADMAP's multi-tenant north star needs a front end: analysts
//! open **sessions** against registered datasets, each session holding a
//! slice of that dataset's privacy budget, and submit exploration
//! queries in the paper's concrete syntax. The service is std-only — a
//! hand-rolled HTTP server over `std::net` with a fixed thread pool
//! ([`http`]), a zero-dependency JSON module ([`json`]), and no async
//! runtime — consistent with the repo's offline vendored-shim policy.
//!
//! Layering:
//!
//! * [`json`] — JSON values, parsing, rendering;
//! * [`http`] — the socket layer: request parsing, thread pool, graceful
//!   shutdown;
//! * [`wire`] — bodies ↔ engine types ([`apex_query::ExplorationQuery`],
//!   [`apex_core::EngineResponse`], …);
//! * [`wal`] — the write-ahead log: length-prefixed, checksummed records
//!   for every budget-mutating event, appended + fsynced before the
//!   client is acked;
//! * [`snapshot`] — periodic compaction of the ledger + session table,
//!   and the state-directory layout recovery reads;
//! * [`clock`] — injectable time, so session-TTL behavior is
//!   deterministic under test;
//! * [`state`] — tenants (one [`apex_core::SharedEngine`] per dataset,
//!   one shared translator cache with per-tenant stat scopes), live
//!   sessions (budget slices with idle TTLs), WAL-over-snapshot
//!   recovery, and the TTL reaper;
//! * [`router`] — endpoint dispatch and status-code mapping (a *denied*
//!   query is 409, an *expired* session is 410, the admin plane checks a
//!   bearer token);
//! * [`shard`] — the shard layer: N shard workers each owning its own
//!   engines, ledger gate, WAL sequence, and `state-dir/shard-K/`
//!   directory; tenants routed by consistent hashing; a nonblocking
//!   accept/dispatch loop with bounded per-shard queues (full ⇒ 503 +
//!   `Retry-After`); parallel per-shard recovery at boot; aggregated
//!   `/v1/stats`;
//! * [`selftest`] — the end-to-end gate CI runs (`--self-test`): a
//!   scripted concurrent workload over real sockets asserting budget
//!   conservation, protocol discipline, cross-session cache sharing, and
//!   (new) restart recovery — the run is persisted, restarted
//!   in-process, and the recovered ledger re-verified against what the
//!   wire acked;
//! * [`client`] — the small blocking client the self-test and examples
//!   drive the server with.
//!
//! Budget semantics under concurrency are documented in
//! `docs/SERVICE.md`; the one-line summary: submissions are two-phase —
//! the mechanism *evaluates* speculatively with no lock held, and the
//! *commit* re-validates the worst case against the session's slice
//! **and** the engine's remaining `B` atomically before charging, so no
//! interleaving of sessions can overshoot either (a commit that loses
//! the race is denied and charges nothing). Persistence semantics are
//! there too; *that* one-line summary: the WAL append happens at the
//! commit point, before the charge and before the ack, so a
//! kill-and-restart can only ever leave the recovered ledger **at or
//! above** the sum of acked responses — never below (spent budget is
//! the one thing the engine must never forget) — and a *failed* append
//! charges nothing at all.

pub mod client;
pub mod clock;
#[cfg(any(test, feature = "sched"))]
pub mod exerciser;
pub mod http;
pub mod json;
pub mod router;
pub mod selftest;
pub mod shard;
pub mod snapshot;
pub mod state;
pub mod wal;
pub mod wire;

pub use clock::{Clock, ManualClock, SystemClock};
pub use http::{serve, Request, Response, ServerHandle};
pub use json::Json;
pub use selftest::{run as run_self_test, SelfTestConfig, SelfTestReport};
pub use shard::{serve_sharded, ServeConfig, ShardRing, ShardServerHandle, ShardSet};
pub use state::{
    start_reaper, PersistOptions, ReaperHandle, RecoverError, RecoveryReport, ServerState,
    ServerStateBuilder, SessionStatus, SubmitOutcome,
};

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;

    /// A unique scratch directory for one test (pid + thread id keep
    /// parallel test runs apart); any stale leftover is removed first,
    /// creation is left to the test (some exercise creation itself).
    pub(crate) fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "apex-serve-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }
}
