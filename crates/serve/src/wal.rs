//! The write-ahead log: every budget-mutating event is appended (and
//! fsynced) *before* the client sees its ack.
//!
//! A restart that forgets spent privacy budget silently refills `B` —
//! the one failure a DP engine can never afford. So the rule is strict
//! write-ahead ordering per event: charge in memory → append + sync the
//! record → only then write the HTTP response. A crash between charge
//! and append loses an event the client was never acked (recovered spend
//! can only *undercount relative to memory*, never relative to acks);
//! a crash between append and ack recovers spend the client never saw —
//! recovered-spent ≥ acked-sum always holds.
//!
//! ## On-disk format (std-only, no serde)
//!
//! ```text
//! file   := magic record*           magic  := b"APEXWAL1"
//! record := len:u32 crc:u32 payload  (little-endian, crc32(payload))
//! payload:= tag:u8 fields…           (fixed-width LE fields)
//! ```
//!
//! Tags: 1 = session open, 2 = budget debit (an answered query),
//! 3 = deny (audit only — charges nothing), 4 = session close
//! (TTL expiry or admin, carrying the released unspent slice),
//! 5 = row mutation (an applied insert/delete batch with the rows and
//! the dataset epoch it produced — replayable against in-memory
//! tenants, idempotent against durable ones).
//!
//! ## Tail discipline
//!
//! [`read_wal`] stops at the **last valid record** and classifies what
//! follows: [`WalTail::Clean`] (EOF exactly after a record),
//! [`WalTail::Torn`] (a partial record — the expected artifact of a
//! crash mid-append; recovery truncates it and proceeds), or
//! [`WalTail::Corrupt`] (a *complete* record whose checksum or framing
//! is wrong — bit rot, not a torn write; recovery refuses to start
//! unless explicitly told to truncate). No partial record is ever
//! replayed in any mode.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// File magic: identifies a WAL and pins its format version.
pub const WAL_MAGIC: &[u8; 8] = b"APEXWAL1";

/// Upper bound on a record payload; a declared length beyond this is
/// corruption (no legitimate record comes close — it bounds allocation
/// when a length prefix is damaged).
pub(crate) const MAX_PAYLOAD: usize = 64 << 10;

/// One logged event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A session was opened on `dataset` with budget slice `allowance`.
    Open {
        /// Server-assigned session id.
        session: u64,
        /// The tenant dataset the session is bound to.
        dataset: String,
        /// The session's budget slice.
        allowance: f64,
    },
    /// An answered query charged `epsilon` to `session` (and its
    /// tenant's engine). This is the record privacy accounting lives by.
    Debit {
        /// The charged session.
        session: u64,
        /// Actual privacy loss charged.
        epsilon: f64,
    },
    /// A query was denied — charges nothing; logged so the persisted
    /// history mirrors the transcript's interaction order.
    Deny {
        /// The denied session.
        session: u64,
    },
    /// A session was closed (TTL expiry or admin), releasing the unspent
    /// remainder of its slice.
    Close {
        /// The closed session.
        session: u64,
        /// Unspent allowance released back to the grant pool.
        released: f64,
    },
    /// A row mutation was applied to `dataset`'s engine. Logged (and
    /// synced) before the mutation is acked, carrying the **requested**
    /// batch — replay runs it through the same mutation path, which is
    /// deterministic (first-match-in-storage-order deletes), so the
    /// recovered delta and epoch are bit-identical to the original.
    /// Recovery re-applies it to in-memory tenants; durable (paged)
    /// tenants committed it themselves, so the replay is made
    /// idempotent by `epoch_after`: a record whose epoch the store has
    /// already reached is skipped.
    Mutate {
        /// The mutated tenant dataset.
        dataset: String,
        /// `true` for an insert batch, `false` for a delete batch.
        insert: bool,
        /// Dataset epoch after this mutation applied.
        epoch_after: u64,
        /// The requested row batch (never empty).
        rows: Vec<Vec<apex_data::Value>>,
    },
}

impl WalRecord {
    /// Serializes the payload (tag + fields, no frame).
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::Open {
                session,
                dataset,
                allowance,
            } => {
                out.push(1);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&allowance.to_le_bytes());
                push_str(&mut out, dataset);
            }
            WalRecord::Debit { session, epsilon } => {
                out.push(2);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&epsilon.to_le_bytes());
            }
            WalRecord::Deny { session } => {
                out.push(3);
                out.extend_from_slice(&session.to_le_bytes());
            }
            WalRecord::Close { session, released } => {
                out.push(4);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&released.to_le_bytes());
            }
            WalRecord::Mutate {
                dataset,
                insert,
                epoch_after,
                rows,
            } => {
                out.push(5);
                out.push(u8::from(*insert));
                out.extend_from_slice(&epoch_after.to_le_bytes());
                push_str(&mut out, dataset);
                push_rows(&mut out, rows);
            }
        }
        out
    }

    /// Parses a payload. `None` on any structural mismatch (unknown tag,
    /// wrong field width, non-UTF-8 dataset name) — the caller treats
    /// that as corruption.
    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = payload.split_first()?;
        match tag {
            1 => {
                let (session, rest) = take_u64(rest)?;
                let (allowance, rest) = take_f64(rest)?;
                let (dataset, rest) = take_str(rest)?;
                rest.is_empty().then_some(WalRecord::Open {
                    session,
                    dataset,
                    allowance,
                })
            }
            2 => {
                let (session, rest) = take_u64(rest)?;
                let (epsilon, rest) = take_f64(rest)?;
                rest.is_empty()
                    .then_some(WalRecord::Debit { session, epsilon })
            }
            3 => {
                let (session, rest) = take_u64(rest)?;
                rest.is_empty().then_some(WalRecord::Deny { session })
            }
            4 => {
                let (session, rest) = take_u64(rest)?;
                let (released, rest) = take_f64(rest)?;
                rest.is_empty()
                    .then_some(WalRecord::Close { session, released })
            }
            5 => {
                let (&flag, rest) = rest.split_first()?;
                let insert = match flag {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                let (epoch_after, rest) = take_u64(rest)?;
                let (dataset, rest) = take_str(rest)?;
                let (rows, rest) = take_rows(rest)?;
                rest.is_empty().then_some(WalRecord::Mutate {
                    dataset,
                    insert,
                    epoch_after,
                    rows,
                })
            }
            _ => None,
        }
    }

    /// Serializes the full framed record (`len ‖ crc ‖ payload`).
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("small payload")
                .to_le_bytes(),
        );
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

pub(crate) fn take_u64(b: &[u8]) -> Option<(u64, &[u8])> {
    let (head, rest) = b.split_at_checked(8)?;
    Some((u64::from_le_bytes(head.try_into().ok()?), rest))
}

pub(crate) fn take_f64(b: &[u8]) -> Option<(f64, &[u8])> {
    let (head, rest) = b.split_at_checked(8)?;
    Some((f64::from_le_bytes(head.try_into().ok()?), rest))
}

pub(crate) fn take_u16(b: &[u8]) -> Option<(u16, &[u8])> {
    let (head, rest) = b.split_at_checked(2)?;
    Some((u16::from_le_bytes(head.try_into().ok()?), rest))
}

pub(crate) fn take_u32(b: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = b.split_at_checked(4)?;
    Some((u32::from_le_bytes(head.try_into().ok()?), rest))
}

/// Length-prefixed UTF-8 string framing (u16 LE length + bytes) —
/// shared by the WAL and snapshot codecs so the two formats cannot
/// drift apart.
pub(crate) fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len()).expect("names are short");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(bytes);
}

/// The decode half of [`push_str`].
pub(crate) fn take_str(b: &[u8]) -> Option<(String, &[u8])> {
    let (len, rest) = take_u16(b)?;
    let (head, rest) = rest.split_at_checked(len as usize)?;
    Some((std::str::from_utf8(head).ok()?.to_string(), rest))
}

/// Row-batch framing for mutation records (and the snapshot's mutation
/// journal): `count:u32`, then per row `arity:u16` + tagged values.
pub(crate) fn push_rows(out: &mut Vec<u8>, rows: &[Vec<apex_data::Value>]) {
    let n = u32::try_from(rows.len()).expect("bounded batch");
    out.extend_from_slice(&n.to_le_bytes());
    for row in rows {
        let arity = u16::try_from(row.len()).expect("narrow rows");
        out.extend_from_slice(&arity.to_le_bytes());
        for v in row {
            push_value(out, v);
        }
    }
}

/// The decode half of [`push_rows`]; `None` on structural mismatch.
pub(crate) fn take_rows(b: &[u8]) -> Option<(Vec<Vec<apex_data::Value>>, &[u8])> {
    let (n, mut rest) = take_u32(b)?;
    // A declared count that cannot fit in the payload is a damaged
    // field — refuse before allocating on it.
    if n as usize > rest.len() / 2 {
        return None;
    }
    let mut rows = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let (arity, mut r) = take_u16(rest)?;
        if arity as usize > r.len() {
            return None;
        }
        let mut row = Vec::with_capacity(arity as usize);
        for _ in 0..arity {
            let (v, r2) = take_value(r)?;
            row.push(v);
            r = r2;
        }
        rows.push(row);
        rest = r;
    }
    Some((rows, rest))
}

/// Tagged cell-value framing for mutation records: `tag:u8` then the
/// value (Int/Float = 8 LE bytes, Bool = 1 byte, Str = [`push_str`]
/// framing, Null = nothing).
fn push_value(out: &mut Vec<u8>, v: &apex_data::Value) {
    match v {
        apex_data::Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        apex_data::Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_le_bytes());
        }
        apex_data::Value::Str(s) => {
            out.push(3);
            push_str(out, s);
        }
        apex_data::Value::Bool(b) => {
            out.push(4);
            out.push(u8::from(*b));
        }
        apex_data::Value::Null => out.push(5),
    }
}

/// The decode half of [`push_value`]; `None` on any structural mismatch.
fn take_value(b: &[u8]) -> Option<(apex_data::Value, &[u8])> {
    let (&tag, rest) = b.split_first()?;
    match tag {
        1 => {
            let (head, rest) = rest.split_at_checked(8)?;
            Some((
                apex_data::Value::Int(i64::from_le_bytes(head.try_into().ok()?)),
                rest,
            ))
        }
        2 => {
            let (f, rest) = take_f64(rest)?;
            Some((apex_data::Value::Float(f), rest))
        }
        3 => {
            let (s, rest) = take_str(rest)?;
            Some((apex_data::Value::Str(s), rest))
        }
        4 => {
            let (&flag, rest) = rest.split_first()?;
            match flag {
                0 => Some((apex_data::Value::Bool(false), rest)),
                1 => Some((apex_data::Value::Bool(true), rest)),
                _ => None,
            }
        }
        5 => Some((apex_data::Value::Null, rest)),
        _ => None,
    }
}

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven, std-only.
///
/// The const-fn table now lives with the dataset store
/// (`apex_data::store::page`) so WAL records and data pages share one
/// implementation; re-exported here for the existing callers.
pub use apex_data::store::page::crc32;

/// What follows the last valid record in a WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The file ends exactly after the last valid record.
    Clean,
    /// A partial record at EOF — the normal artifact of a crash
    /// mid-append. Safe to truncate at `valid_len` and proceed.
    Torn {
        /// Byte offset of the end of the last valid record.
        valid_len: u64,
    },
    /// A structurally complete record that fails its checksum (or
    /// framing that cannot be a torn write): bit rot. Recovery stops at
    /// `valid_len` but should not proceed without explicit operator
    /// consent.
    Corrupt {
        /// Byte offset of the end of the last valid record.
        valid_len: u64,
    },
}

impl WalTail {
    /// The byte offset the valid prefix ends at (`None` when clean).
    pub fn valid_len(&self) -> Option<u64> {
        match self {
            WalTail::Clean => None,
            WalTail::Torn { valid_len } | WalTail::Corrupt { valid_len } => Some(*valid_len),
        }
    }
}

/// Decodes a WAL image: every record of the longest valid prefix, plus
/// the tail classification. **Never** returns a partially decoded
/// record — decoding stops at the last record whose frame, checksum,
/// and payload structure all verify.
pub fn decode_wal(bytes: &[u8]) -> (Vec<WalRecord>, WalTail) {
    let mut records = Vec::new();
    // An empty file is a fresh WAL; a short or wrong magic is damage.
    if bytes.is_empty() {
        return (records, WalTail::Clean);
    }
    if bytes.len() < WAL_MAGIC.len() {
        return (records, WalTail::Torn { valid_len: 0 });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return (records, WalTail::Corrupt { valid_len: 0 });
    }

    let mut pos = WAL_MAGIC.len();
    loop {
        let valid_len = pos as u64;
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return (records, WalTail::Clean);
        }
        if rest.len() < 8 {
            // Not even a full frame header: torn mid-append.
            return (records, WalTail::Torn { valid_len });
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            // No legitimate writer produces this; a damaged length
            // prefix is indistinguishable from garbage: corruption.
            return (records, WalTail::Corrupt { valid_len });
        }
        if rest.len() < 8 + len {
            // Declared payload extends past EOF: torn mid-append.
            return (records, WalTail::Torn { valid_len });
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            return (records, WalTail::Corrupt { valid_len });
        }
        let Some(record) = WalRecord::decode_payload(payload) else {
            return (records, WalTail::Corrupt { valid_len });
        };
        records.push(record);
        pos += 8 + len;
    }
}

/// Reads and decodes a WAL file; a missing file is an empty, clean WAL.
///
/// # Errors
/// Propagates I/O failures (not corruption — that is in the [`WalTail`]).
pub fn read_wal(path: &Path) -> std::io::Result<(Vec<WalRecord>, WalTail)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(decode_wal(&bytes))
}

/// Truncates a damaged WAL at the end of its valid prefix, in place.
///
/// # Errors
/// Propagates I/O failures.
pub fn truncate_wal(path: &Path, valid_len: u64) -> std::io::Result<()> {
    let mut f = OpenOptions::new().write(true).open(path)?;
    // Below the magic there is nothing worth keeping: reset to a fresh
    // header so the file stays a well-formed (empty) WAL.
    if valid_len < WAL_MAGIC.len() as u64 {
        f.set_len(0)?;
        f.write_all(WAL_MAGIC)?;
    } else {
        f.set_len(valid_len)?;
    }
    f.sync_all()
}

/// An append handle: open (creating the magic if new), append records,
/// each append synced to disk before it returns.
///
/// A *failed* append may leave a partial frame on disk; the writer
/// truncates back to the end of the last good record before returning
/// the error, because a mid-file torn region would make every later
/// (acked!) record unreachable — [`decode_wal`] stops at the first bad
/// frame. If even the truncation fails, the writer poisons itself: all
/// further appends error out, so nothing past the damage can be acked.
#[derive(Debug)]
pub struct WalWriter {
    /// Shared so [`WalWriter::append_deferred`] can hand the caller a
    /// handle to `sync_data` *outside* whatever lock serializes appends.
    file: Arc<File>,
    /// Records appended through this writer (not counting pre-existing
    /// ones) — the compaction trigger counts these.
    appended: u64,
    /// Whether appends fsync before returning. Always true in
    /// production; tests may trade durability for speed.
    sync: bool,
    /// File length after the last successful append — the rollback
    /// point when an append fails partway.
    good_len: u64,
    /// Set when a failed append could not be rolled back; the file may
    /// hold a mid-file partial frame, so no further record may go after
    /// it.
    poisoned: bool,
}

impl WalWriter {
    /// Opens `path` for appending, writing the magic when the file is
    /// new or empty.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn open(path: &Path, sync: bool) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if file.metadata()?.len() == 0 {
            file.write_all(WAL_MAGIC)?;
            if sync {
                file.sync_all()?;
            }
        }
        let good_len = file.metadata()?.len();
        Ok(Self {
            file: Arc::new(file),
            appended: 0,
            sync,
            good_len,
            poisoned: false,
        })
    }

    /// Appends one record; when the writer syncs (production), the
    /// record is on disk before this returns — the write-ahead
    /// guarantee callers ack against.
    ///
    /// # Errors
    /// Propagates I/O failures; the caller must fail the request rather
    /// than ack an unlogged budget mutation. After an error the file is
    /// rolled back to the last good record (or the writer is poisoned),
    /// so a later successful append can never be stranded behind a
    /// partial frame.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.append_with(record, true)
    }

    /// [`WalWriter::append`] for records that need *ordering* but not
    /// *durability* (denials: they charge nothing, so losing the tail
    /// of them in a crash changes no recovered state). The write still
    /// lands in file order, and the next durable append's fsync carries
    /// it to disk — there is no reordering hole, only a shorter
    /// clean/torn tail if the crash comes first.
    pub fn append_relaxed(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.append_with(record, false)
    }

    fn append_with(&mut self, record: &WalRecord, durable: bool) -> std::io::Result<()> {
        if self.poisoned {
            return Err(std::io::Error::other(
                "WAL writer poisoned by an earlier unrecoverable append failure",
            ));
        }
        apex_core::sched_point!("wal.append.enter");
        let frame = record.encode();
        let result = (&*self.file).write_all(&frame).and_then(|()| {
            if self.sync && durable {
                self.file.sync_data()
            } else {
                Ok(())
            }
        });
        match result {
            Ok(()) => {
                self.good_len += frame.len() as u64;
                self.appended += 1;
                apex_core::sched_point!("wal.append.ok");
                Ok(())
            }
            Err(e) => {
                // Cut any partial frame off; in append mode the next
                // write lands at the (restored) EOF.
                if self.file.set_len(self.good_len).is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Appends one record *without* syncing, returning (when this writer
    /// syncs at all) the file handle the caller must `sync_data` before
    /// acking. The point is lock scope: appends are serialized by
    /// whatever mutex guards this writer, but the fsync — the 100µs+
    /// part — can run after that mutex is released. A sibling thread
    /// then appends the next record *while* this one's fsync is in
    /// flight, and its own fsync finds the inode already clean (or
    /// rides the same journal commit): group commit, supplied by the
    /// kernel rather than bookkeeping. Concurrent `sync_data` calls on
    /// one file are safe; each returns only once every byte written
    /// before the call — in particular, this record — is durable.
    ///
    /// The deferred fsync has no rollback: by the time it fails, later
    /// records may sit after this one, so truncation would destroy
    /// them. The caller must [`WalWriter::poison`] the writer and fail
    /// the request instead. The un-synced record may still reach disk
    /// with a later journal commit — that only *over*-counts recovered
    /// spend relative to acks, the safe direction for a budget ledger.
    ///
    /// # Errors
    /// Propagates write failures; the file is rolled back (or the
    /// writer poisoned) exactly as for [`WalWriter::append`] — the
    /// write itself still happens under the append lock.
    pub fn append_deferred(&mut self, record: &WalRecord) -> std::io::Result<Option<Arc<File>>> {
        self.append_with(record, false)?;
        Ok(self.sync.then(|| Arc::clone(&self.file)))
    }

    /// Poisons the writer: every later append fails. For a deferred
    /// sync failure, where the usual truncate-the-partial-frame
    /// rollback is impossible (see [`WalWriter::append_deferred`]).
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Records appended through this writer.
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Open {
                session: 1,
                dataset: "adult".into(),
                allowance: 0.25,
            },
            WalRecord::Debit {
                session: 1,
                epsilon: 0.0625,
            },
            WalRecord::Deny { session: 1 },
            WalRecord::Open {
                session: 2,
                dataset: "taxi".into(),
                allowance: 0.5,
            },
            WalRecord::Debit {
                session: 2,
                epsilon: 0.125,
            },
            WalRecord::Close {
                session: 1,
                released: 0.1875,
            },
            WalRecord::Mutate {
                dataset: "adult".into(),
                insert: true,
                epoch_after: 3,
                rows: vec![
                    vec![
                        apex_data::Value::Int(41),
                        apex_data::Value::Float(2.5),
                        apex_data::Value::Str("clerk".into()),
                    ],
                    vec![
                        apex_data::Value::Bool(true),
                        apex_data::Value::Null,
                        apex_data::Value::Int(-7),
                    ],
                ],
            },
            WalRecord::Mutate {
                dataset: "taxi".into(),
                insert: false,
                epoch_after: 9,
                rows: vec![vec![apex_data::Value::Int(2)]],
            },
        ]
    }

    fn encode_log(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&r.encode());
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn every_record_type_round_trips() {
        for r in sample_records() {
            let framed = r.encode();
            let mut bytes = WAL_MAGIC.to_vec();
            bytes.extend_from_slice(&framed);
            let (decoded, tail) = decode_wal(&bytes);
            assert_eq!(tail, WalTail::Clean);
            assert_eq!(decoded, vec![r]);
        }
        // And as one log, in order.
        let (decoded, tail) = decode_wal(&encode_log(&sample_records()));
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(decoded, sample_records());
    }

    /// Property: EVERY possible truncation of the log decodes to an
    /// exact record-boundary prefix — never a partial record — and
    /// anything short of the full file is flagged as a damaged tail.
    #[test]
    fn any_truncation_yields_a_clean_prefix_and_is_detected() {
        let records = sample_records();
        let full = encode_log(&records);
        // Record end offsets, for computing the expected prefix.
        let mut ends = vec![WAL_MAGIC.len()];
        for r in &records {
            ends.push(ends.last().unwrap() + r.encode().len());
        }
        for cut in 0..full.len() {
            let (decoded, tail) = decode_wal(&full[..cut]);
            let expect_n = ends.iter().filter(|&&e| e <= cut).count().saturating_sub(1);
            assert_eq!(
                decoded,
                records[..expect_n],
                "truncation at {cut} must replay exactly the valid prefix"
            );
            if cut == 0 {
                assert_eq!(tail, WalTail::Clean, "empty file is a fresh WAL");
            } else if ends.contains(&cut) {
                // Cut exactly on a record boundary: indistinguishable
                // from a clean shutdown.
                assert_eq!(tail, WalTail::Clean, "cut at {cut}");
            } else {
                // Any mid-record cut is a torn write: flagged, with the
                // valid prefix ending at the last record boundary (or 0
                // when even the magic is incomplete).
                let expect_len = if cut < WAL_MAGIC.len() {
                    0
                } else {
                    ends[expect_n]
                };
                assert_eq!(
                    tail,
                    WalTail::Torn {
                        valid_len: expect_len as u64
                    },
                    "cut at {cut}"
                );
            }
        }
    }

    /// Property: EVERY single-bit corruption of the final record is
    /// detected — decoding stops at the last untouched record, and the
    /// flipped record is never replayed (in full or in part).
    #[test]
    fn any_single_bit_flip_in_the_tail_is_detected() {
        let records = sample_records();
        let full = encode_log(&records);
        let last_len = records.last().unwrap().encode().len();
        let tail_start = full.len() - last_len;
        for byte in tail_start..full.len() {
            for bit in 0..8 {
                let mut damaged = full.clone();
                damaged[byte] ^= 1 << bit;
                let (decoded, tail) = decode_wal(&damaged);
                assert!(
                    decoded.len() < records.len(),
                    "flip at {byte}:{bit} replayed the damaged record"
                );
                assert_eq!(
                    decoded,
                    records[..decoded.len()],
                    "flip at {byte}:{bit} must replay an untouched prefix"
                );
                assert_ne!(
                    tail,
                    WalTail::Clean,
                    "flip at {byte}:{bit} must be detected"
                );
                // The well-formed prefix before the damaged record
                // always survives intact.
                assert_eq!(
                    decoded,
                    records[..records.len() - 1],
                    "flip at {byte}:{bit}"
                );
            }
        }
    }

    /// A checksum-valid prefix followed by garbage that frames as a
    /// complete record is corruption (refuse by default), while a
    /// declared length running past EOF is a torn write (truncatable).
    #[test]
    fn corrupt_versus_torn_classification() {
        let records = sample_records();
        let mut bytes = encode_log(&records[..2]);
        let valid = bytes.len() as u64;

        // Complete frame, wrong checksum → Corrupt.
        let mut bad = records[2].encode();
        bad[4] ^= 0xFF; // damage the crc field
        let mut corrupted = bytes.clone();
        corrupted.extend_from_slice(&bad);
        let (decoded, tail) = decode_wal(&corrupted);
        assert_eq!(decoded, records[..2]);
        assert_eq!(tail, WalTail::Corrupt { valid_len: valid });

        // Half a record → Torn at the same boundary.
        let frame = records[2].encode();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        let (decoded, tail) = decode_wal(&bytes);
        assert_eq!(decoded, records[..2]);
        assert_eq!(tail, WalTail::Torn { valid_len: valid });

        // An absurd length prefix → Corrupt (bounded allocation).
        let mut huge = encode_log(&records[..1]);
        let valid = huge.len() as u64;
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&[0u8; 12]);
        let (decoded, tail) = decode_wal(&huge);
        assert_eq!(decoded, records[..1]);
        assert_eq!(tail, WalTail::Corrupt { valid_len: valid });
    }

    #[test]
    fn writer_reader_and_truncation_work_on_real_files() {
        let dir = crate::testutil::temp_dir("wal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");

        let records = sample_records();
        {
            let mut w = WalWriter::open(&path, true).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            assert_eq!(w.appended(), records.len() as u64);
        }
        // Re-opening appends after the existing content.
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&WalRecord::Deny { session: 9 }).unwrap();
        }
        let (decoded, tail) = read_wal(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(decoded.len(), records.len() + 1);
        assert_eq!(decoded[..records.len()], records);

        // Simulate a crash mid-append: drop half a record at the end.
        let mut bytes = std::fs::read(&path).unwrap();
        let garbage_at = bytes.len();
        bytes.extend_from_slice(&records[0].encode()[..5]);
        std::fs::write(&path, &bytes).unwrap();
        let (decoded, tail) = read_wal(&path).unwrap();
        assert_eq!(decoded.len(), records.len() + 1);
        assert_eq!(
            tail,
            WalTail::Torn {
                valid_len: garbage_at as u64
            }
        );
        truncate_wal(&path, garbage_at as u64).unwrap();
        let (decoded, tail) = read_wal(&path).unwrap();
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(decoded.len(), records.len() + 1);

        // A missing file reads as a fresh WAL.
        let (decoded, tail) = read_wal(&dir.join("nope.log")).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(tail, WalTail::Clean);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
