//! A tiny blocking HTTP/1.1 client for the self-test, integration tests,
//! and examples — one request per connection, JSON in and out.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{self, Json};

/// Fires one request and parses the JSON response body.
///
/// # Errors
/// A human-readable message on connect/IO failures, non-HTTP responses,
/// or non-JSON bodies.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, Json), String> {
    request_with_token(addr, method, path, body, None)
}

/// [`request`] with an optional bearer token (`Authorization: Bearer …`)
/// for the admin plane.
///
/// # Errors
/// Same contract as [`request`].
pub fn request_with_token(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    token: Option<&str>,
) -> Result<(u16, Json), String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let auth = token
        .map(|t| format!("Authorization: Bearer {t}\r\n"))
        .unwrap_or_default();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: apex\r\n{auth}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| e.to_string())?;

    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).map_err(|e| e.to_string())?;
    let text = String::from_utf8(buf).map_err(|e| e.to_string())?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or("response without header/body separator")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("response without a status code")?;
    let value = json::parse(payload).map_err(|e| format!("non-JSON body: {e}"))?;
    Ok((status, value))
}
