//! The `apex-serve` binary.
//!
//! Serve mode hosts the bundled synthetic datasets ("adult", "taxi")
//! behind the HTTP API, sharded: `--shards N` runs N shard workers,
//! each owning its own engines, ledger gate, WAL sequence, and
//! `state-dir/shard-K/` directory, with tenants routed by consistent
//! hashing and connections multiplexed through a nonblocking
//! accept/dispatch loop (bounded per-shard queues; a full queue answers
//! `503` with `Retry-After`). `--self-test` instead runs the scripted
//! concurrent workload on an ephemeral port and exits non-zero on any
//! violated invariant (the CI `service-smoke` gate). With `--state-dir`
//! the budget ledger is durable: each shard recovers
//! WAL-over-snapshot independently and in parallel on startup (refusing
//! a checksum-corrupt tail unless `--force-truncate-wal` consents to
//! cutting it at the last valid record), and the self-test additionally
//! restarts in-process from the same directory to verify
//! recovered-ledger-equals-wire equality.
//!
//! ```text
//! apex-serve [--addr 127.0.0.1:8787] [--shards N] [--workers-per-shard N]
//!            [--cache-cap N] [--budget B] [--rows N] [--state-dir DIR]
//!            [--snapshot-every N] [--ttl-secs N] [--admin-token TOK]
//!            [--force-truncate-wal]
//! apex-serve --self-test [--shards N] [--workers-per-shard N]
//!            [--sessions N] [--submits N] [--rows N] [--cache-cap N]
//!            [--state-dir DIR]
//! ```
//!
//! `--threads N` is still accepted as a deprecated alias for
//! `--workers-per-shard N`.
//!
//! **Changing `--shards` against an existing `--state-dir`** moves
//! ~1/(N+1) of tenants to different shards (that is the consistent-hash
//! guarantee), but their *spent budget* stays in the old shard's ledger
//! files; every shard still loads every tenant's ledger, so nothing is
//! forgotten — aggregate accounting stays exact — but a moved tenant's
//! new owner starts charging a fresh ledger. Keep the shard count
//! stable for a given state dir unless you migrate ledgers explicitly.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use apex_core::{EngineConfig, Mode};
use apex_data::store::Manifest;
use apex_data::synth::{adult_dataset, nytaxi_dataset};
use apex_data::Dataset;
use apex_serve::shard::{serve_sharded, ServeConfig, ShardSet};
use apex_serve::state::{start_reaper, PersistOptions};
use apex_serve::{selftest, ServerState};

struct Args {
    addr: String,
    shards: usize,
    workers_per_shard: Option<usize>,
    /// Deprecated alias for `workers_per_shard`.
    threads: Option<usize>,
    cache_cap: usize,
    budget: f64,
    rows: usize,
    self_test: bool,
    sessions: usize,
    submits: usize,
    state_dir: Option<String>,
    data_dir: Option<String>,
    pool_frames: usize,
    snapshot_every: u64,
    ttl_secs: Option<u64>,
    admin_token: Option<String>,
    force_truncate_wal: bool,
}

impl Args {
    /// Worker threads per shard: the explicit flag, then the deprecated
    /// `--threads` alias, then a parallelism-derived default.
    fn workers(&self) -> usize {
        self.workers_per_shard.or(self.threads).unwrap_or_else(|| {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4);
            (cores / self.shards.max(1)).clamp(2, 8)
        })
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: apex-serve [--addr HOST:PORT] [--shards N] [--workers-per-shard N] \
         [--cache-cap N] [--budget B] [--rows N] [--state-dir DIR] [--data-dir DIR] \
         [--pool-frames N] [--snapshot-every N] \
         [--ttl-secs N] [--admin-token TOKEN] [--force-truncate-wal] \
         [--self-test [--sessions N] [--submits N]]\n\
         note: --threads N is a deprecated alias for --workers-per-shard N"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8787".to_string(),
        shards: 1,
        workers_per_shard: None,
        threads: None,
        cache_cap: 128,
        budget: 1.0,
        rows: 10_000,
        self_test: false,
        sessions: 8,
        submits: 6,
        state_dir: None,
        data_dir: None,
        pool_frames: 64,
        snapshot_every: 1024,
        ttl_secs: None,
        admin_token: None,
        force_truncate_wal: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = take("--addr"),
            "--shards" => args.shards = parse_num(&take("--shards"), "--shards"),
            "--workers-per-shard" => {
                args.workers_per_shard = Some(parse_num(
                    &take("--workers-per-shard"),
                    "--workers-per-shard",
                ))
            }
            "--threads" => {
                eprintln!("note: --threads is deprecated; use --workers-per-shard");
                args.threads = Some(parse_num(&take("--threads"), "--threads"));
            }
            "--cache-cap" => args.cache_cap = parse_num(&take("--cache-cap"), "--cache-cap"),
            "--rows" => args.rows = parse_num(&take("--rows"), "--rows"),
            "--sessions" => args.sessions = parse_num(&take("--sessions"), "--sessions"),
            "--submits" => args.submits = parse_num(&take("--submits"), "--submits"),
            "--state-dir" => args.state_dir = Some(take("--state-dir")),
            "--data-dir" => args.data_dir = Some(take("--data-dir")),
            "--pool-frames" => {
                args.pool_frames = parse_num(&take("--pool-frames"), "--pool-frames")
            }
            "--snapshot-every" => {
                args.snapshot_every =
                    parse_num(&take("--snapshot-every"), "--snapshot-every") as u64
            }
            "--ttl-secs" => {
                args.ttl_secs = Some(parse_num(&take("--ttl-secs"), "--ttl-secs") as u64)
            }
            "--admin-token" => args.admin_token = Some(take("--admin-token")),
            "--force-truncate-wal" => args.force_truncate_wal = true,
            "--budget" => {
                args.budget = take("--budget").parse().unwrap_or_else(|_| {
                    eprintln!("--budget must be a number");
                    usage()
                })
            }
            "--self-test" => args.self_test = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.shards > apex_serve::shard::MAX_SHARDS {
        eprintln!("--shards must be at most {}", apex_serve::shard::MAX_SHARDS);
        usage()
    }
    args
}

fn parse_num(s: &str, flag: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} must be a positive integer");
            usage()
        }
    }
}

/// How a tenant's durable store came to be at boot.
enum Ingested {
    /// First boot: synthesized and persisted.
    Fresh { rows: u64, pages: u32 },
    /// A committed store already existed; opened without re-synthesis.
    Opened { rows: u64, epoch: u64 },
}

/// Opens the committed store for `name` under `root`, synthesizing and
/// ingesting it first when no manifest exists. The open verifies the
/// manifest (checksum, format version, page coverage); to re-ingest —
/// e.g. after changing `--rows` — delete `root/<name>/`.
fn ensure_ingested(
    root: &Path,
    name: &str,
    synth: &dyn Fn() -> Dataset,
    pool_frames: usize,
) -> Result<Ingested, apex_data::StoreError> {
    let dir = root.join(name);
    if Manifest::exists(&dir) {
        let opened = Dataset::open_paged(&dir, pool_frames)?;
        return Ok(Ingested::Opened {
            rows: opened.len() as u64,
            epoch: opened.storage_epoch().unwrap_or(0),
        });
    }
    let data = synth();
    let paged = data.ingest_paged(&dir, 1, pool_frames)?;
    Ok(Ingested::Fresh {
        rows: paged.len() as u64,
        pages: Manifest::load(&dir)?.page_count,
    })
}

fn main() {
    let args = parse_args();

    if args.self_test {
        let cfg = selftest::SelfTestConfig {
            server_threads: args.workers(),
            shards: args.shards,
            sessions: args.sessions,
            submits: args.submits,
            rows: args.rows.min(5_000),
            cache_cap: args.cache_cap,
            state_dir: args.state_dir.clone().map(Into::into),
            data_dir: args.data_dir.clone().map(Into::into),
            ..selftest::SelfTestConfig::default()
        };
        println!(
            "self-test: {} shards x {} workers, {} sessions x {} submits, {} rows/dataset{}",
            cfg.shards,
            cfg.server_threads,
            cfg.sessions,
            cfg.submits,
            cfg.rows,
            cfg.state_dir
                .as_deref()
                .map(|d| format!(", state dir {}", d.display()))
                .unwrap_or_default()
        );
        match selftest::run(cfg) {
            Ok(report) => {
                println!(
                    "self-test PASS{}: answered={} denied={} cache hits={} misses={}",
                    if report.recovered_baseline {
                        " (recovered run)"
                    } else {
                        ""
                    },
                    report.answered,
                    report.denied,
                    report.cache_hits,
                    report.cache_misses
                );
                for (name, spent, budget) in &report.budgets {
                    println!("  {name}: spent {spent:.4} of B = {budget}");
                }
                for (name, ms) in &report.prepare_ms {
                    println!("  {name}: translator prepare_ms {ms:.1} (cold, auto-selected path)");
                }
                println!(
                    "  store: {} ingested, {} opened from disk, pool hits {}, \
                     transcript records {}",
                    report.datasets_synthesized,
                    report.datasets_opened,
                    report.store_pool_hits,
                    report.transcript_records
                );
                println!(
                    "  mutations: {} row batches acked, epochs re-verified after restart",
                    report.mutations_acked
                );
                println!(
                    "  restart recovery: {} wal records replayed, ledgers re-verified",
                    report.recovery_replayed
                );
                println!(
                    "  compaction pause: max {} ms across {} forced rotations while a {} ms \
                     query was in flight",
                    report.compaction_pause_millis,
                    report.rotations_in_flight,
                    report.slow_query_millis
                );
            }
            Err(e) => {
                eprintln!("self-test FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // With --data-dir, tenants live on disk: synthesize-and-ingest on
    // the first boot, open-and-verify (no re-synthesis) afterward. Done
    // once, up front — every shard then opens the same read-only page
    // files through its own buffer pool.
    let data_root = args.data_dir.as_ref().map(PathBuf::from);
    if let Some(root) = &data_root {
        let tenants: [(&str, &dyn Fn() -> Dataset); 2] = [
            ("adult", &|| adult_dataset(args.rows, 7)),
            ("taxi", &|| nytaxi_dataset(args.rows, 9)),
        ];
        for (name, synth) in tenants {
            match ensure_ingested(root, name, synth, args.pool_frames) {
                Ok(Ingested::Fresh { rows, pages }) => {
                    println!(
                        "{name}: ingested {rows} rows into {} ({pages} pages)",
                        root.display()
                    )
                }
                Ok(Ingested::Opened { rows, epoch }) => println!(
                    "{name}: opened {rows} rows from {} (epoch {epoch}, no re-synthesis)",
                    root.display()
                ),
                Err(e) => {
                    eprintln!("refusing to start: dataset store for {name:?}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    // Every shard registers every tenant (the ring decides who serves
    // whom), with shard-distinct seeds so mechanism noise streams never
    // correlate across shards.
    let cache = apex_core::TranslatorCache::with_capacity(args.cache_cap);
    let mk = |shard: usize| {
        let config = |seed: u64| EngineConfig {
            budget: args.budget,
            mode: Mode::Optimistic,
            seed: seed ^ ((shard as u64) << 32),
        };
        let dataset = |name: &str, synth: &dyn Fn() -> Dataset| match &data_root {
            Some(root) => {
                Dataset::open_paged(&root.join(name), args.pool_frames).unwrap_or_else(|e| {
                    eprintln!("refusing to start: shard {shard} open {name:?}: {e}");
                    std::process::exit(1);
                })
            }
            None => synth(),
        };
        let mut builder = ServerState::builder_with_cache(cache.clone())
            .dataset(
                "adult",
                dataset("adult", &|| adult_dataset(args.rows, 7)),
                config(0xA9E5_1001),
            )
            .dataset(
                "taxi",
                dataset("taxi", &|| nytaxi_dataset(args.rows, 9)),
                config(0xA9E5_1002),
            );
        if let Some(root) = &data_root {
            // Shard-private transcript logs (one writer per log).
            let tdir = root.join("transcripts").join(format!("shard-{shard}"));
            builder = builder.transcripts_under(&tdir).unwrap_or_else(|e| {
                eprintln!("refusing to start: transcript log for shard {shard}: {e}");
                std::process::exit(1);
            });
        }
        if let Some(secs) = args.ttl_secs {
            builder = builder.session_ttl(Duration::from_secs(secs));
        }
        if let Some(token) = &args.admin_token {
            builder = builder.admin_token(token);
        }
        builder
    };

    let set = match &args.state_dir {
        Some(dir) => {
            let opts = |shard_dir: &std::path::Path| PersistOptions {
                snapshot_every: args.snapshot_every,
                truncate_corrupt: args.force_truncate_wal,
                ..PersistOptions::new(shard_dir)
            };
            match ShardSet::recover(std::path::Path::new(dir), args.shards, mk, opts) {
                Ok((set, reports)) => {
                    for (k, report) in reports.iter().enumerate() {
                        println!(
                            "shard {k} recovered from {dir}/shard-{k}: {} wal records \
                             replayed over the snapshot, {} live sessions restored{}",
                            report.replayed,
                            report.sessions,
                            report
                                .truncated
                                .map(|n| format!(", damaged tail truncated to {n} bytes"))
                                .unwrap_or_default()
                        );
                        for (name, spent) in &report.tenants {
                            if *spent > 0.0 {
                                println!("  {name}: resuming with spent = {spent:.6}");
                            }
                        }
                    }
                    Arc::new(set)
                }
                Err(e) => {
                    eprintln!("refusing to start: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => Arc::new(ShardSet::build(args.shards, mk)),
    };

    // One TTL reaper per shard: each sweeps only its own sessions.
    let reapers: Vec<_> = args
        .ttl_secs
        .map(|secs| {
            // Sweep a few times per TTL so expiry lag stays small.
            let interval =
                Duration::from_millis((secs.saturating_mul(1000) / 4).clamp(250, 30_000));
            set.states()
                .iter()
                .map(|s| start_reaper(s.clone(), interval))
                .collect()
        })
        .unwrap_or_default();

    let cfg = ServeConfig {
        workers_per_shard: args.workers(),
        ..ServeConfig::default()
    };
    let handle = match serve_sharded(args.addr.as_str(), set.clone(), cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("could not bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "apex-serve listening on http://{} ({} shards x {} workers, cache cap {}, \
         B = {} per dataset per shard{}{}; POST /v1/admin/shutdown to stop)",
        handle.addr(),
        set.shards(),
        args.workers(),
        args.cache_cap,
        args.budget,
        args.state_dir
            .as_deref()
            .map(|d| format!(", durable in {d}/shard-K"))
            .unwrap_or_default(),
        args.ttl_secs
            .map(|t| format!(", session TTL {t}s"))
            .unwrap_or_default()
    );
    handle.join();
    for reaper in reapers {
        reaper.stop();
    }
    // A clean shutdown compacts every shard, so the next start replays
    // nothing.
    if args.state_dir.is_some() {
        if let Err(e) = set.compact_all() {
            eprintln!("final compaction failed (next start will replay the WAL): {e}");
        }
    }
    // Commit the audit transcripts' tails (compact_all already flushes
    // when a state dir exists; this covers the data-dir-only setup).
    for s in set.states() {
        s.flush_transcripts();
    }
    println!("apex-serve: shut down cleanly");
}
