//! The `apex-serve` binary.
//!
//! Serve mode hosts the bundled synthetic datasets ("adult", "taxi")
//! behind the HTTP API; `--self-test` instead runs the scripted
//! concurrent workload on an ephemeral port and exits non-zero on any
//! violated invariant (the CI `service-smoke` gate). With `--state-dir`
//! the budget ledger is durable: recovery replays WAL-over-snapshot on
//! startup (refusing a checksum-corrupt tail unless
//! `--force-truncate-wal` consents to cutting it at the last valid
//! record), and the self-test additionally restarts in-process from the
//! same directory to verify recovered-ledger-equals-wire equality.
//!
//! ```text
//! apex-serve [--addr 127.0.0.1:8787] [--threads N] [--cache-cap N]
//!            [--budget B] [--rows N] [--state-dir DIR]
//!            [--snapshot-every N] [--ttl-secs N] [--admin-token TOK]
//!            [--force-truncate-wal]
//! apex-serve --self-test [--threads N] [--sessions N] [--submits N]
//!            [--rows N] [--cache-cap N] [--state-dir DIR]
//! ```

use std::sync::Arc;
use std::time::Duration;

use apex_core::{EngineConfig, Mode};
use apex_data::synth::{adult_dataset, nytaxi_dataset};
use apex_serve::state::{start_reaper, PersistOptions};
use apex_serve::{router, selftest, ServerState};

struct Args {
    addr: String,
    threads: usize,
    cache_cap: usize,
    budget: f64,
    rows: usize,
    self_test: bool,
    sessions: usize,
    submits: usize,
    state_dir: Option<String>,
    snapshot_every: u64,
    ttl_secs: Option<u64>,
    admin_token: Option<String>,
    force_truncate_wal: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: apex-serve [--addr HOST:PORT] [--threads N] [--cache-cap N] [--budget B] \
         [--rows N] [--state-dir DIR] [--snapshot-every N] [--ttl-secs N] \
         [--admin-token TOKEN] [--force-truncate-wal] \
         [--self-test [--sessions N] [--submits N]]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let default_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16);
    let mut args = Args {
        addr: "127.0.0.1:8787".to_string(),
        threads: default_threads,
        cache_cap: 128,
        budget: 1.0,
        rows: 10_000,
        self_test: false,
        sessions: 8,
        submits: 6,
        state_dir: None,
        snapshot_every: 1024,
        ttl_secs: None,
        admin_token: None,
        force_truncate_wal: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = take("--addr"),
            "--threads" => args.threads = parse_num(&take("--threads"), "--threads"),
            "--cache-cap" => args.cache_cap = parse_num(&take("--cache-cap"), "--cache-cap"),
            "--rows" => args.rows = parse_num(&take("--rows"), "--rows"),
            "--sessions" => args.sessions = parse_num(&take("--sessions"), "--sessions"),
            "--submits" => args.submits = parse_num(&take("--submits"), "--submits"),
            "--state-dir" => args.state_dir = Some(take("--state-dir")),
            "--snapshot-every" => {
                args.snapshot_every =
                    parse_num(&take("--snapshot-every"), "--snapshot-every") as u64
            }
            "--ttl-secs" => {
                args.ttl_secs = Some(parse_num(&take("--ttl-secs"), "--ttl-secs") as u64)
            }
            "--admin-token" => args.admin_token = Some(take("--admin-token")),
            "--force-truncate-wal" => args.force_truncate_wal = true,
            "--budget" => {
                args.budget = take("--budget").parse().unwrap_or_else(|_| {
                    eprintln!("--budget must be a number");
                    usage()
                })
            }
            "--self-test" => args.self_test = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_num(s: &str, flag: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} must be a positive integer");
            usage()
        }
    }
}

fn main() {
    let args = parse_args();

    if args.self_test {
        let cfg = selftest::SelfTestConfig {
            server_threads: args.threads,
            sessions: args.sessions,
            submits: args.submits,
            rows: args.rows.min(5_000),
            cache_cap: args.cache_cap,
            state_dir: args.state_dir.clone().map(Into::into),
            ..selftest::SelfTestConfig::default()
        };
        println!(
            "self-test: {} server threads, {} sessions x {} submits, {} rows/dataset{}",
            cfg.server_threads,
            cfg.sessions,
            cfg.submits,
            cfg.rows,
            cfg.state_dir
                .as_deref()
                .map(|d| format!(", state dir {}", d.display()))
                .unwrap_or_default()
        );
        match selftest::run(cfg) {
            Ok(report) => {
                println!(
                    "self-test PASS{}: answered={} denied={} cache hits={} misses={}",
                    if report.recovered_baseline {
                        " (recovered run)"
                    } else {
                        ""
                    },
                    report.answered,
                    report.denied,
                    report.cache_hits,
                    report.cache_misses
                );
                for (name, spent, budget) in &report.budgets {
                    println!("  {name}: spent {spent:.4} of B = {budget}");
                }
                for (name, ms) in &report.prepare_ms {
                    println!("  {name}: translator prepare_ms {ms:.1} (cold, auto-selected path)");
                }
                println!(
                    "  restart recovery: {} wal records replayed, ledgers re-verified",
                    report.recovery_replayed
                );
                println!(
                    "  compaction pause: max {} ms across {} forced rotations while a {} ms \
                     query was in flight",
                    report.compaction_pause_millis,
                    report.rotations_in_flight,
                    report.slow_query_millis
                );
            }
            Err(e) => {
                eprintln!("self-test FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let config = |seed: u64| EngineConfig {
        budget: args.budget,
        mode: Mode::Optimistic,
        seed,
    };
    let mut builder = ServerState::builder(args.cache_cap)
        .dataset("adult", adult_dataset(args.rows, 7), config(0xA9E5_1001))
        .dataset("taxi", nytaxi_dataset(args.rows, 9), config(0xA9E5_1002));
    if let Some(secs) = args.ttl_secs {
        builder = builder.session_ttl(Duration::from_secs(secs));
    }
    if let Some(token) = &args.admin_token {
        builder = builder.admin_token(token);
    }
    let state = match &args.state_dir {
        Some(dir) => {
            let opts = PersistOptions {
                snapshot_every: args.snapshot_every,
                truncate_corrupt: args.force_truncate_wal,
                ..PersistOptions::new(dir)
            };
            match builder.build_recovered(opts) {
                Ok((state, report)) => {
                    println!(
                        "recovered from {dir}: {} wal records replayed over the snapshot, \
                         {} live sessions restored{}",
                        report.replayed,
                        report.sessions,
                        report
                            .truncated
                            .map(|n| format!(", damaged tail truncated to {n} bytes"))
                            .unwrap_or_default()
                    );
                    for (name, spent) in &report.tenants {
                        println!("  {name}: resuming with spent = {spent:.6}");
                    }
                    Arc::new(state)
                }
                Err(e) => {
                    eprintln!("refusing to start: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => Arc::new(builder.build()),
    };

    let reaper = args.ttl_secs.map(|secs| {
        // Sweep a few times per TTL so expiry lag stays small.
        let interval = Duration::from_millis((secs.saturating_mul(1000) / 4).clamp(250, 30_000));
        start_reaper(state.clone(), interval)
    });

    let handler_state = state.clone();
    let handle = match apex_serve::serve(args.addr.as_str(), args.threads, move |req| {
        router::route(&handler_state, req)
    }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("could not bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "apex-serve listening on http://{} ({} workers, cache cap {}, B = {} per dataset{}{}; \
         POST /v1/admin/shutdown to stop)",
        handle.addr(),
        args.threads,
        args.cache_cap,
        args.budget,
        args.state_dir
            .as_deref()
            .map(|d| format!(", durable in {d}"))
            .unwrap_or_default(),
        args.ttl_secs
            .map(|t| format!(", session TTL {t}s"))
            .unwrap_or_default()
    );
    handle.join();
    if let Some(reaper) = reaper {
        reaper.stop();
    }
    // A clean shutdown compacts, so the next start replays nothing.
    if args.state_dir.is_some() {
        if let Err(e) = state.compact() {
            eprintln!("final compaction failed (next start will replay the WAL): {e}");
        }
    }
    println!("apex-serve: shut down cleanly");
}
