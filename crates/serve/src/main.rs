//! The `apex-serve` binary.
//!
//! Serve mode hosts the bundled synthetic datasets ("adult", "taxi")
//! behind the HTTP API; `--self-test` instead runs the scripted
//! concurrent workload on an ephemeral port and exits non-zero on any
//! violated invariant (the CI `service-smoke` gate).
//!
//! ```text
//! apex-serve [--addr 127.0.0.1:8787] [--threads N] [--cache-cap N]
//!            [--budget B] [--rows N]
//! apex-serve --self-test [--threads N] [--sessions N] [--submits N]
//!            [--rows N] [--cache-cap N]
//! ```

use std::sync::Arc;

use apex_core::{EngineConfig, Mode};
use apex_data::synth::{adult_dataset, nytaxi_dataset};
use apex_serve::{router, selftest, ServerState};

struct Args {
    addr: String,
    threads: usize,
    cache_cap: usize,
    budget: f64,
    rows: usize,
    self_test: bool,
    sessions: usize,
    submits: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: apex-serve [--addr HOST:PORT] [--threads N] [--cache-cap N] [--budget B] \
         [--rows N] [--self-test [--sessions N] [--submits N]]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let default_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16);
    let mut args = Args {
        addr: "127.0.0.1:8787".to_string(),
        threads: default_threads,
        cache_cap: 128,
        budget: 1.0,
        rows: 10_000,
        self_test: false,
        sessions: 8,
        submits: 6,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = take("--addr"),
            "--threads" => args.threads = parse_num(&take("--threads"), "--threads"),
            "--cache-cap" => args.cache_cap = parse_num(&take("--cache-cap"), "--cache-cap"),
            "--rows" => args.rows = parse_num(&take("--rows"), "--rows"),
            "--sessions" => args.sessions = parse_num(&take("--sessions"), "--sessions"),
            "--submits" => args.submits = parse_num(&take("--submits"), "--submits"),
            "--budget" => {
                args.budget = take("--budget").parse().unwrap_or_else(|_| {
                    eprintln!("--budget must be a number");
                    usage()
                })
            }
            "--self-test" => args.self_test = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_num(s: &str, flag: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} must be a positive integer");
            usage()
        }
    }
}

fn main() {
    let args = parse_args();

    if args.self_test {
        let cfg = selftest::SelfTestConfig {
            server_threads: args.threads,
            sessions: args.sessions,
            submits: args.submits,
            rows: args.rows.min(5_000),
            cache_cap: args.cache_cap,
        };
        println!(
            "self-test: {} server threads, {} sessions x {} submits, {} rows/dataset",
            cfg.server_threads, cfg.sessions, cfg.submits, cfg.rows
        );
        match selftest::run(cfg) {
            Ok(report) => {
                println!(
                    "self-test PASS: answered={} denied={} cache hits={} misses={}",
                    report.answered, report.denied, report.cache_hits, report.cache_misses
                );
                for (name, spent, budget) in &report.budgets {
                    println!("  {name}: spent {spent:.4} of B = {budget}");
                }
            }
            Err(e) => {
                eprintln!("self-test FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let config = |seed: u64| EngineConfig {
        budget: args.budget,
        mode: Mode::Optimistic,
        seed,
    };
    let state = Arc::new(
        ServerState::builder(args.cache_cap)
            .dataset("adult", adult_dataset(args.rows, 7), config(0xA9E5_1001))
            .dataset("taxi", nytaxi_dataset(args.rows, 9), config(0xA9E5_1002))
            .build(),
    );
    let handler_state = state.clone();
    let handle = match apex_serve::serve(args.addr.as_str(), args.threads, move |req| {
        router::route(&handler_state, req)
    }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("could not bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "apex-serve listening on http://{} ({} workers, cache cap {}, B = {} per dataset; \
         POST /v1/admin/shutdown to stop)",
        handle.addr(),
        args.threads,
        args.cache_cap,
        args.budget
    );
    handle.join();
    println!("apex-serve: shut down cleanly");
}
