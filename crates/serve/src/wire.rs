//! Wire types: how API bodies map to and from engine types.
//!
//! Queries travel as the paper's **concrete syntax** (the repo already
//! owns a parser for it — `apex_query::parser`), wrapped in a small JSON
//! envelope:
//!
//! ```json
//! {"query": "BIN adult ON COUNT(*) WHERE W = { age IN [17, 40) } ERROR 150 CONFIDENCE 0.99;"}
//! ```
//!
//! The `ERROR … CONFIDENCE …` clause may be replaced (or overridden) by
//! explicit `"alpha"` / `"beta"` fields. Responses serialize
//! [`EngineResponse`] — a denial is not an error, it is a first-class
//! response (HTTP 409 at the transport layer).

use apex_core::{Answered, EngineResponse};
use apex_query::parser::parse_query;
use apex_query::{AccuracySpec, ExplorationQuery, QueryAnswer};

use crate::json::Json;

/// A decoded `POST /v1/sessions` body.
#[derive(Debug, Clone)]
pub struct CreateSession {
    /// Name of the registered dataset to bind to.
    pub dataset: String,
    /// The session's budget slice.
    pub budget: f64,
}

/// Decodes a session-creation body.
///
/// # Errors
/// A human-readable message naming the offending field.
pub fn parse_create_session(body: &Json) -> Result<CreateSession, String> {
    let dataset = body
        .get("dataset")
        .and_then(Json::as_str)
        .ok_or("missing string field \"dataset\"")?
        .to_string();
    let budget = body
        .get("budget")
        .and_then(Json::as_f64)
        .ok_or("missing numeric field \"budget\"")?;
    if !(budget.is_finite() && budget > 0.0) {
        return Err(format!(
            "\"budget\" must be positive and finite, got {budget}"
        ));
    }
    Ok(CreateSession { dataset, budget })
}

/// Decodes a query-submission body into the engine's input types.
///
/// # Errors
/// A human-readable message: missing fields, syntax errors from the
/// query parser, or an invalid/missing accuracy requirement.
pub fn parse_query_request(body: &Json) -> Result<(ExplorationQuery, AccuracySpec), String> {
    let text = body
        .get("query")
        .and_then(Json::as_str)
        .ok_or("missing string field \"query\"")?;
    let parsed = parse_query(text).map_err(|e| format!("query syntax: {e}"))?;

    let alpha = body.get("alpha").and_then(Json::as_f64);
    let beta = body.get("beta").and_then(Json::as_f64);
    let accuracy = match (alpha, beta, parsed.accuracy) {
        // Explicit fields override the statement's clause wholesale.
        (Some(a), Some(b), _) => AccuracySpec::new(a, b).map_err(|e| e.to_string())?,
        (Some(a), None, Some(acc)) => acc.with_alpha(a).map_err(|e| e.to_string())?,
        (None, Some(b), Some(acc)) => {
            AccuracySpec::new(acc.alpha(), b).map_err(|e| e.to_string())?
        }
        (None, None, Some(acc)) => acc,
        _ => {
            return Err(
                "no accuracy requirement: give an ERROR … CONFIDENCE … clause or \
                 \"alpha\"/\"beta\" fields"
                    .to_string(),
            )
        }
    };
    Ok((parsed.query, accuracy))
}

/// A decoded `POST /v1/datasets/{name}/rows` body.
#[derive(Debug, Clone)]
pub struct MutateRequest {
    /// `true` for an insert batch, `false` for a delete batch.
    pub insert: bool,
    /// The requested rows, decoded into engine values.
    pub rows: Vec<Vec<apex_data::Value>>,
}

/// Decodes one JSON cell into an engine [`apex_data::Value`].
///
/// Numbers with no fractional part that fit `i64` become `Int`; all other
/// finite numbers become `Float`. This matches the ingest path's notion
/// of an integer column, so mutations land in the same domain as loads.
fn parse_value(cell: &Json) -> Result<apex_data::Value, String> {
    Ok(match cell {
        Json::Null => apex_data::Value::Null,
        Json::Bool(b) => apex_data::Value::Bool(*b),
        Json::Str(s) => apex_data::Value::Str(s.clone()),
        Json::Num(n) => {
            if !n.is_finite() {
                return Err("non-finite number in row".to_string());
            }
            if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(n) {
                apex_data::Value::Int(*n as i64)
            } else {
                apex_data::Value::Float(*n)
            }
        }
        Json::Arr(_) | Json::Obj(_) => {
            return Err("row cells must be scalars (number, string, bool, null)".to_string())
        }
    })
}

/// Decodes a mutation body.
///
/// ```json
/// {"op": "insert", "rows": [[39, "State-gov", 13], [50, "Private", 9]]}
/// ```
///
/// # Errors
/// A human-readable message naming the offending field; an empty batch
/// or an empty row is refused here so the engine never sees one.
pub fn parse_mutate_rows(body: &Json) -> Result<MutateRequest, String> {
    let insert = match body.get("op").and_then(Json::as_str) {
        Some("insert") => true,
        Some("delete") => false,
        Some(other) => {
            return Err(format!(
                "\"op\" must be \"insert\" or \"delete\", got \"{other}\""
            ))
        }
        None => return Err("missing string field \"op\" (\"insert\" or \"delete\")".to_string()),
    };
    let rows_json = body
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"rows\"")?;
    if rows_json.is_empty() {
        return Err("\"rows\" must be a non-empty array of rows".to_string());
    }
    let mut rows = Vec::with_capacity(rows_json.len());
    for (i, row) in rows_json.iter().enumerate() {
        let cells = row
            .as_arr()
            .ok_or_else(|| format!("row {i} is not an array"))?;
        if cells.is_empty() {
            return Err(format!("row {i} is empty"));
        }
        let mut decoded = Vec::with_capacity(cells.len());
        for cell in cells {
            decoded.push(parse_value(cell).map_err(|e| format!("row {i}: {e}"))?);
        }
        rows.push(decoded);
    }
    Ok(MutateRequest { insert, rows })
}

/// The `POST /v1/datasets/{name}/rows` success body: what was applied
/// and where the dataset's epoch landed.
pub fn mutation_json(
    dataset: &str,
    insert: bool,
    delta: &apex_data::RowDelta,
    mutations_applied: u64,
) -> Json {
    Json::obj(vec![
        ("dataset", Json::from(dataset)),
        ("op", Json::from(if insert { "insert" } else { "delete" })),
        ("inserted", Json::from(delta.inserted.len() as u64)),
        ("deleted", Json::from(delta.deleted.len() as u64)),
        ("epoch", Json::from(delta.epoch)),
        ("mutations_applied", Json::from(mutations_applied)),
    ])
}

fn answer_json(answer: &QueryAnswer) -> Json {
    match answer {
        QueryAnswer::Counts(counts) => Json::obj(vec![(
            "counts",
            Json::Arr(counts.iter().map(|&c| Json::Num(c)).collect()),
        )]),
        QueryAnswer::Bins(bins) => Json::obj(vec![(
            "bins",
            Json::Arr(bins.iter().map(|&b| Json::from(b)).collect()),
        )]),
    }
}

fn answered_json(a: &Answered) -> Json {
    Json::obj(vec![
        ("status", Json::from("answered")),
        ("mechanism", Json::from(a.mechanism)),
        ("epsilon", Json::Num(a.epsilon)),
        ("epsilon_upper", Json::Num(a.epsilon_upper)),
        ("answer", answer_json(&a.answer)),
    ])
}

/// Serializes an [`EngineResponse`]; the caller picks the status code
/// (200 for answered, 409 for denied).
pub fn engine_response_json(resp: &EngineResponse) -> Json {
    match resp {
        EngineResponse::Answered(a) => answered_json(a),
        EngineResponse::Denied => Json::obj(vec![
            ("status", Json::from("denied")),
            (
                "reason",
                Json::from("no mechanism fits the remaining budget"),
            ),
        ]),
    }
}

/// The `GET /v1/sessions/{id}/budget` body: the session's slice next to
/// the engine-wide (tenant) budget state.
pub fn budget_json(
    id: u64,
    dataset: &str,
    allowance: f64,
    spent: f64,
    engine_budget: f64,
    engine_spent: f64,
) -> Json {
    Json::obj(vec![
        ("session", Json::from(id)),
        ("dataset", Json::from(dataset)),
        ("allowance", Json::Num(allowance)),
        ("spent", Json::Num(spent)),
        ("remaining", Json::Num((allowance - spent).max(0.0))),
        (
            "engine",
            Json::obj(vec![
                ("budget", Json::Num(engine_budget)),
                ("spent", Json::Num(engine_spent)),
                (
                    "remaining",
                    Json::Num((engine_budget - engine_spent).max(0.0)),
                ),
            ]),
        ),
    ])
}

/// Renders one admin-plane session row (`GET /v1/admin/sessions`).
pub fn session_info_json(info: crate::state::SessionInfo) -> Json {
    Json::obj(vec![
        ("session", Json::from(info.id)),
        ("dataset", Json::from(info.dataset)),
        ("allowance", Json::Num(info.allowance)),
        ("spent", Json::Num(info.spent)),
        ("idle_millis", Json::from(info.idle_millis)),
    ])
}

/// Renders cache counters.
pub fn cache_stats_json(stats: apex_mech::CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::from(stats.hits)),
        ("misses", Json::from(stats.misses)),
        ("evictions", Json::from(stats.evictions)),
    ])
}

/// A uniform error body.
pub fn error_json(msg: &str) -> String {
    Json::obj(vec![("error", Json::from(msg))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn create_session_bodies_are_validated() {
        let ok = json::parse(r#"{"dataset":"adult","budget":0.5}"#).unwrap();
        let c = parse_create_session(&ok).unwrap();
        assert_eq!(c.dataset, "adult");
        assert_eq!(c.budget, 0.5);
        for bad in [
            r#"{"budget":0.5}"#,
            r#"{"dataset":"adult"}"#,
            r#"{"dataset":"adult","budget":-1}"#,
            r#"{"dataset":"adult","budget":"x"}"#,
        ] {
            assert!(parse_create_session(&json::parse(bad).unwrap()).is_err());
        }
    }

    #[test]
    fn query_bodies_parse_the_concrete_syntax() {
        let body = json::parse(
            r#"{"query":"BIN d ON COUNT(*) WHERE W = { v IN [0, 4), v IN [4, 8) } ERROR 10 CONFIDENCE 0.95;"}"#,
        )
        .unwrap();
        let (q, acc) = parse_query_request(&body).unwrap();
        assert_eq!(q.len(), 2);
        assert!((acc.alpha() - 10.0).abs() < 1e-12);
        assert!((acc.beta() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn explicit_accuracy_fields_override_the_clause() {
        let body = json::parse(
            r#"{"query":"BIN d ON COUNT(*) WHERE { v IN [0, 4) } ERROR 10 CONFIDENCE 0.95;","alpha":20,"beta":0.01}"#,
        )
        .unwrap();
        let (_, acc) = parse_query_request(&body).unwrap();
        assert_eq!(acc.alpha(), 20.0);
        assert_eq!(acc.beta(), 0.01);
        // Alpha-only override keeps the clause's beta.
        let body = json::parse(
            r#"{"query":"BIN d ON COUNT(*) WHERE { v IN [0, 4) } ERROR 10 CONFIDENCE 0.95;","alpha":20}"#,
        )
        .unwrap();
        let (_, acc) = parse_query_request(&body).unwrap();
        assert_eq!(acc.alpha(), 20.0);
        assert!((acc.beta() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn missing_accuracy_is_an_error() {
        let body = json::parse(r#"{"query":"BIN d ON COUNT(*) WHERE { v IN [0, 4) };"}"#).unwrap();
        assert!(parse_query_request(&body).is_err());
        let body = json::parse(r#"{}"#).unwrap();
        assert!(parse_query_request(&body).is_err());
    }

    #[test]
    fn mutate_bodies_decode_and_validate() {
        let body = json::parse(
            r#"{"op":"insert","rows":[[39,"State-gov",13.5,true,null],[50,"Private",9,false,null]]}"#,
        )
        .unwrap();
        let m = parse_mutate_rows(&body).unwrap();
        assert!(m.insert);
        assert_eq!(m.rows.len(), 2);
        assert_eq!(
            m.rows[0],
            vec![
                apex_data::Value::Int(39),
                apex_data::Value::Str("State-gov".into()),
                apex_data::Value::Float(13.5),
                apex_data::Value::Bool(true),
                apex_data::Value::Null,
            ]
        );
        let del = json::parse(r#"{"op":"delete","rows":[[1]]}"#).unwrap();
        assert!(!parse_mutate_rows(&del).unwrap().insert);
        for bad in [
            r#"{"rows":[[1]]}"#,
            r#"{"op":"upsert","rows":[[1]]}"#,
            r#"{"op":"insert"}"#,
            r#"{"op":"insert","rows":[]}"#,
            r#"{"op":"insert","rows":[[]]}"#,
            r#"{"op":"insert","rows":[3]}"#,
            r#"{"op":"insert","rows":[[[1]]]}"#,
        ] {
            assert!(
                parse_mutate_rows(&json::parse(bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn mutation_responses_report_the_delta() {
        let delta = apex_data::RowDelta {
            inserted: vec![vec![apex_data::Value::Int(1)]],
            deleted: vec![],
            epoch: 7,
        };
        let body = mutation_json("adult", true, &delta, 4).render();
        assert!(body.contains("\"op\":\"insert\""), "{body}");
        assert!(body.contains("\"inserted\":1"), "{body}");
        assert!(body.contains("\"deleted\":0"), "{body}");
        assert!(body.contains("\"epoch\":7"), "{body}");
        assert!(body.contains("\"mutations_applied\":4"), "{body}");
    }

    #[test]
    fn responses_serialize_both_variants() {
        let denied = engine_response_json(&EngineResponse::Denied).render();
        assert!(denied.contains("\"denied\""));
        let answered = engine_response_json(&EngineResponse::Answered(Answered {
            answer: QueryAnswer::Counts(vec![1.5, 2.0]),
            epsilon: 0.25,
            epsilon_upper: 0.5,
            mechanism: "SM",
        }))
        .render();
        assert!(answered.contains("\"counts\":[1.5,2]"), "{answered}");
        assert!(answered.contains("\"mechanism\":\"SM\""));
        let bins = engine_response_json(&EngineResponse::Answered(Answered {
            answer: QueryAnswer::Bins(vec![0, 3]),
            epsilon: 0.1,
            epsilon_upper: 0.1,
            mechanism: "LTM",
        }))
        .render();
        assert!(bins.contains("\"bins\":[0,3]"), "{bins}");
    }
}
