//! Server-side registry: tenant datasets, their shared engines, the one
//! shared translator cache, and the live analyst sessions.
//!
//! One [`ServerState`] owns everything a request handler needs. Each
//! tenant dataset gets its own [`SharedEngine`] (its own privacy budget
//! `B`, transcript, and noise stream); all engines share **one**
//! LRU-bounded [`TranslatorCache`] through per-tenant *scopes*
//! ([`TranslatorCache::scoped`]), so `/v1/stats` can attribute hits and
//! misses per dataset while the storage — and the warm-up — is global.
//! Sharing is sound because cached artifacts are data-independent (see
//! `apex_core::cache`).
//!
//! Sessions are budget slices ([`apex_core::EngineSession`]): a session
//! may spend at most its allowance, and all sessions of a tenant jointly
//! at most that tenant's `B`, no matter how requests interleave across
//! worker threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use apex_core::{ApexEngine, EngineConfig, EngineSession, SharedEngine, TranslatorCache};
use apex_data::Dataset;

/// One tenant dataset: its engine plus its scope of the shared cache.
#[derive(Debug)]
pub struct Tenant {
    /// Thread-safe engine over the tenant's dataset.
    pub engine: SharedEngine,
    /// This tenant's scope of the shared translator cache (for
    /// per-dataset stats; storage is shared with every other tenant).
    pub cache: TranslatorCache,
}

/// One live analyst session.
#[derive(Debug)]
pub struct SessionEntry {
    /// Name of the dataset the session is bound to.
    pub dataset: String,
    /// The budget-sliced engine view the session submits through.
    pub session: EngineSession,
}

/// Everything the request handlers share.
#[derive(Debug)]
pub struct ServerState {
    tenants: Vec<(String, Tenant)>,
    cache: TranslatorCache,
    sessions: RwLock<HashMap<u64, SessionEntry>>,
    next_session: AtomicU64,
}

impl ServerState {
    /// Starts building a state whose tenants share one translator cache
    /// bounded to `cache_cap` entries.
    pub fn builder(cache_cap: usize) -> ServerStateBuilder {
        ServerStateBuilder {
            cache: TranslatorCache::with_capacity(cache_cap),
            tenants: Vec::new(),
        }
    }

    /// The tenant registered under `name`.
    pub fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenants.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// All tenants, in registration order.
    pub fn tenants(&self) -> &[(String, Tenant)] {
        &self.tenants
    }

    /// The shared cache's root handle (global stats, capacity, size).
    pub fn cache(&self) -> &TranslatorCache {
        &self.cache
    }

    /// Opens a session on `dataset` with the given allowance; returns the
    /// session id, or `None` when the dataset does not exist.
    pub fn create_session(&self, dataset: &str, allowance: f64) -> Option<u64> {
        let tenant = self.tenant(dataset)?;
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let entry = SessionEntry {
            dataset: dataset.to_string(),
            session: tenant.engine.session(allowance),
        };
        self.sessions
            .write()
            .expect("no poisoning")
            .insert(id, entry);
        Some(id)
    }

    /// Runs `f` with the session, or returns `None` for unknown ids.
    pub fn with_session<T>(&self, id: u64, f: impl FnOnce(&SessionEntry) -> T) -> Option<T> {
        self.sessions.read().expect("no poisoning").get(&id).map(f)
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.read().expect("no poisoning").len()
    }

    /// Number of live sessions bound to `dataset`.
    pub fn session_count_for(&self, dataset: &str) -> usize {
        self.sessions
            .read()
            .expect("no poisoning")
            .values()
            .filter(|s| s.dataset == dataset)
            .count()
    }
}

/// Builder for [`ServerState`] — register tenants, then [`ServerStateBuilder::build`].
#[derive(Debug)]
pub struct ServerStateBuilder {
    cache: TranslatorCache,
    tenants: Vec<(String, Tenant)>,
}

impl ServerStateBuilder {
    /// Registers `data` as tenant `name`: a fresh engine with its own
    /// budget/mode/seed from `config`, drawing on the shared cache
    /// through its own stats scope. Re-registering a name replaces the
    /// previous tenant.
    pub fn dataset(mut self, name: &str, data: Dataset, config: EngineConfig) -> Self {
        let scope = self.cache.scoped();
        let engine = SharedEngine::new(ApexEngine::with_translator_cache(
            data,
            config,
            scope.clone(),
        ));
        let tenant = Tenant {
            engine,
            cache: scope,
        };
        self.tenants.retain(|(n, _)| n != name);
        self.tenants.push((name.to_string(), tenant));
        self
    }

    /// Finishes the registry.
    pub fn build(self) -> ServerState {
        ServerState {
            tenants: self.tenants,
            cache: self.cache,
            sessions: RwLock::new(HashMap::new()),
            next_session: AtomicU64::new(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_data::{Attribute, Domain, Schema, Value};

    fn tiny_dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange { min: 0, max: 7 },
        )])
        .unwrap();
        let mut d = Dataset::empty(schema);
        for i in 0..8_i64 {
            d.push(vec![Value::Int(i)]).unwrap();
        }
        d
    }

    #[test]
    fn tenants_share_one_cache_with_per_tenant_scopes() {
        let state = ServerState::builder(32)
            .dataset("a", tiny_dataset(), EngineConfig::default())
            .dataset("b", tiny_dataset(), EngineConfig::default())
            .build();
        assert_eq!(state.tenants().len(), 2);
        let q = apex_query::ExplorationQuery::wcq(
            (0..8)
                .map(|i| apex_data::Predicate::eq("v", i as i64))
                .collect(),
        );
        let acc = apex_query::AccuracySpec::new(5.0, 0.01).unwrap();
        state.tenant("a").unwrap().engine.submit(&q, &acc).unwrap();
        state.tenant("b").unwrap().engine.submit(&q, &acc).unwrap();
        // Tenant b's identical structure is warmed by tenant a: global
        // stats see both scopes, b's own scope shows hits but no build.
        let global = state.cache().stats();
        assert!(global.hits > 0 && global.misses > 0);
        let b_local = state.tenant("b").unwrap().cache.local_stats();
        assert_eq!(b_local.misses, 0, "{b_local:?}");
        assert!(b_local.hits > 0);
    }

    #[test]
    fn sessions_register_and_resolve() {
        let state = ServerState::builder(8)
            .dataset("a", tiny_dataset(), EngineConfig::default())
            .build();
        assert_eq!(state.create_session("nope", 0.5), None);
        let id = state.create_session("a", 0.5).unwrap();
        assert_eq!(state.session_count(), 1);
        assert_eq!(state.session_count_for("a"), 1);
        assert_eq!(state.session_count_for("b"), 0);
        let allowance = state.with_session(id, |s| s.session.allowance()).unwrap();
        assert_eq!(allowance, 0.5);
        assert!(state.with_session(id + 1, |_| ()).is_none());
    }
}
