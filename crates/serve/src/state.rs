//! Server-side registry: tenant datasets, their shared engines, the one
//! shared translator cache, live analyst sessions — and the durability
//! layer that makes the budget ledger survive restarts.
//!
//! One [`ServerState`] owns everything a request handler needs. Each
//! tenant dataset gets its own [`SharedEngine`] (its own privacy budget
//! `B`, transcript, and noise stream); all engines share **one**
//! LRU-bounded [`TranslatorCache`] through per-tenant *scopes*
//! ([`TranslatorCache::scoped`]), so `/v1/stats` can attribute hits and
//! misses per dataset while the storage — and the warm-up — is global.
//! Sharing is sound because cached artifacts are data-independent (see
//! `apex_core::cache`).
//!
//! Sessions are budget slices ([`apex_core::EngineSession`]): a session
//! may spend at most its allowance, and all sessions of a tenant jointly
//! at most that tenant's `B`, no matter how requests interleave across
//! worker threads.
//!
//! ## Durability
//!
//! With persistence configured ([`ServerStateBuilder::build_recovered`]),
//! every budget-mutating event — session open, budget debit, denial,
//! session close — is appended to the WAL ([`crate::wal`]) **before the
//! client is acked**, and the WAL is periodically compacted into a
//! snapshot ([`crate::snapshot`]). Recovery replays WAL-over-snapshot:
//! a restart re-imposes spent budget on fresh engines
//! ([`SharedEngine::import_ledger`]) and re-opens live sessions
//! mid-slice.
//!
//! Submissions are **two-phase** ([`EngineSession::evaluate`] +
//! [`EngineSession::commit_with`]): the mechanism evaluates with *no*
//! gate or engine lock held, and the *ledger gate* (an outermost
//! `RwLock`, shared side) covers only the commit point — admission
//! re-check, WAL append, charge — so compaction (exclusive side) drains
//! in microseconds instead of waiting out the slowest in-flight query,
//! and a snapshot still can never split an event between itself and the
//! next WAL generation (which would double-count on replay). At the
//! commit point the append happens **before** the charge: a failed
//! append leaves both ledgers untouched (durable-or-nothing — in-memory
//! `spent` can never run ahead of what recovery will reconstruct), and a
//! crash between append and charge recovers a charge nobody was acked,
//! the safe direction.
//!
//! ## TTLs
//!
//! Sessions carry a last-activity tick from an injectable [`Clock`];
//! [`ServerState::reap_expired`] (driven by [`start_reaper`] in
//! production, or called directly in tests) closes sessions idle past
//! the TTL. In-flight submissions **pin** their session: the reaper
//! skips a pinned session however stale its tick, and the tick is
//! re-stamped when the submission completes — a query slower than the
//! TTL can never have its session reaped underneath it (an *admin*
//! expiry is still forceful; the in-flight commit then observes the
//! close and denies without charging). Closing releases the **unspent
//! remainder of the slice exactly once** back to the tenant's grant
//! pool (visible as `reclaimed` in `/v1/stats`), and the session id
//! keeps answering `410 Gone` — distinct from 404 — for the rest of the
//! server's life.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use apex_core::{
    ApexEngine, CommitError, EngineConfig, EngineError, EngineResponse, EngineSession,
    SharedEngine, TranslatorCache,
};
use apex_data::store::PageLog;
use apex_data::{Dataset, PoolStats, StoreError};
use apex_query::{AccuracySpec, ExplorationQuery};

use crate::clock::{Clock, SystemClock};
use crate::snapshot::{self, MutationImage, SessionImage, Snapshot, TenantLedger};
use crate::wal::{self, WalRecord, WalTail, WalWriter};

/// Explicit poison recovery for the std locks guarding server state.
///
/// A panic while one of these locks is held (a handler bug, a simulated
/// crash from the schedule exerciser) poisons it; unwrapping the poison
/// would then turn **every later request on the shard** into a panic
/// cascade — one bad request taking down a whole shard's traffic.
///
/// Recovering the guard and continuing is safe here because the
/// durability discipline never trusts these critical sections to be
/// atomic in memory: the WAL append happens *before* the ledger charge,
/// every map mutation is a single `HashMap` insert/remove (no
/// two-field states a panic can tear), and a section that died between
/// append and charge merely leaves a durable record no ack references —
/// recovery counts it, the safe direction. The budget invariants
/// (spent ≤ B, append-before-ack) hold at every panic point, so the
/// data under the lock is always consistent enough to keep serving; the
/// schedule exerciser's crash-then-continue test proves it.
pub(crate) mod lockx {
    use std::sync::{
        Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
        WaitTimeoutResult,
    };
    use std::time::Duration;

    pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
        l.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
        l.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    }

    pub fn wait_timeout<'a, T>(
        cv: &Condvar,
        g: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        cv.wait_timeout(g, dur)
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// One tenant dataset: its engine plus its scope of the shared cache.
#[derive(Debug)]
pub struct Tenant {
    /// Thread-safe engine over the tenant's dataset.
    pub engine: SharedEngine,
    /// This tenant's scope of the shared translator cache (for
    /// per-dataset stats; storage is shared with every other tenant).
    pub cache: TranslatorCache,
    /// Unspent allowance released by closed/expired sessions — each
    /// slice's remainder counted exactly once.
    reclaimed: Mutex<f64>,
    /// Durable per-tenant query transcript for audit replay (see
    /// docs/STORAGE.md). Best-effort: the WAL is the source of truth
    /// for *charges*; this log records what was asked and answered.
    transcript: Option<Mutex<PageLog>>,
    /// Transcript appends dropped on storage errors (telemetry).
    transcript_dropped: AtomicU64,
}

impl Tenant {
    /// Total unspent allowance returned by closed/expired sessions.
    pub fn reclaimed(&self) -> f64 {
        *lockx::lock(&self.reclaimed)
    }

    /// Records one submission outcome in the audit transcript (no-op
    /// when the tenant has no transcript log).
    fn record_transcript(&self, session: u64, response: &EngineResponse) {
        let Some(log) = &self.transcript else {
            return;
        };
        let line = match response {
            EngineResponse::Answered(a) => format!(
                "session={session} mechanism={} epsilon={:.9} epsilon_upper={:.9}",
                a.mechanism, a.epsilon, a.epsilon_upper
            ),
            EngineResponse::Denied => format!("session={session} denied"),
        };
        if lockx::lock(log).append(line.as_bytes()).is_err() {
            self.transcript_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Committed + pending transcript records (0 without a log).
    pub fn transcript_records(&self) -> u64 {
        self.transcript
            .as_ref()
            .map(|l| lockx::lock(l).record_count())
            .unwrap_or(0)
    }

    /// Appends dropped on transcript storage errors.
    pub fn transcript_dropped(&self) -> u64 {
        self.transcript_dropped.load(Ordering::Relaxed)
    }

    /// Buffer-pool counters of this tenant's dataset (None = resident).
    pub fn store_stats(&self) -> Option<PoolStats> {
        self.engine.with_engine(|e| e.dataset_pool_stats())
    }

    /// Storage epoch of this tenant's dataset (None = resident).
    pub fn dataset_epoch(&self) -> Option<u64> {
        self.engine.with_engine(|e| e.dataset_epoch())
    }
}

/// One live analyst session.
#[derive(Debug)]
pub struct SessionEntry {
    /// Name of the dataset the session is bound to.
    pub dataset: String,
    /// The budget-sliced engine view the session submits through.
    pub session: EngineSession,
    /// Clock tick of the last submission (TTL idleness is measured from
    /// here; budget probes deliberately do not keep a session alive).
    /// `Arc` so an [`InFlightGuard`] can re-stamp it at completion
    /// without re-resolving the (possibly already reaped) map entry.
    last_active: Arc<AtomicU64>,
    /// Number of submissions currently in flight. While nonzero the
    /// reaper will not expire the session — `last_active` is stamped on
    /// *entry*, so without the pin a query slower than the TTL would
    /// have its session closed underneath it.
    in_flight: Arc<AtomicU64>,
}

/// Pins one in-flight submission (see [`SessionEntry::in_flight`]).
/// However the submission exits — answer, denial, error, panic — the
/// drop re-stamps the idle clock *then* releases the pin, in that
/// order, so the reaper can never observe an unpinned session with a
/// stale tick from before the query ran.
#[derive(Debug)]
struct InFlightGuard {
    clock: Arc<dyn Clock>,
    last_active: Arc<AtomicU64>,
    in_flight: Arc<AtomicU64>,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.last_active
            .store(self.clock.now_millis(), Ordering::SeqCst);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Why a session id did not resolve to a live session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The session is live.
    Live,
    /// The session existed and was closed (TTL or admin): `410 Gone`.
    Expired,
    /// The id was never issued: `404`.
    Unknown,
}

/// What a submission through [`ServerState::submit`] produced.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The engine responded (answered or denied).
    Response(EngineResponse),
    /// The session was closed (possibly racing the reaper): `410`.
    Gone,
    /// No such session was ever issued: `404`.
    NoSuchSession,
}

/// The result of the evaluate half of a two-phase submission: either
/// already resolved (no such session / gone) or a pending charge that
/// [`ServerState::submit_commit`] must finish. `pub(crate)` — only
/// [`ServerState::submit`] and the schedule exerciser compose phases.
#[derive(Debug)]
pub(crate) enum SubmitPhase {
    Done(SubmitOutcome),
    Pending(SubmitInFlight),
}

/// A submission held between its evaluate and commit phases: the pinned
/// session, its dataset, and the uncharged [`apex_core::PendingCharge`].
/// Dropping it abandons the submission — the pin releases and nothing
/// is charged.
#[derive(Debug)]
pub(crate) struct SubmitInFlight {
    id: u64,
    session: EngineSession,
    dataset: String,
    pin: InFlightGuard,
    pending: apex_core::PendingCharge,
}

impl SubmitInFlight {
    /// The worst-case loss the commit phase may charge (`None` when the
    /// evaluate phase already denied). The exerciser records this before
    /// driving the commit, to bound recovered-vs-acked spend across a
    /// crash injected mid-commit.
    #[cfg(any(test, feature = "sched"))]
    pub(crate) fn epsilon_upper(&self) -> Option<f64> {
        self.pending.epsilon_upper()
    }
}

/// A submission failure.
#[derive(Debug)]
pub enum SubmitError {
    /// The engine rejected the query (malformed workload, …): `400`.
    Engine(EngineError),
    /// The write-ahead append failed at the commit point — the charge
    /// was **neither acked nor applied**: the append runs before the
    /// ledger mutation, so a refused record leaves memory and disk
    /// agreeing that nothing happened (in-memory `spent` can never run
    /// ahead of what recovery reconstructs): `500`.
    Wal(std::io::Error),
    /// A mutation batch too large to frame as one WAL record — refused
    /// before anything was applied: `413`.
    BatchTooLarge {
        /// Encoded record-payload size of the refused batch.
        bytes: usize,
        /// The WAL's per-record payload bound.
        limit: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Engine(e) => write!(f, "{e}"),
            SubmitError::Wal(e) => write!(f, "write-ahead log append failed: {e}"),
            SubmitError::BatchTooLarge { bytes, limit } => write!(
                f,
                "mutation batch encodes to {bytes} bytes, above the {limit}-byte WAL record bound"
            ),
        }
    }
}

/// What a row mutation through [`ServerState::mutate_rows`] produced.
#[derive(Debug)]
pub enum MutateOutcome {
    /// The batch applied (and, with persistence, was durably logged);
    /// the delta carries the new dataset epoch for the response.
    Applied(apex_data::RowDelta),
    /// No tenant of that name: `404`.
    NoSuchDataset,
}

/// Admin-plane view of one session.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Session id.
    pub id: u64,
    /// Bound dataset.
    pub dataset: String,
    /// Budget slice.
    pub allowance: f64,
    /// Loss charged so far.
    pub spent: f64,
    /// Milliseconds since the last submission.
    pub idle_millis: u64,
}

/// Durability configuration for [`ServerStateBuilder::build_recovered`].
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// State directory (created if missing): `snapshot.bin` +
    /// `wal-<GEN>.log`.
    pub dir: PathBuf,
    /// Compact (snapshot + WAL rotation) after this many appended
    /// records.
    pub snapshot_every: u64,
    /// fsync every append before acking (production truth; tests may
    /// trade durability for speed).
    pub sync: bool,
    /// Consent to truncate a **corrupt** (checksum-failing, not merely
    /// torn) WAL tail at the last valid record instead of refusing to
    /// start. Torn tails — the normal crash artifact — are always
    /// truncated and replayed up to the last valid record.
    pub truncate_corrupt: bool,
}

impl PersistOptions {
    /// Defaults: compact every 1024 records, fsync on, refuse corrupt
    /// tails.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: 1024,
            sync: true,
            truncate_corrupt: false,
        }
    }
}

/// Why recovery refused to bring the state up.
#[derive(Debug)]
pub enum RecoverError {
    /// Filesystem trouble.
    Io(std::io::Error),
    /// The snapshot is damaged — nothing to truncate back to.
    CorruptSnapshot(String),
    /// A WAL *before the newest generation* is damaged: real corruption,
    /// never a torn write (only the newest WAL can be mid-append).
    CorruptWalMidLog {
        /// The damaged generation.
        gen: u64,
    },
    /// The newest WAL's tail fails its checksum (bit rot, not a torn
    /// write) and `truncate_corrupt` consent was not given.
    CorruptWalTail {
        /// The damaged generation.
        gen: u64,
        /// Offset of the last valid record — what truncation would keep.
        valid_len: u64,
    },
    /// Another live process holds the state directory. Two writers on
    /// one WAL would interleave torn frames and jointly overspend `B`.
    DirLocked {
        /// The contested directory.
        dir: PathBuf,
        /// Pid recorded in the lock file, when readable.
        holder: Option<u32>,
    },
    /// The store references a tenant the builder did not register.
    UnknownTenant(String),
    /// A WAL record references a session the store never opened.
    UnknownSession(u64),
    /// Replayed spend does not fit the tenant's budget — the store
    /// cannot be trusted.
    LedgerOverflow {
        /// The offending tenant.
        tenant: String,
        /// The error from [`SharedEngine::import_ledger`].
        source: EngineError,
    },
    /// A journaled row mutation failed to re-apply on recovery — the
    /// rebuilt dataset would diverge from the data every acked answer
    /// was computed against.
    MutationReplay {
        /// The offending tenant.
        tenant: String,
        /// The error from the replayed mutation.
        source: EngineError,
    },
}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        RecoverError::Io(e)
    }
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "state dir I/O: {e}"),
            RecoverError::CorruptSnapshot(msg) => write!(f, "{msg}"),
            RecoverError::CorruptWalMidLog { gen } => {
                write!(f, "WAL generation {gen} is corrupt before the newest tail")
            }
            RecoverError::CorruptWalTail { gen, valid_len } => write!(
                f,
                "WAL generation {gen} has a corrupt (checksum-failing) tail; refusing to start — \
                 re-run with corrupt-tail truncation consent to cut it at byte {valid_len}"
            ),
            RecoverError::DirLocked { dir, holder } => write!(
                f,
                "state dir {} is held by another live server{}; two writers on one WAL \
                 would jointly overspend B — stop the other instance first",
                dir.display(),
                holder
                    .map(|pid| format!(" (pid {pid})"))
                    .unwrap_or_default()
            ),
            RecoverError::UnknownTenant(name) => write!(
                f,
                "persisted state references dataset \"{name}\" which is not registered"
            ),
            RecoverError::UnknownSession(id) => {
                write!(f, "WAL references session {id} which was never opened")
            }
            RecoverError::LedgerOverflow { tenant, source } => {
                write!(f, "recovered ledger for \"{tenant}\" is invalid: {source}")
            }
            RecoverError::MutationReplay { tenant, source } => {
                write!(
                    f,
                    "journaled mutation for \"{tenant}\" failed to re-apply: {source}"
                )
            }
        }
    }
}

impl std::error::Error for RecoverError {}

/// What recovery did, for the operator's log line.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// WAL records replayed over the snapshot.
    pub replayed: usize,
    /// `Some(bytes_kept)` when a damaged tail was truncated.
    pub truncated: Option<u64>,
    /// Live sessions restored.
    pub sessions: usize,
    /// Recovered `(tenant, spent)` pairs.
    pub tenants: Vec<(String, f64)>,
}

#[derive(Debug)]
struct PersistInner {
    writer: WalWriter,
    gen: u64,
    records_since_snapshot: u64,
    /// Monotonic count of durable appends (across WAL rotations) — the
    /// sequence the group-commit gate tracks durability against.
    append_seq: u64,
}

/// The group-commit gate: records are made durable in *groups*, each
/// group paying one `sync_data` call that covers every member's
/// already-appended record. The first uncovered thread becomes the
/// group's leader and *gathers*: it waits until `sync_peers` writers
/// have joined (the expected concurrency, set by the serving layer) or
/// a short timeout lapses, then reads the append high-water mark and
/// syncs once. Joiners just wait for `synced` to pass their seq — the
/// same durability latency they would have spent inside their own
/// `sync_data`, minus the syscall. On a host where fsync cost is
/// dominated by journal-commit CPU rather than device wait, collapsing
/// k concurrent fsyncs into one is what lets independent shard WALs
/// actually scale: every skipped call returns its CPU slice to the
/// other shards. Without gathering, two lockstep writers always miss
/// each other (each append lands just after the other's sync began)
/// and every record still pays a full fsync.
#[derive(Debug, Default)]
struct SyncGate {
    progress: Mutex<SyncProgress>,
    wakeup: Condvar,
}

#[derive(Debug, Default)]
struct SyncProgress {
    /// Highest `append_seq` known durable.
    synced: u64,
    /// Current group-commit phase.
    phase: SyncPhase,
    /// Writers that have joined the gathering group (leader included).
    members: u64,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum SyncPhase {
    /// No group in flight; the next uncovered writer leads one.
    #[default]
    Idle,
    /// A leader is waiting for peers before issuing the group's sync.
    Gathering,
    /// The group's `sync_data` is in flight.
    Syncing,
}

/// How long a group-commit leader waits for peers before syncing
/// anyway — the bound on added durability latency when a shard has
/// only one active writer (an otherwise idle shard, or the tail of a
/// burst).
const SYNC_GATHER_TIMEOUT: Duration = Duration::from_micros(200);

/// Exclusive ownership of a state directory: a `lock` file created with
/// `O_EXCL` holding this process's pid. Two servers appending to one WAL
/// would interleave torn frames, prune each other's generations, and
/// jointly spend `2B` — so the second opener must refuse. A lock left by
/// a *dead* pid (hard crash — exactly the case recovery exists for) is
/// detected via `/proc/<pid>` and stolen; where liveness cannot be
/// checked, the conservative answer is to refuse and tell the operator.
#[derive(Debug)]
struct DirLock {
    path: PathBuf,
}

/// Skips [`DirLock::acquire`]'s 20 ms settle-and-verify window. The
/// window guards against a *second process* stealing a stale lock it
/// observed before we re-created it; the schedule exerciser opens
/// thousands of brand-new single-process directories per gate run, for
/// which the window is 40 ms/run of pure sleep guarding a race no
/// second process exists to lose.
#[cfg(any(test, feature = "sched"))]
pub(crate) fn set_dirlock_settle_skip(on: bool) {
    DIRLOCK_SETTLE_SKIP.store(on, Ordering::Relaxed);
}

#[cfg(any(test, feature = "sched"))]
static DIRLOCK_SETTLE_SKIP: AtomicBool = AtomicBool::new(false);

impl DirLock {
    fn settle() {
        #[cfg(any(test, feature = "sched"))]
        if DIRLOCK_SETTLE_SKIP.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    fn acquire(dir: &std::path::Path) -> Result<Self, RecoverError> {
        let path = dir.join("lock");
        for _ in 0..3 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write as _;
                    let _ = write!(f, "{}", std::process::id());
                    drop(f);
                    // Settle, then verify. A racing starter acting on a
                    // *stale* observation may briefly rename our fresh
                    // lock aside; the content check below makes it
                    // restore (never destroy) a live lock, and this
                    // re-read catches the residual window. Any
                    // ambiguity resolves fail-closed: a contender that
                    // finds its own pid under someone else's tenure
                    // refuses rather than double-owning.
                    Self::settle();
                    match std::fs::read_to_string(&path) {
                        Ok(s) if s.trim() == std::process::id().to_string() => {
                            return Ok(Self { path });
                        }
                        _ => continue, // lost a steal race; re-contend
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    let stale = match holder {
                        // Our own pid: another ServerState in THIS
                        // process holds the dir — the most direct
                        // two-writers hazard there is. Refuse.
                        Some(pid) if pid == std::process::id() => false,
                        Some(pid) if std::path::Path::new("/proc").is_dir() => {
                            !std::path::Path::new(&format!("/proc/{pid}")).exists()
                        }
                        // Unparseable pid: a damaged lock from a dead
                        // writer (the write is a single tiny buffer).
                        None => true,
                        // Liveness unknowable on this platform: refuse.
                        Some(_) => false,
                    };
                    if !stale {
                        return Err(RecoverError::DirLocked {
                            dir: dir.to_path_buf(),
                            holder,
                        });
                    }
                    // Steal by atomic rename into a name private to this
                    // process, then verify the moved file is the stale
                    // lock we actually observed before destroying it. A
                    // racing winner may already have replaced the stale
                    // lock with its own — renaming blindly and deleting
                    // would kill a live lock; instead such a mis-steal
                    // is detected by content and restored.
                    let aside = dir.join(format!("lock.stale.{}", std::process::id()));
                    if std::fs::rename(&path, &aside).is_ok() {
                        let moved = std::fs::read_to_string(&aside)
                            .ok()
                            .and_then(|s| s.trim().parse::<u32>().ok());
                        if moved == holder {
                            let _ = std::fs::remove_file(&aside);
                        } else {
                            // Not the corpse we renamed for: put the
                            // live lock back and fall through to
                            // re-contend (its holder wins next round).
                            let _ = std::fs::rename(&aside, &path);
                        }
                    }
                    // Re-contend; a live winner's pid shows next round.
                }
                Err(e) => return Err(RecoverError::Io(e)),
            }
        }
        Err(RecoverError::DirLocked {
            dir: dir.to_path_buf(),
            holder: None,
        })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[derive(Debug)]
struct Persist {
    dir: PathBuf,
    snapshot_every: u64,
    sync: bool,
    /// Held for the lifetime of the state; dropping it releases the
    /// directory.
    _lock: DirLock,
    inner: Mutex<PersistInner>,
    sync_gate: SyncGate,
    /// Expected number of concurrent writers (the serving layer's
    /// workers per shard): a group-commit leader stops gathering once
    /// this many writers have joined. 1 = sync immediately.
    sync_peers: AtomicU64,
    /// Fault injection for tests and the schedule exerciser: the next N
    /// appends fail with an I/O error, exercising the
    /// durable-or-nothing commit contract.
    #[cfg(any(test, feature = "sched"))]
    fail_appends: AtomicU64,
}

/// Everything the request handlers share.
#[derive(Debug)]
pub struct ServerState {
    tenants: Vec<(String, Tenant)>,
    cache: TranslatorCache,
    sessions: RwLock<HashMap<u64, SessionEntry>>,
    /// Ids are handed out sequentially from here, which doubles as the
    /// tombstone predicate: any id above [`ServerState::session_id_base`]
    /// and below this watermark that is not in the live map once existed
    /// and is now gone (`410`, not `404`) — no per-session tombstone
    /// storage, bounded for the life of the deployment, and it survives
    /// restarts because the watermark is persisted.
    next_session: AtomicU64,
    /// Offset under every id this state allocates (ids run from
    /// `base + 1`). Shard sets encode the owning shard in the high bits
    /// (`shard << 40`), so any session id names its shard and the
    /// per-shard sequences can never collide.
    session_id_base: u64,
    clock: Arc<dyn Clock>,
    ttl_millis: Option<u64>,
    admin_token: Option<String>,
    persist: Option<Persist>,
    /// The ledger gate: shared by every charge-then-append pair,
    /// exclusive during compaction — a snapshot can never observe a
    /// charge whose WAL record would land in the next generation.
    ledger_gate: RwLock<()>,
    /// Applied-mutation journal for **resident** tenants: the durable
    /// copy compaction folds into every snapshot (a paged tenant's
    /// store logs its own mutations). Apply order == epoch order,
    /// enforced by `mutate_serial`.
    mutation_journal: Mutex<Vec<MutationImage>>,
    /// Serializes concurrent mutations so WAL order equals epoch order
    /// — recovery replays records in file order and trusts
    /// `epoch_after` to be monotonic per tenant.
    mutate_serial: Mutex<()>,
}

impl ServerState {
    /// Starts building a state whose tenants share one translator cache
    /// bounded to `cache_cap` entries.
    pub fn builder(cache_cap: usize) -> ServerStateBuilder {
        Self::builder_with_cache(TranslatorCache::with_capacity(cache_cap))
    }

    /// [`ServerState::builder`] over an existing translator cache handle.
    /// Shard sets hand one root cache to every shard's builder, so
    /// cross-tenant artifact sharing survives sharding (the cache is
    /// data-independent; only the stats scopes are per tenant).
    pub fn builder_with_cache(cache: TranslatorCache) -> ServerStateBuilder {
        ServerStateBuilder {
            cache,
            tenants: Vec::new(),
            clock: Arc::new(SystemClock::new()),
            ttl: None,
            admin_token: None,
            session_id_base: 0,
        }
    }

    /// The offset under every session id this state allocates (0 for an
    /// unsharded state, `shard << 40` inside a shard set).
    pub fn session_id_base(&self) -> u64 {
        self.session_id_base
    }

    /// The tenant registered under `name`.
    pub fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenants.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// All tenants, in registration order.
    pub fn tenants(&self) -> &[(String, Tenant)] {
        &self.tenants
    }

    /// The shared cache's root handle (global stats, capacity, size).
    pub fn cache(&self) -> &TranslatorCache {
        &self.cache
    }

    /// The session TTL in milliseconds, when one is configured.
    pub fn ttl_millis(&self) -> Option<u64> {
        self.ttl_millis
    }

    /// The configured admin bearer token, when one is set.
    pub fn admin_token(&self) -> Option<&str> {
        self.admin_token.as_deref()
    }

    /// The clock sessions age against.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Opens a session on `dataset` with the given allowance; returns
    /// the session id, `Ok(None)` when the dataset does not exist. With
    /// persistence, the open is WAL-logged before the id is returned.
    ///
    /// # Errors
    /// The WAL append failing — the session is rolled back, nothing was
    /// acked.
    pub fn create_session(
        &self,
        dataset: &str,
        allowance: f64,
    ) -> Result<Option<u64>, std::io::Error> {
        let Some(tenant) = self.tenant(dataset) else {
            return Ok(None);
        };
        let _gate = lockx::read(&self.ledger_gate);
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        apex_core::sched_point!("state.open.enter");
        // Log BEFORE the session becomes visible in the live map: ids
        // are sequential, so a client guessing the next id could
        // otherwise race a Debit append ahead of the Open append (both
        // only hold the shared gate) and leave a WAL recovery must
        // refuse. Until the insert below, submits against `id` get 404
        // — nothing can reference the session before its Open record is
        // durable. A failed append allocates an id that never opens;
        // that is fine (status-wise it reads as a long-gone session).
        self.log(WalRecord::Open {
            session: id,
            dataset: dataset.to_string(),
            allowance,
        })?;
        apex_core::sched_point!("state.open.logged");
        let entry = SessionEntry {
            dataset: dataset.to_string(),
            session: tenant.engine.session(allowance),
            last_active: Arc::new(AtomicU64::new(self.clock.now_millis())),
            in_flight: Arc::new(AtomicU64::new(0)),
        };
        lockx::write(&self.sessions).insert(id, entry);
        drop(_gate);
        apex_core::sched_point!("state.open.inserted");
        self.maybe_compact();
        Ok(Some(id))
    }

    /// Submits a query through session `id`, two-phase: resolves and
    /// **pins** the session (the reaper skips pinned sessions), runs the
    /// evaluate phase with *no* ledger gate or engine lock held — slow
    /// translations and mechanism runs proceed concurrently with other
    /// sessions and with compaction — then commits under the shared side
    /// of the ledger gate, where the WAL append and the charge form one
    /// atomic step (append first: a refused append charges nothing). The
    /// router must not ack an unlogged charge, and with this ordering it
    /// cannot: the response only exists if its record was appended.
    ///
    /// # Errors
    /// [`SubmitError::Engine`] for malformed queries or mechanism
    /// faults, [`SubmitError::Wal`] when the write-ahead append failed
    /// (nothing was charged).
    pub fn submit(
        &self,
        id: u64,
        query: &ExplorationQuery,
        accuracy: &AccuracySpec,
    ) -> Result<SubmitOutcome, SubmitError> {
        match self.submit_evaluate(id, query, accuracy)? {
            SubmitPhase::Done(outcome) => Ok(outcome),
            SubmitPhase::Pending(flight) => self.submit_commit(flight),
        }
    }

    /// The evaluate half of [`ServerState::submit`]: pin + speculative
    /// mechanism run, no gate held. Split out so the schedule exerciser
    /// can interleave other operations between a submission's two
    /// phases; production code always goes through `submit`.
    pub(crate) fn submit_evaluate(
        &self,
        id: u64,
        query: &ExplorationQuery,
        accuracy: &AccuracySpec,
    ) -> Result<SubmitPhase, SubmitError> {
        let Some((session, dataset, pin)) = self.pin_session(id) else {
            return Ok(SubmitPhase::Done(match self.session_status(id) {
                SessionStatus::Expired => SubmitOutcome::Gone,
                _ => SubmitOutcome::NoSuchSession,
            }));
        };
        apex_core::sched_point!("state.submit.pinned");
        // EVALUATE: data-independent speculation, no gate held.
        let pending = match session.evaluate(query, accuracy) {
            Ok(p) => p,
            Err(EngineError::SessionClosed) => return Ok(SubmitPhase::Done(SubmitOutcome::Gone)),
            Err(e) => return Err(SubmitError::Engine(e)),
        };
        apex_core::sched_point!("state.submit.evaluated");
        Ok(SubmitPhase::Pending(SubmitInFlight {
            id,
            session,
            dataset,
            pin,
            pending,
        }))
    }

    /// The commit half of [`ServerState::submit`].
    pub(crate) fn submit_commit(
        &self,
        flight: SubmitInFlight,
    ) -> Result<SubmitOutcome, SubmitError> {
        let SubmitInFlight {
            id,
            session,
            dataset,
            pin,
            pending,
        } = flight;
        // COMMIT: the shared side of the ledger gate covers exactly the
        // re-check + append + charge, so compaction (exclusive side)
        // cannot snapshot a charge while pushing its WAL record into the
        // next generation — and never waits on an in-flight evaluate.
        let _gate = lockx::read(&self.ledger_gate);
        apex_core::sched_point!("state.submit.commit_gate");
        let response = match session.commit_with(pending, |response| {
            self.log(match response {
                EngineResponse::Answered(a) => WalRecord::Debit {
                    session: id,
                    epsilon: a.epsilon,
                },
                EngineResponse::Denied => WalRecord::Deny { session: id },
            })
        }) {
            Ok(r) => r,
            Err(CommitError::Engine(EngineError::SessionClosed)) => return Ok(SubmitOutcome::Gone),
            Err(CommitError::Engine(e)) => return Err(SubmitError::Engine(e)),
            Err(CommitError::Log(e)) => return Err(SubmitError::Wal(e)),
        };
        drop(_gate);
        drop(pin);
        apex_core::sched_point!("state.submit.done");
        // Audit transcript, outside the gate: append-only telemetry, the
        // WAL record above is the durability-critical one.
        if let Some(tenant) = self.tenant(&dataset) {
            tenant.record_transcript(id, &response);
        }
        self.maybe_compact();
        Ok(SubmitOutcome::Response(response))
    }

    /// Applies a row mutation (insert or delete batch) to `dataset`'s
    /// engine, WAL-logging it **before the ack**. The engine bumps the
    /// dataset epoch, incrementally extends its compiled artifacts, and
    /// from that instant refuses to commit any in-flight query that
    /// evaluated against the old epoch ([`EngineError::StaleEpoch`]) —
    /// readers racing this call either charge against the pre-mutation
    /// data (their commit beat the apply) or are told to re-evaluate.
    ///
    /// Durability: a paged tenant's store commits the batch durably
    /// itself (mutation log + copy-on-write pages) before this method
    /// WAL-logs it, so the crash window between apply and append loses
    /// nothing — recovery skips the missing record by epoch. A resident
    /// tenant's only durable copy is the WAL record plus the snapshot
    /// journal it compacts into; the window loses an apply nobody was
    /// acked. A *failed* append on a resident tenant leaves the live
    /// dataset ahead of what a restart rebuilds — the 500 tells the
    /// caller the mutation is not durable.
    ///
    /// # Errors
    /// [`SubmitError::Engine`] for schema violations or empty batches
    /// (nothing applied), [`SubmitError::BatchTooLarge`] for a batch
    /// whose WAL record cannot be framed (nothing applied),
    /// [`SubmitError::Wal`] when the append failed after the apply.
    pub fn mutate_rows(
        &self,
        dataset: &str,
        insert: bool,
        rows: &[Vec<apex_data::Value>],
    ) -> Result<MutateOutcome, SubmitError> {
        let Some(tenant) = self.tenant(dataset) else {
            return Ok(MutateOutcome::NoSuchDataset);
        };
        // Size the WAL record before touching anything: a batch whose
        // record cannot be framed must be refused pre-apply, not after
        // the engine already committed it.
        let mut record = WalRecord::Mutate {
            dataset: dataset.to_string(),
            insert,
            epoch_after: 0,
            rows: rows.to_vec(),
        };
        let bytes = record.encode().len().saturating_sub(8);
        if bytes > wal::MAX_PAYLOAD {
            return Err(SubmitError::BatchTooLarge {
                bytes,
                limit: wal::MAX_PAYLOAD,
            });
        }
        // Shared side of the ledger gate: like a charge, the mutation's
        // WAL record must land in the generation whose snapshot covers
        // its effect — compaction (exclusive side) can never snapshot
        // the new epoch while pushing the record into the next
        // generation.
        let _gate = lockx::read(&self.ledger_gate);
        let _serial = lockx::lock(&self.mutate_serial);
        apex_core::sched_point!("state.mutate.enter");
        let delta = if insert {
            tenant.engine.insert_rows(rows)
        } else {
            tenant.engine.delete_rows(rows)
        }
        .map_err(SubmitError::Engine)?;
        apex_core::sched_point!("state.mutate.applied");
        if let WalRecord::Mutate { epoch_after, .. } = &mut record {
            *epoch_after = delta.epoch;
        }
        let resident = tenant.engine.with_engine(|e| e.dataset_epoch().is_none());
        self.log(record).map_err(SubmitError::Wal)?;
        if resident && self.persist.is_some() {
            lockx::lock(&self.mutation_journal).push(MutationImage {
                dataset: dataset.to_string(),
                insert,
                epoch_after: delta.epoch,
                rows: rows.to_vec(),
            });
        }
        apex_core::sched_point!("state.mutate.logged");
        drop(_serial);
        drop(_gate);
        self.maybe_compact();
        Ok(MutateOutcome::Applied(delta))
    }

    /// Resolves a live session and pins it in-flight: stamps the
    /// activity tick on entry, and the returned guard re-stamps it and
    /// releases the pin when the submission completes. `None` for ids
    /// that are not live.
    fn pin_session(&self, id: u64) -> Option<(EngineSession, String, InFlightGuard)> {
        let sessions = lockx::read(&self.sessions);
        let entry = sessions.get(&id)?;
        entry.in_flight.fetch_add(1, Ordering::SeqCst);
        entry
            .last_active
            .store(self.clock.now_millis(), Ordering::SeqCst);
        Some((
            entry.session.clone(),
            entry.dataset.clone(),
            InFlightGuard {
                clock: self.clock.clone(),
                last_active: entry.last_active.clone(),
                in_flight: entry.in_flight.clone(),
            },
        ))
    }

    /// Whether `id` is live, expired (gone), or never issued.
    pub fn session_status(&self, id: u64) -> SessionStatus {
        if lockx::read(&self.sessions).contains_key(&id) {
            SessionStatus::Live
        } else if id > self.session_id_base && id < self.next_session.load(Ordering::Relaxed) {
            // Allocation is sequential from the base, so every id in
            // (base, watermark) was issued once; not live means gone.
            // Ids under a *different* base belong to another shard and
            // read as unknown here.
            SessionStatus::Expired
        } else {
            SessionStatus::Unknown
        }
    }

    /// Runs `f` with the session, or returns `None` for unknown ids.
    pub fn with_session<T>(&self, id: u64, f: impl FnOnce(&SessionEntry) -> T) -> Option<T> {
        lockx::read(&self.sessions).get(&id).map(f)
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        lockx::read(&self.sessions).len()
    }

    /// Number of live sessions bound to `dataset`.
    pub fn session_count_for(&self, dataset: &str) -> usize {
        lockx::read(&self.sessions)
            .values()
            .filter(|s| s.dataset == dataset)
            .count()
    }

    /// Number of sessions that once existed and are now gone (issued
    /// ids minus live ones — derived, not stored).
    pub fn expired_count(&self) -> usize {
        let issued = self
            .next_session
            .load(Ordering::Relaxed)
            .saturating_sub(self.session_id_base + 1) as usize;
        issued.saturating_sub(self.session_count())
    }

    /// Admin-plane listing of live sessions, ascending by id.
    pub fn list_sessions(&self) -> Vec<SessionInfo> {
        let now = self.clock.now_millis();
        let mut out: Vec<SessionInfo> = lockx::read(&self.sessions)
            .iter()
            .map(|(&id, e)| SessionInfo {
                id,
                dataset: e.dataset.clone(),
                allowance: e.session.allowance(),
                spent: e.session.spent(),
                idle_millis: now.saturating_sub(e.last_active.load(Ordering::Relaxed)),
            })
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Closes session `id` (admin or reaper): removes it from the live
    /// table (which makes it `410` — see [`ServerState::session_status`]),
    /// releases the unspent remainder of its slice **exactly once** into
    /// the tenant's reclaimed pool, and WAL-logs the close. `Ok(None)`
    /// when the session is not live (unknown or already expired).
    ///
    /// # Errors
    /// The WAL append failing (the close itself already happened; it
    /// will be folded into the next snapshot).
    pub fn expire_session(&self, id: u64) -> Result<Option<f64>, std::io::Error> {
        self.expire_session_if(id, |_| true)
    }

    /// [`ServerState::expire_session`] gated by `still_expired`, checked
    /// under the sessions **write** lock immediately before removal.
    /// This closes the reaper's scan-to-removal race: a submission that
    /// pins the session (or re-stamps its tick) after the reaper's
    /// candidate scan is observed here, and the removal is abandoned —
    /// pinning takes effect under the read lock, which cannot overlap
    /// this write-locked re-check.
    fn expire_session_if(
        &self,
        id: u64,
        still_expired: impl FnOnce(&SessionEntry) -> bool,
    ) -> Result<Option<f64>, std::io::Error> {
        let _gate = lockx::read(&self.ledger_gate);
        let entry = {
            let mut sessions = lockx::write(&self.sessions);
            match sessions.get(&id) {
                Some(entry) if still_expired(entry) => {
                    apex_core::sched_point!("state.expire.removing");
                    sessions.remove(&id).expect("checked above")
                }
                _ => return Ok(None),
            }
        };
        apex_core::sched_point!("state.expire.removed");
        // Exactly-once by construction: only the thread that removed the
        // entry reaches this close, and close() itself is idempotent.
        let released = entry.session.close().unwrap_or(0.0);
        if let Some(tenant) = self.tenant(&entry.dataset) {
            *lockx::lock(&tenant.reclaimed) += released;
        }
        apex_core::sched_point!("state.expire.closed");
        self.log(WalRecord::Close {
            session: id,
            released,
        })?;
        apex_core::sched_point!("state.expire.logged");
        drop(_gate);
        self.maybe_compact();
        Ok(Some(released))
    }

    /// Expires every session idle past the TTL (no-op without one).
    /// Sessions with a submission in flight are **never** reaped,
    /// however stale their tick — the pin is checked before idleness,
    /// and completion re-stamps the tick before unpinning, so a query
    /// slower than the TTL keeps its session alive throughout. Returns
    /// the `(id, released)` pairs.
    ///
    /// # Errors
    /// The first WAL append failure (later sessions stay live for the
    /// next sweep).
    pub fn reap_expired(&self) -> Result<Vec<(u64, f64)>, std::io::Error> {
        let Some(ttl) = self.ttl_millis else {
            return Ok(Vec::new());
        };
        let now = self.clock.now_millis();
        let idle: Vec<u64> = lockx::read(&self.sessions)
            .iter()
            .filter(|(_, e)| {
                e.in_flight.load(Ordering::SeqCst) == 0
                    && now.saturating_sub(e.last_active.load(Ordering::SeqCst)) > ttl
            })
            .map(|(&id, _)| id)
            .collect();
        apex_core::sched_point!("state.reap.scanned");
        let mut reaped = Vec::new();
        for id in idle {
            // Re-verify pin + staleness under the write lock at the
            // removal point: a submission may have pinned (or finished
            // and re-stamped) this session since the scan above, and a
            // live query must never lose its session to the reaper.
            let released = self.expire_session_if(id, |e| {
                e.in_flight.load(Ordering::SeqCst) == 0
                    && now.saturating_sub(e.last_active.load(Ordering::SeqCst)) > ttl
            })?;
            if let Some(released) = released {
                reaped.push((id, released));
            }
        }
        Ok(reaped)
    }

    /// Appends one WAL record (no-op without persistence). Denials get
    /// the relaxed (ordered, not fsynced) append: they charge nothing,
    /// so a deny-heavy workload — the steady state of an exhausted
    /// tenant — must not pay a durability fsync per 409.
    fn log(&self, record: WalRecord) -> Result<(), std::io::Error> {
        let Some(p) = &self.persist else {
            return Ok(());
        };
        apex_core::sched_point!("state.log.enter");
        #[cfg(any(test, feature = "sched"))]
        if p.fail_appends
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(std::io::Error::other("injected WAL append fault"));
        }
        // Append under the writer lock, fsync after releasing it (see
        // `SyncGate`): a sibling handler can append the next record
        // while this one's sync is in flight, and a completed sync
        // covers every record appended before it started. With the
        // fsync inside the lock, every record costs a full journal
        // commit plus a scheduler wakeup, back to back.
        let (seq, sync_me) = {
            let mut inner = lockx::lock(&p.inner);
            let sync_me = match record {
                WalRecord::Deny { .. } => {
                    inner.writer.append_relaxed(&record)?;
                    None
                }
                _ => inner.writer.append_deferred(&record)?,
            };
            inner.records_since_snapshot += 1;
            if sync_me.is_some() {
                inner.append_seq += 1;
            }
            (inner.append_seq, sync_me)
        };
        apex_core::sched_point!("state.log.appended");
        let Some(file) = sync_me else {
            return Ok(()); // relaxed record, or a writer that never syncs
        };
        // Group commit (see `SyncGate`). Loop invariant: on every pass,
        // either this record is already durable (return), or a group is
        // gathering (join it), or a sync is in flight (wait for its
        // result), or this thread leads a new group. A leader that
        // straddled a WAL rotation syncs the old generation's file —
        // harmless, the snapshot that rotated it already covers those
        // records (and the exclusive ledger gate keeps a rotation from
        // racing an in-flight append-and-sync).
        let gate = &p.sync_gate;
        let peers = p.sync_peers.load(Ordering::Relaxed).max(1);
        let mut prog = lockx::lock(&gate.progress);
        let mut joined = false;
        loop {
            if prog.synced >= seq {
                return Ok(());
            }
            match prog.phase {
                SyncPhase::Idle => {
                    prog.phase = SyncPhase::Gathering;
                    prog.members = 1;
                    break;
                }
                SyncPhase::Gathering => {
                    if !joined {
                        joined = true;
                        prog.members += 1;
                        if prog.members >= peers {
                            // Group full: wake the leader to sync now.
                            gate.wakeup.notify_all();
                        }
                    }
                    prog = lockx::wait(&gate.wakeup, prog);
                }
                SyncPhase::Syncing => {
                    prog = lockx::wait(&gate.wakeup, prog);
                }
            }
        }
        // This thread leads the group: wait for the expected peers to
        // append and join (bounded by the gather timeout), then sync
        // once for everyone.
        let gather_start = std::time::Instant::now();
        while prog.members < peers {
            let left = SYNC_GATHER_TIMEOUT.saturating_sub(gather_start.elapsed());
            if left.is_zero() {
                break;
            }
            let (p2, _) = lockx::wait_timeout(&gate.wakeup, prog, left);
            prog = p2;
        }
        prog.phase = SyncPhase::Syncing;
        drop(prog);
        // Everything appended up to here — read under the writer lock —
        // is on file before `sync_data` begins, so it is durable when
        // the call returns.
        let target = lockx::lock(&p.inner).append_seq;
        let result = file.sync_data();
        let mut prog = lockx::lock(&gate.progress);
        prog.phase = SyncPhase::Idle;
        prog.members = 0;
        match result {
            Ok(()) => {
                prog.synced = prog.synced.max(target);
                drop(prog);
                gate.wakeup.notify_all();
                Ok(())
            }
            Err(e) => {
                // No rollback is possible out here (later appends may
                // already sit behind this record), so fail closed: the
                // writer refuses everything from now on, and this
                // request errors instead of acking. If the record still
                // reaches disk via a later commit, recovery over-counts
                // spend relative to acks — the safe direction. Waiters
                // are woken un-advanced; each retries the sync itself
                // and reports its own failure.
                drop(prog);
                gate.wakeup.notify_all();
                lockx::lock(&p.inner).writer.poison();
                Err(e)
            }
        }
    }

    /// Tells the WAL group-commit gate how many concurrent writers to
    /// expect (the serving layer's workers per shard): a group leader
    /// stops gathering once this many writers joined. 1 (the default)
    /// syncs immediately — the right call for single-threaded callers.
    /// No-op without persistence.
    pub fn set_sync_peers(&self, peers: usize) {
        if let Some(p) = &self.persist {
            p.sync_peers.store(peers.max(1) as u64, Ordering::Relaxed);
        }
    }

    /// Compacts when the WAL has grown past the configured threshold.
    fn maybe_compact(&self) {
        let Some(p) = &self.persist else { return };
        let due = {
            let inner = lockx::lock(&p.inner);
            inner.records_since_snapshot >= p.snapshot_every
        };
        if due {
            // A failed compaction is not fatal: the WAL keeps growing
            // and the next threshold crossing retries.
            let _ = self.compact();
        }
    }

    /// Folds the current ledger + session table into a snapshot and
    /// rotates to a fresh WAL generation. Runs under the exclusive side
    /// of the ledger gate — no charge can straddle the cut.
    ///
    /// # Errors
    /// Snapshot write or WAL rotation I/O failures.
    pub fn compact(&self) -> Result<(), std::io::Error> {
        // Piggyback the audit-transcript flush on the compaction cadence
        // (and on the explicit admin compact): best-effort, see
        // [`ServerState::flush_transcripts`].
        self.flush_transcripts();
        let Some(p) = &self.persist else {
            return Ok(());
        };
        let _gate = lockx::write(&self.ledger_gate);
        let mut inner = lockx::lock(&p.inner);
        apex_core::sched_point!("state.compact.enter");
        // Open the next generation BEFORE committing the snapshot that
        // covers the current one. The snapshot rename is the commit
        // point: once it claims `covered_gen = G`, no acked record may
        // ever land in `wal-G.log` again — so the `G+1` writer must
        // already be in hand. Failing here leaves the old snapshot + old
        // writer fully intact (a stray empty `wal-(G+1).log` is harmless:
        // recovery replays it as empty). The reverse order would, on a
        // failed open, keep appending acked debits to a generation the
        // just-committed snapshot tells recovery to ignore.
        let new_gen = inner.gen + 1;
        let new_path = snapshot::wal_path(&p.dir, new_gen);
        let writer = WalWriter::open(&new_path, p.sync)?;
        apex_core::sched_point!("state.compact.new_gen");
        let image = self.snapshot_image(inner.gen);
        if let Err(e) = snapshot::write_snapshot(&p.dir, &image) {
            // Nothing was appended to the new generation yet; remove the
            // stray so the directory stays exactly as before the attempt
            // (recovery also tolerates trailing empty generations).
            drop(writer);
            let _ = std::fs::remove_file(&new_path);
            return Err(e);
        }
        apex_core::sched_point!("state.compact.snapshotted");
        inner.writer = writer;
        inner.gen = new_gen;
        inner.records_since_snapshot = 0;
        drop(inner);
        drop(_gate);
        snapshot::prune_wals(&p.dir, new_gen - 1);
        apex_core::sched_point!("state.compact.done");
        Ok(())
    }

    /// Makes the next `n` WAL appends fail with an injected I/O error
    /// (no-op without persistence) — the fault half of the
    /// durable-or-nothing commit tests and the exerciser's `WalFault`
    /// operation.
    #[cfg(any(test, feature = "sched"))]
    pub(crate) fn inject_wal_faults(&self, n: u64) {
        if let Some(p) = &self.persist {
            p.fail_appends.store(n, Ordering::SeqCst);
        }
    }

    /// Commits every tenant's audit transcript to disk (tail page +
    /// fsync + manifest). Best-effort: a failing transcript store must
    /// not take down query serving, so errors only bump the tenant's
    /// dropped counter. Called on every compaction and at shutdown.
    pub fn flush_transcripts(&self) {
        for (_, tenant) in &self.tenants {
            if let Some(log) = &tenant.transcript {
                if lockx::lock(log).flush().is_err() {
                    tenant.transcript_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The current state as a snapshot covering WAL generations
    /// `≤ covered_gen`.
    fn snapshot_image(&self, covered_gen: u64) -> Snapshot {
        let sessions = lockx::read(&self.sessions);
        Snapshot {
            covered_gen,
            next_session: self.next_session.load(Ordering::Relaxed),
            tenants: self
                .tenants
                .iter()
                .map(|(name, t)| TenantLedger {
                    name: name.clone(),
                    spent: t.engine.export_ledger().spent,
                    reclaimed: t.reclaimed(),
                })
                .collect(),
            sessions: sessions
                .iter()
                .map(|(&id, e)| SessionImage {
                    id,
                    dataset: e.dataset.clone(),
                    allowance: e.session.allowance(),
                    spent: e.session.spent(),
                })
                .collect(),
            // Coherent with the engines: compaction holds the ledger
            // gate exclusively, and every journal push happens under
            // its shared side.
            mutations: lockx::lock(&self.mutation_journal).clone(),
        }
    }
}

/// Builder for [`ServerState`] — register tenants, then
/// [`ServerStateBuilder::build`] (in-memory) or
/// [`ServerStateBuilder::build_recovered`] (durable).
#[derive(Debug)]
pub struct ServerStateBuilder {
    cache: TranslatorCache,
    tenants: Vec<(String, Tenant)>,
    clock: Arc<dyn Clock>,
    ttl: Option<Duration>,
    admin_token: Option<String>,
    session_id_base: u64,
}

impl ServerStateBuilder {
    /// Registers `data` as tenant `name`: a fresh engine with its own
    /// budget/mode/seed from `config`, drawing on the shared cache
    /// through its own stats scope. Re-registering a name replaces the
    /// previous tenant.
    pub fn dataset(mut self, name: &str, data: Dataset, config: EngineConfig) -> Self {
        let scope = self.cache.scoped();
        let engine = SharedEngine::new(ApexEngine::with_translator_cache(
            data,
            config,
            scope.clone(),
        ));
        let tenant = Tenant {
            engine,
            cache: scope,
            reclaimed: Mutex::new(0.0),
            transcript: None,
            transcript_dropped: AtomicU64::new(0),
        };
        self.tenants.retain(|(n, _)| n != name);
        self.tenants.push((name.to_string(), tenant));
        self
    }

    /// Attaches a durable audit transcript (`<root>/<tenant>/`) to every
    /// tenant registered **so far**, opening existing logs where present.
    /// Call after the last [`ServerStateBuilder::dataset`].
    ///
    /// # Errors
    /// Corrupt transcript manifests or I/O failures opening the logs.
    pub fn transcripts_under(mut self, root: &std::path::Path) -> Result<Self, StoreError> {
        for (name, tenant) in &mut self.tenants {
            let log = PageLog::open_or_create(&root.join(name.as_str()), 1)?;
            tenant.transcript = Some(Mutex::new(log));
        }
        Ok(self)
    }

    /// Injects the clock sessions age against (tests use
    /// [`crate::clock::ManualClock`]).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the idle TTL after which the reaper expires sessions.
    pub fn session_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Requires `Authorization: Bearer <token>` on every `/v1/admin/*`
    /// endpoint.
    pub fn admin_token(mut self, token: &str) -> Self {
        self.admin_token = Some(token.to_string());
        self
    }

    /// Offsets every session id: allocation starts at `base + 1` and the
    /// tombstone watermark covers `(base, next)`. Shard sets pass
    /// `shard << 40` so ids are globally unique and name their shard.
    /// Must be stable across restarts of the same state directory.
    pub fn session_id_base(mut self, base: u64) -> Self {
        self.session_id_base = base;
        self
    }

    /// Finishes an **in-memory** registry (no persistence).
    pub fn build(self) -> ServerState {
        ServerState {
            tenants: self.tenants,
            cache: self.cache,
            sessions: RwLock::new(HashMap::new()),
            next_session: AtomicU64::new(self.session_id_base + 1),
            session_id_base: self.session_id_base,
            clock: self.clock,
            ttl_millis: self
                .ttl
                .map(|t| u64::try_from(t.as_millis()).unwrap_or(u64::MAX)),
            admin_token: self.admin_token,
            persist: None,
            ledger_gate: RwLock::new(()),
            mutation_journal: Mutex::new(Vec::new()),
            mutate_serial: Mutex::new(()),
        }
    }

    /// Finishes a **durable** registry: recovers WAL-over-snapshot from
    /// `opts.dir` (creating it when empty), re-imposes spent budget on
    /// every engine, re-opens live sessions mid-slice, then compacts so
    /// the directory starts the new run from a fresh snapshot + empty
    /// WAL generation.
    ///
    /// # Errors
    /// See [`RecoverError`] — notably, a checksum-corrupt WAL tail
    /// refuses to start without `opts.truncate_corrupt`, and recovered
    /// spend beyond any tenant's `B` always refuses (a store that
    /// over-spends is corrupt; clamping would forge budget headroom).
    pub fn build_recovered(
        self,
        opts: PersistOptions,
    ) -> Result<(ServerState, RecoveryReport), RecoverError> {
        std::fs::create_dir_all(&opts.dir)?;
        // Claim the directory first: recovery itself mutates it
        // (truncation, compaction), so even the read side needs the
        // exclusivity. Released on drop — including every error return
        // below, so a refused recovery can be retried.
        let lock = DirLock::acquire(&opts.dir)?;
        let mut report = RecoveryReport::default();

        // 1. The snapshot (damage here is always fatal).
        let snap = snapshot::read_snapshot(&opts.dir)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    RecoverError::CorruptSnapshot(e.to_string())
                } else {
                    RecoverError::Io(e)
                }
            })?
            .unwrap_or_default();

        // 2. WAL generations beyond the snapshot's coverage. Tail
        // damage is only a *crash artifact* in the generation that was
        // actively written — the last one holding anything. Generations
        // after it that are completely empty (magic only) are strays
        // from a rotation that failed between opening the next file and
        // committing its snapshot; they must not promote earlier tail
        // damage into an unrecoverable "mid-log" refusal.
        let gens: Vec<u64> = snapshot::list_wal_gens(&opts.dir)?
            .into_iter()
            .filter(|&g| g > snap.covered_gen)
            .collect();
        let mut read: Vec<(u64, Vec<WalRecord>, WalTail)> = Vec::with_capacity(gens.len());
        for &gen in &gens {
            let (recs, tail) = wal::read_wal(&snapshot::wal_path(&opts.dir, gen))?;
            read.push((gen, recs, tail));
        }
        let last_active = read
            .iter()
            .rposition(|(_, recs, tail)| !recs.is_empty() || *tail != WalTail::Clean);
        let mut records = Vec::new();
        for (i, (gen, recs, tail)) in read.into_iter().enumerate() {
            let newest = Some(i) == last_active;
            let path = snapshot::wal_path(&opts.dir, gen);
            match tail {
                WalTail::Clean => {}
                _ if !newest => return Err(RecoverError::CorruptWalMidLog { gen }),
                WalTail::Torn { valid_len } => {
                    // The expected crash artifact: cut it, keep going.
                    wal::truncate_wal(&path, valid_len)?;
                    report.truncated = Some(valid_len);
                }
                WalTail::Corrupt { valid_len } => {
                    if !opts.truncate_corrupt {
                        return Err(RecoverError::CorruptWalTail { gen, valid_len });
                    }
                    wal::truncate_wal(&path, valid_len)?;
                    report.truncated = Some(valid_len);
                }
            }
            records.extend(recs);
        }
        report.replayed = records.len();

        // 3. Fold WAL over snapshot into a consistent image.
        let registered: HashSet<&str> = self.tenants.iter().map(|(n, _)| n.as_str()).collect();
        let mut tenant_spent: HashMap<String, f64> = HashMap::new();
        let mut tenant_reclaimed: HashMap<String, f64> = HashMap::new();
        for t in &snap.tenants {
            if !registered.contains(t.name.as_str()) {
                return Err(RecoverError::UnknownTenant(t.name.clone()));
            }
            tenant_spent.insert(t.name.clone(), t.spent);
            tenant_reclaimed.insert(t.name.clone(), t.reclaimed);
        }
        let mut live: HashMap<u64, SessionImage> = HashMap::new();
        let mut dataset_of: HashMap<u64, String> = HashMap::new();
        for s in &snap.sessions {
            if !registered.contains(s.dataset.as_str()) {
                return Err(RecoverError::UnknownTenant(s.dataset.clone()));
            }
            dataset_of.insert(s.id, s.dataset.clone());
            live.insert(s.id, s.clone());
        }
        let mut next_session = snap.next_session.max(self.session_id_base + 1);
        let mut mutations: Vec<MutationImage> = Vec::with_capacity(snap.mutations.len());
        for m in &snap.mutations {
            if !registered.contains(m.dataset.as_str()) {
                return Err(RecoverError::UnknownTenant(m.dataset.clone()));
            }
            mutations.push(m.clone());
        }

        for record in records {
            match record {
                WalRecord::Open {
                    session,
                    dataset,
                    allowance,
                } => {
                    if !registered.contains(dataset.as_str()) {
                        return Err(RecoverError::UnknownTenant(dataset));
                    }
                    dataset_of.insert(session, dataset.clone());
                    live.insert(
                        session,
                        SessionImage {
                            id: session,
                            dataset,
                            allowance,
                            spent: 0.0,
                        },
                    );
                    next_session = next_session.max(session + 1);
                }
                WalRecord::Debit { session, epsilon } => {
                    // The debit may be ordered after the session's close
                    // (two racing appenders inside one generation); the
                    // tenant attribution still holds via `dataset_of`.
                    let Some(dataset) = dataset_of.get(&session) else {
                        return Err(RecoverError::UnknownSession(session));
                    };
                    *tenant_spent.entry(dataset.clone()).or_insert(0.0) += epsilon;
                    if let Some(img) = live.get_mut(&session) {
                        img.spent += epsilon;
                    }
                }
                WalRecord::Deny { session } => {
                    if !dataset_of.contains_key(&session) {
                        return Err(RecoverError::UnknownSession(session));
                    }
                }
                WalRecord::Close { session, released } => {
                    let Some(dataset) = dataset_of.get(&session) else {
                        return Err(RecoverError::UnknownSession(session));
                    };
                    live.remove(&session);
                    *tenant_reclaimed.entry(dataset.clone()).or_insert(0.0) += released;
                }
                WalRecord::Mutate {
                    dataset,
                    insert,
                    epoch_after,
                    rows,
                } => {
                    if !registered.contains(dataset.as_str()) {
                        return Err(RecoverError::UnknownTenant(dataset));
                    }
                    mutations.push(MutationImage {
                        dataset,
                        insert,
                        epoch_after,
                        rows,
                    });
                }
            }
        }

        // 3½. Replay row mutations, oldest first (snapshot journal, then
        // WAL records — disjoint by construction: the journal covers
        // exactly the folded generations). The epoch gate makes replay
        // idempotent: a paged store that already committed a record (it
        // is the durable copy; the apply ran before the WAL append)
        // reports an epoch at or past `epoch_after` and the record is
        // skipped, while a resident tenant starts from its
        // builder-supplied base at epoch 0, so every record applies —
        // in order, through the same deterministic mutation path the
        // live call took, reproducing the exact pre-crash rows and
        // epoch.
        let mut journal: Vec<MutationImage> = Vec::new();
        for m in mutations {
            let tenant = self
                .tenants
                .iter()
                .find(|(n, _)| *n == m.dataset)
                .map(|(_, t)| t)
                .expect("validated above");
            if m.epoch_after > tenant.engine.epoch() {
                let result = if m.insert {
                    tenant.engine.insert_rows(&m.rows)
                } else {
                    tenant.engine.delete_rows(&m.rows)
                };
                result.map_err(|source| RecoverError::MutationReplay {
                    tenant: m.dataset.clone(),
                    source,
                })?;
            }
            if tenant.engine.with_engine(|e| e.dataset_epoch().is_none()) {
                journal.push(m);
            }
        }

        // 4. Re-impose the ledgers on the fresh engines.
        for (name, tenant) in &self.tenants {
            let spent = tenant_spent.get(name).copied().unwrap_or(0.0);
            tenant
                .engine
                .import_ledger(spent)
                .map_err(|source| RecoverError::LedgerOverflow {
                    tenant: name.clone(),
                    source,
                })?;
            *lockx::lock(&tenant.reclaimed) = tenant_reclaimed.get(name).copied().unwrap_or(0.0);
            report.tenants.push((name.clone(), spent));
        }

        // 5. Re-open live sessions mid-slice, activity reset to now.
        let now = self.clock.now_millis();
        let mut sessions = HashMap::with_capacity(live.len());
        for (id, img) in live {
            let tenant = self
                .tenants
                .iter()
                .find(|(n, _)| *n == img.dataset)
                .map(|(_, t)| t)
                .expect("validated above");
            sessions.insert(
                id,
                SessionEntry {
                    dataset: img.dataset,
                    session: tenant.engine.session_with_spent(img.allowance, img.spent),
                    last_active: Arc::new(AtomicU64::new(now)),
                    in_flight: Arc::new(AtomicU64::new(0)),
                },
            );
        }
        report.sessions = sessions.len();

        // 6. Open the next WAL generation and assemble the state.
        let all_gens = snapshot::list_wal_gens(&opts.dir)?;
        let new_gen = all_gens
            .last()
            .copied()
            .unwrap_or(snap.covered_gen)
            .max(snap.covered_gen)
            + 1;
        let writer = WalWriter::open(&snapshot::wal_path(&opts.dir, new_gen), opts.sync)?;
        let state = ServerState {
            tenants: self.tenants,
            cache: self.cache,
            sessions: RwLock::new(sessions),
            next_session: AtomicU64::new(next_session),
            session_id_base: self.session_id_base,
            clock: self.clock,
            ttl_millis: self
                .ttl
                .map(|t| u64::try_from(t.as_millis()).unwrap_or(u64::MAX)),
            admin_token: self.admin_token,
            persist: Some(Persist {
                dir: opts.dir,
                snapshot_every: opts.snapshot_every.max(1),
                sync: opts.sync,
                _lock: lock,
                inner: Mutex::new(PersistInner {
                    writer,
                    gen: new_gen,
                    records_since_snapshot: 0,
                    append_seq: 0,
                }),
                sync_gate: SyncGate::default(),
                sync_peers: AtomicU64::new(1),
                #[cfg(any(test, feature = "sched"))]
                fail_appends: AtomicU64::new(0),
            }),
            ledger_gate: RwLock::new(()),
            mutation_journal: Mutex::new(journal),
            mutate_serial: Mutex::new(()),
        };
        // 7. Fold everything just replayed into a fresh snapshot, so the
        // next crash replays from here, not from the beginning of time.
        state.compact()?;
        Ok((state, report))
    }
}

/// Handle for the background TTL reaper thread.
#[derive(Debug)]
pub struct ReaperHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReaperHandle {
    /// Asks the reaper to exit and waits for it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

/// Spawns the TTL reaper: every `interval` it expires sessions idle past
/// the state's TTL. Useless (but harmless) without a configured TTL.
pub fn start_reaper(state: Arc<ServerState>, interval: Duration) -> ReaperHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let thread = std::thread::spawn(move || loop {
        std::thread::park_timeout(interval);
        if flag.load(Ordering::SeqCst) {
            return;
        }
        // I/O trouble is retried next tick; sessions stay live until
        // their close is durably logged.
        let _ = state.reap_expired();
    });
    ReaperHandle {
        stop,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use apex_data::{Attribute, Domain, Predicate, Schema, Value};
    use apex_query::ExplorationQuery;

    fn tiny_dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange { min: 0, max: 7 },
        )])
        .unwrap();
        let mut d = Dataset::empty(schema);
        for i in 0..8_i64 {
            d.push(vec![Value::Int(i)]).unwrap();
        }
        d
    }

    fn histogram() -> ExplorationQuery {
        ExplorationQuery::wcq((0..8).map(|i| Predicate::eq("v", i as i64)).collect())
    }

    use crate::testutil::temp_dir;

    #[test]
    fn tenants_share_one_cache_with_per_tenant_scopes() {
        let state = ServerState::builder(32)
            .dataset("a", tiny_dataset(), EngineConfig::default())
            .dataset("b", tiny_dataset(), EngineConfig::default())
            .build();
        assert_eq!(state.tenants().len(), 2);
        let q = apex_query::ExplorationQuery::wcq(
            (0..8)
                .map(|i| apex_data::Predicate::eq("v", i as i64))
                .collect(),
        );
        let acc = apex_query::AccuracySpec::new(5.0, 0.01).unwrap();
        state.tenant("a").unwrap().engine.submit(&q, &acc).unwrap();
        state.tenant("b").unwrap().engine.submit(&q, &acc).unwrap();
        // Tenant b's identical structure is warmed by tenant a: global
        // stats see both scopes, b's own scope shows hits but no build.
        let global = state.cache().stats();
        assert!(global.hits > 0 && global.misses > 0);
        let b_local = state.tenant("b").unwrap().cache.local_stats();
        assert_eq!(b_local.misses, 0, "{b_local:?}");
        assert!(b_local.hits > 0);
    }

    #[test]
    fn sessions_register_and_resolve() {
        let state = ServerState::builder(8)
            .dataset("a", tiny_dataset(), EngineConfig::default())
            .build();
        assert_eq!(state.create_session("nope", 0.5).unwrap(), None);
        let id = state.create_session("a", 0.5).unwrap().unwrap();
        assert_eq!(state.session_count(), 1);
        assert_eq!(state.session_count_for("a"), 1);
        assert_eq!(state.session_count_for("b"), 0);
        let allowance = state.with_session(id, |s| s.session.allowance()).unwrap();
        assert_eq!(allowance, 0.5);
        assert!(state.with_session(id + 1, |_| ()).is_none());
        assert_eq!(state.session_status(id), SessionStatus::Live);
        assert_eq!(state.session_status(id + 1), SessionStatus::Unknown);
    }

    #[test]
    fn expiry_tombstones_and_reclaims_exactly_once() {
        let clock = ManualClock::new();
        let state = ServerState::builder(8)
            .dataset("a", tiny_dataset(), EngineConfig::default())
            .clock(Arc::new(clock.clone()))
            .session_ttl(Duration::from_millis(100))
            .build();
        let id = state.create_session("a", 0.5).unwrap().unwrap();
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        match state.submit(id, &histogram(), &acc).unwrap() {
            SubmitOutcome::Response(r) => assert!(!r.is_denied()),
            other => panic!("expected an answer, got {other:?}"),
        }
        let spent = state.with_session(id, |s| s.session.spent()).unwrap();
        assert!(spent > 0.0);

        // Not yet idle long enough: the reaper leaves it alone.
        clock.advance(100);
        assert!(state.reap_expired().unwrap().is_empty());
        // One more tick pushes it past the TTL.
        clock.advance(1);
        let reaped = state.reap_expired().unwrap();
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[0].0, id);
        assert!((reaped[0].1 - (0.5 - spent)).abs() < 1e-12);
        assert_eq!(state.session_status(id), SessionStatus::Expired);
        assert_eq!(state.session_count(), 0);
        assert_eq!(state.expired_count(), 1);
        let reclaimed = state.tenant("a").unwrap().reclaimed();
        assert!((reclaimed - (0.5 - spent)).abs() < 1e-12);

        // Second reap and a direct re-expire both release nothing more.
        assert!(state.reap_expired().unwrap().is_empty());
        assert_eq!(state.expire_session(id).unwrap(), None);
        assert_eq!(state.tenant("a").unwrap().reclaimed(), reclaimed);
        // Submitting to the corpse reports Gone, not NoSuchSession.
        assert!(matches!(
            state.submit(id, &histogram(), &acc).unwrap(),
            SubmitOutcome::Gone
        ));
    }

    #[test]
    fn submissions_refresh_the_idle_clock() {
        let clock = ManualClock::new();
        let state = ServerState::builder(8)
            .dataset("a", tiny_dataset(), EngineConfig::default())
            .clock(Arc::new(clock.clone()))
            .session_ttl(Duration::from_millis(50))
            .build();
        let id = state.create_session("a", 0.5).unwrap().unwrap();
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        for _ in 0..4 {
            clock.advance(40); // would expire without the refresh below
            let _ = state.submit(id, &histogram(), &acc).unwrap();
            assert!(state.reap_expired().unwrap().is_empty());
        }
        clock.advance(51);
        assert_eq!(state.reap_expired().unwrap().len(), 1);
    }

    #[test]
    fn in_flight_sessions_are_never_reaped() {
        let clock = ManualClock::new();
        let state = ServerState::builder(8)
            .dataset("a", tiny_dataset(), EngineConfig::default())
            .clock(Arc::new(clock.clone()))
            .session_ttl(Duration::from_millis(100))
            .build();
        let id = state.create_session("a", 0.5).unwrap().unwrap();
        // Pin the session exactly as submit does for its in-flight span.
        let (_session, _dataset, pin) = state.pin_session(id).expect("session is live");
        // Way past the TTL: an unpinned session would be reaped, the
        // pinned one must survive (the mid-flight-expiry bug).
        clock.advance(1_000);
        assert!(
            state.reap_expired().unwrap().is_empty(),
            "a session with a query in flight must never be reaped"
        );
        assert_eq!(state.session_status(id), SessionStatus::Live);
        // Completion re-stamps the idle clock before unpinning…
        drop(pin);
        assert!(
            state.reap_expired().unwrap().is_empty(),
            "the completion re-stamp must reset idleness"
        );
        // …and only genuine idleness after completion expires it.
        clock.advance(101);
        assert_eq!(state.reap_expired().unwrap().len(), 1);
        assert_eq!(state.session_status(id), SessionStatus::Expired);
    }

    #[test]
    fn failed_wal_append_charges_nothing_and_recovery_agrees() {
        let dir = temp_dir("walfault");
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        let mk = || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());
        let opts = || PersistOptions {
            sync: false,
            ..PersistOptions::new(&dir)
        };
        let spent_final = {
            let (state, _) = mk().build_recovered(opts()).unwrap();
            let id = state.create_session("a", 0.9).unwrap().unwrap();
            state.submit(id, &histogram(), &acc).unwrap();
            let spent = state.tenant("a").unwrap().engine.spent();
            let answered = state.tenant("a").unwrap().engine.export_ledger().answered;
            assert!(spent > 0.0);

            // Injected append failure at the commit point: the charge
            // must be durable-or-nothing — neither the engine ledger,
            // nor the slice, nor the transcript may move.
            state.inject_wal_faults(1);
            match state.submit(id, &histogram(), &acc) {
                Err(SubmitError::Wal(_)) => {}
                other => panic!("injected fault must surface as a WAL error, got {other:?}"),
            }
            let tenant = state.tenant("a").unwrap();
            assert_eq!(
                tenant.engine.spent(),
                spent,
                "engine charged on a failed append"
            );
            assert_eq!(
                state.with_session(id, |s| s.session.spent()).unwrap(),
                spent,
                "slice charged on a failed append"
            );
            assert_eq!(tenant.engine.export_ledger().answered, answered);

            // The writer healed: the session keeps answering.
            match state.submit(id, &histogram(), &acc).unwrap() {
                SubmitOutcome::Response(r) => assert!(!r.is_denied()),
                other => panic!("unexpected: {other:?}"),
            }
            state.tenant("a").unwrap().engine.spent()
            // Dropped without compaction: recovery replays the WAL.
        };

        // On restart the recovered ledger equals the in-memory one
        // exactly — before the fix, a failed append left in-memory spent
        // above durable spent, silently refilling B across a restart.
        let (state, _) = mk().build_recovered(opts()).unwrap();
        let recovered = state.tenant("a").unwrap().engine.spent();
        assert!(
            (recovered - spent_final).abs() < 1e-9,
            "recovered {recovered} diverged from acked {spent_final}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_locks_recover_and_the_shard_keeps_serving() {
        // A handler panicking while holding any of the std locks
        // poisons it. Before the `lockx` recovery every later request
        // on the shard re-panicked on the poison — one bad request
        // cascading into a dead shard. Poison every lock a request
        // path takes, then prove the full surface keeps serving.
        apex_core::sched::silence_simulated_crashes();
        let clock = ManualClock::new();
        let state = ServerState::builder(8)
            .dataset("a", tiny_dataset(), EngineConfig::default())
            .clock(Arc::new(clock.clone()))
            .session_ttl(Duration::from_millis(100))
            .build();
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        let id = state.create_session("a", 1.0).unwrap().unwrap();

        // Each closure grabs its lock and dies holding it.
        let poison = |f: &(dyn Fn() + Sync)| {
            std::thread::scope(|s| {
                let _ = s.spawn(f).join();
            });
        };
        poison(&|| {
            let _g = state.sessions.write().unwrap();
            std::panic::panic_any(apex_core::sched::SimulatedCrash);
        });
        poison(&|| {
            let _g = state.ledger_gate.write().unwrap();
            std::panic::panic_any(apex_core::sched::SimulatedCrash);
        });
        poison(&|| {
            let _g = state.tenant("a").unwrap().reclaimed.lock().unwrap();
            std::panic::panic_any(apex_core::sched::SimulatedCrash);
        });
        assert!(state.sessions.is_poisoned(), "setup: write poison failed");
        assert!(state.ledger_gate.is_poisoned());

        // Every request path crosses at least one poisoned lock now.
        match state.submit(id, &histogram(), &acc).unwrap() {
            SubmitOutcome::Response(r) => assert!(!r.is_denied()),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(state.list_sessions().len(), 1);
        assert!(matches!(state.session_status(id), SessionStatus::Live));
        let id2 = state.create_session("a", 0.5).unwrap().unwrap();
        assert_eq!(state.tenant("a").unwrap().reclaimed(), 0.0);
        assert!(state.expire_session(id2).unwrap().is_some());
        assert!(state.tenant("a").unwrap().reclaimed() > 0.0);
        clock.advance(101);
        assert_eq!(state.reap_expired().unwrap().len(), 1);
        assert!(matches!(state.session_status(id), SessionStatus::Expired));
    }

    #[test]
    fn state_recovers_wal_over_snapshot_across_restarts() {
        let dir = temp_dir("recover");
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        let builder =
            || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());

        let (spent_before, id) = {
            let (state, report) = builder()
                .build_recovered(PersistOptions {
                    sync: false,
                    ..PersistOptions::new(&dir)
                })
                .unwrap();
            assert_eq!(report.replayed, 0);
            let id = state.create_session("a", 0.5).unwrap().unwrap();
            for _ in 0..3 {
                state.submit(id, &histogram(), &acc).unwrap();
            }
            (state.tenant("a").unwrap().engine.spent(), id)
            // Dropped without compaction: recovery must come from the WAL.
        };
        assert!(spent_before > 0.0);

        let (state, report) = builder()
            .build_recovered(PersistOptions {
                sync: false,
                ..PersistOptions::new(&dir)
            })
            .unwrap();
        assert_eq!(report.replayed, 4, "open + three submissions");
        assert_eq!(report.sessions, 1);
        let spent_after = state.tenant("a").unwrap().engine.spent();
        assert!((spent_after - spent_before).abs() < 1e-9);
        // The restored session resumes mid-slice with its old spend.
        let session_spent = state.with_session(id, |s| s.session.spent()).unwrap();
        assert!((session_spent - spent_before).abs() < 1e-9);
        // Fresh ids never collide with recovered ones.
        let new_id = state.create_session("a", 0.1).unwrap().unwrap();
        assert!(new_id > id);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutations_on_resident_tenants_recover_across_restart_and_compaction() {
        let dir = temp_dir("mutrec");
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        let mk = || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());
        let opts = || PersistOptions {
            sync: false,
            snapshot_every: 2, // force the journal through a snapshot
            ..PersistOptions::new(&dir)
        };

        let (epoch, applied, rows, spent) = {
            let (state, _) = mk().build_recovered(opts()).unwrap();
            match state
                .mutate_rows("a", true, &[vec![Value::Int(3)], vec![Value::Int(5)]])
                .unwrap()
            {
                MutateOutcome::Applied(d) => {
                    assert_eq!(d.inserted.len(), 2);
                    assert_eq!(d.epoch, 1);
                }
                other => panic!("expected Applied, got {other:?}"),
            }
            // One real match, one silent no-op: the epoch still bumps,
            // so replay must reproduce the no-op too.
            match state
                .mutate_rows("a", false, &[vec![Value::Int(6)], vec![Value::Int(6)]])
                .unwrap()
            {
                MutateOutcome::Applied(d) => {
                    assert_eq!(d.deleted.len(), 1);
                    assert_eq!(d.epoch, 2);
                }
                other => panic!("expected Applied, got {other:?}"),
            }
            // Interleave queries so compaction runs with the journal live.
            let id = state.create_session("a", 0.9).unwrap().unwrap();
            for _ in 0..6 {
                state.submit(id, &histogram(), &acc).unwrap();
            }
            let t = state.tenant("a").unwrap();
            (
                t.engine.epoch(),
                t.engine.mutations_applied(),
                t.engine.with_engine(|e| e.dataset_scan_rows()),
                t.engine.spent(),
            )
        };
        assert_eq!((epoch, applied), (2, 2));
        assert_eq!(rows, 8 + 2 - 1);

        let (state, _) = mk().build_recovered(opts()).unwrap();
        let t = state.tenant("a").unwrap();
        assert_eq!(t.engine.epoch(), epoch, "replayed epoch diverged");
        assert_eq!(t.engine.mutations_applied(), applied);
        assert_eq!(t.engine.with_engine(|e| e.dataset_scan_rows()), rows);
        assert!((t.engine.spent() - spent).abs() < 1e-9);
        // Mutating an unknown tenant reports, never errors.
        assert!(matches!(
            state.mutate_rows("ghost", true, &[vec![Value::Int(1)]]),
            Ok(MutateOutcome::NoSuchDataset)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_mutation_append_surfaces_and_the_writer_heals() {
        let dir = temp_dir("mutfault");
        let mk = || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());
        let opts = || PersistOptions {
            sync: false,
            ..PersistOptions::new(&dir)
        };
        let (state, _) = mk().build_recovered(opts()).unwrap();

        // Apply-then-log: the injected append failure surfaces as a WAL
        // error (the client sees 500, no ack), with the live engine one
        // epoch ahead of disk until restart — the documented window.
        state.inject_wal_faults(1);
        match state.mutate_rows("a", true, &[vec![Value::Int(1)]]) {
            Err(SubmitError::Wal(_)) => {}
            other => panic!("injected fault must surface as a WAL error, got {other:?}"),
        }
        assert_eq!(state.tenant("a").unwrap().engine.epoch(), 1);

        // The writer healed: the next mutation is acked and durable.
        match state
            .mutate_rows("a", true, &[vec![Value::Int(2)]])
            .unwrap()
        {
            MutateOutcome::Applied(d) => assert_eq!(d.epoch, 2),
            other => panic!("expected Applied, got {other:?}"),
        }
        drop(state);

        // Recovery replays only acked mutations; the un-acked epoch-1
        // batch is gone, and the acked epoch-2 batch (journaled with its
        // pre-crash epoch) re-applies through the epoch gate.
        let (state, _) = mk().build_recovered(opts()).unwrap();
        let t = state.tenant("a").unwrap();
        assert_eq!(t.engine.mutations_applied(), 1, "only the acked batch");
        assert_eq!(t.engine.with_engine(|e| e.dataset_scan_rows()), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_folds_the_wal_and_recovery_agrees() {
        let dir = temp_dir("compact");
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        let mk = || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());
        let opts = || PersistOptions {
            sync: false,
            snapshot_every: 3, // compact aggressively
            ..PersistOptions::new(&dir)
        };

        let spent_before = {
            let (state, _) = mk().build_recovered(opts()).unwrap();
            let id = state.create_session("a", 0.9).unwrap().unwrap();
            for _ in 0..8 {
                state.submit(id, &histogram(), &acc).unwrap();
            }
            state.expire_session(id).unwrap().unwrap();
            state.tenant("a").unwrap().engine.spent()
        };
        // Several compactions ran; only recent generations remain.
        let gens = snapshot::list_wal_gens(&dir).unwrap();
        assert!(
            gens.len() <= 2,
            "pruning must bound the WAL chain: {gens:?}"
        );

        let (state, _) = mk().build_recovered(opts()).unwrap();
        assert!((state.tenant("a").unwrap().engine.spent() - spent_before).abs() < 1e-9);
        assert_eq!(state.session_count(), 0);
        assert_eq!(state.expired_count(), 1, "tombstones survive restarts");
        assert!(state.tenant("a").unwrap().reclaimed() > 0.0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_dir_refuses_a_second_live_writer() {
        let dir = temp_dir("lock");
        let mk = || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());
        let opts = || PersistOptions {
            sync: false,
            ..PersistOptions::new(&dir)
        };
        let (state, _) = mk().build_recovered(opts()).unwrap();
        // A second writer on the same dir (same process is the most
        // direct double-writer hazard) must refuse while the first
        // lives.
        match mk().build_recovered(opts()) {
            Err(RecoverError::DirLocked { holder, .. }) => {
                assert_eq!(holder, Some(std::process::id()));
            }
            other => panic!("second writer must refuse, got {other:?}"),
        }
        drop(state);
        // Released on drop: recovery proceeds again…
        let (state, _) = mk().build_recovered(opts()).unwrap();
        drop(state);
        // …and a stale lock from a dead writer is stolen, because a
        // hard crash is exactly the case recovery exists for.
        std::fs::write(dir.join("lock"), "999999999").unwrap();
        let _ = mk()
            .build_recovered(opts())
            .expect("stale lock must be stolen");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_rotation_never_strands_acked_records() {
        // Regression: compaction must open the next WAL generation
        // BEFORE committing the snapshot that covers the current one.
        // With the reverse order, a failed open after a committed
        // snapshot would leave later acked appends in a generation
        // recovery is told to ignore — silently refilling B.
        let dir = temp_dir("rotfail");
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        let mk = || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());
        let opts = || PersistOptions {
            sync: false,
            ..PersistOptions::new(&dir)
        };
        let (spent_live, blocked_gen) = {
            let (state, _) = mk().build_recovered(opts()).unwrap();
            let cur = *snapshot::list_wal_gens(&dir).unwrap().last().unwrap();
            // Plant a directory where the next generation would go, so
            // rotation's WalWriter::open must fail.
            std::fs::create_dir(snapshot::wal_path(&dir, cur + 1)).unwrap();
            let id = state.create_session("a", 0.9).unwrap().unwrap();
            state.submit(id, &histogram(), &acc).unwrap();
            assert!(state.compact().is_err(), "blocked rotation must error");
            // Appends after the failed compaction are still acked…
            state.submit(id, &histogram(), &acc).unwrap();
            (state.tenant("a").unwrap().engine.spent(), cur + 1)
        };
        assert!(spent_live > 0.0);
        // …and must all be recoverable once the blockage clears.
        std::fs::remove_dir(snapshot::wal_path(&dir, blocked_gen)).unwrap();
        let (state, _) = mk().build_recovered(opts()).unwrap();
        let recovered = state.tenant("a").unwrap().engine.spent();
        assert!(
            (recovered - spent_live).abs() < 1e-9,
            "acked records stranded by a failed rotation: {recovered} vs {spent_live}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_behind_a_stray_empty_generation_still_recovers() {
        // Regression: a rotation that failed after opening wal-(G+1)
        // but before committing its snapshot leaves an empty stray
        // generation. A later crash mid-append into G must still read
        // as a truncatable torn tail, not an unrecoverable "mid-log"
        // corruption (G is the last generation holding anything).
        let dir = temp_dir("stray");
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        let mk = || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());
        let opts = || PersistOptions {
            sync: false,
            ..PersistOptions::new(&dir)
        };
        let spent_live = {
            let (state, _) = mk().build_recovered(opts()).unwrap();
            let id = state.create_session("a", 0.9).unwrap().unwrap();
            state.submit(id, &histogram(), &acc).unwrap();
            state.tenant("a").unwrap().engine.spent()
        };
        let gen = *snapshot::list_wal_gens(&dir).unwrap().last().unwrap();
        // The stray: a magic-only next generation.
        std::fs::write(snapshot::wal_path(&dir, gen + 1), wal::WAL_MAGIC).unwrap();
        // The crash artifact: half a frame on the active generation.
        let path = snapshot::wal_path(&dir, gen);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0]);
        std::fs::write(&path, &bytes).unwrap();

        let (state, report) = mk().build_recovered(opts()).unwrap();
        assert!(report.truncated.is_some(), "the torn tail was cut");
        assert!(
            (state.tenant("a").unwrap().engine.spent() - spent_live).abs() < 1e-9,
            "every acked record behind the stray must replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_refuses_corruption_but_truncates_torn_tails() {
        let dir = temp_dir("tails");
        let acc = AccuracySpec::new(25.0, 0.05).unwrap();
        let mk = || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());
        let opts = || PersistOptions {
            sync: false,
            ..PersistOptions::new(&dir)
        };
        {
            let (state, _) = mk().build_recovered(opts()).unwrap();
            let id = state.create_session("a", 0.5).unwrap().unwrap();
            state.submit(id, &histogram(), &acc).unwrap();
        }
        let gen = *snapshot::list_wal_gens(&dir).unwrap().last().unwrap();
        let path = snapshot::wal_path(&dir, gen);

        // Torn tail (half a record): recovered silently, with a report.
        let clean = std::fs::read(&path).unwrap();
        let mut torn = clean.clone();
        torn.extend_from_slice(&clean[8..15]);
        std::fs::write(&path, &torn).unwrap();
        let (state, report) = mk().build_recovered(opts()).unwrap();
        assert_eq!(report.truncated, Some(clean.len() as u64));
        let spent = state.tenant("a").unwrap().engine.spent();
        drop(state);

        // Corrupt tail (bit flip in the last record): refused by
        // default…
        let gen = *snapshot::list_wal_gens(&dir).unwrap().last().unwrap();
        let path = snapshot::wal_path(&dir, gen);
        {
            let (state, _) = mk().build_recovered(opts()).unwrap();
            let id = state.create_session("a", 0.1).unwrap().unwrap();
            let _ = state.submit(id, &histogram(), &acc);
            drop(state);
            let _ = path; // the new generation is the one to damage
        }
        let gen = *snapshot::list_wal_gens(&dir).unwrap().last().unwrap();
        let path = snapshot::wal_path(&dir, gen);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match mk().build_recovered(opts()) {
            Err(RecoverError::CorruptWalTail { .. }) => {}
            other => panic!("corrupt tail must refuse by default, got {other:?}"),
        }
        // …and truncated at the last valid record with explicit consent.
        let (state, report) = mk()
            .build_recovered(PersistOptions {
                truncate_corrupt: true,
                ..opts()
            })
            .unwrap();
        assert!(report.truncated.is_some());
        // The damaged record was dropped, never partially replayed: the
        // engine's ledger still matches a valid prefix (≤ the pre-damage
        // spend, and exactly the spend of the surviving records).
        assert!(state.tenant("a").unwrap().engine.spent() <= spent + 1e-9);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_refuses_overspent_and_unknown_state() {
        let dir = temp_dir("refuse");
        std::fs::create_dir_all(&dir).unwrap();
        // A hand-written snapshot claiming more spend than B = 1.
        let snap = Snapshot {
            covered_gen: 0,
            next_session: 5,
            tenants: vec![TenantLedger {
                name: "a".into(),
                spent: 42.0,
                reclaimed: 0.0,
            }],
            sessions: vec![],
            mutations: vec![],
        };
        snapshot::write_snapshot(&dir, &snap).unwrap();
        let mk = || ServerState::builder(8).dataset("a", tiny_dataset(), EngineConfig::default());
        match mk().build_recovered(PersistOptions::new(&dir)) {
            Err(RecoverError::LedgerOverflow { tenant, .. }) => assert_eq!(tenant, "a"),
            other => panic!("overspent store must refuse, got {other:?}"),
        }
        // A snapshot naming an unregistered tenant refuses too.
        let snap = Snapshot {
            tenants: vec![TenantLedger {
                name: "ghost".into(),
                spent: 0.1,
                reclaimed: 0.0,
            }],
            ..Default::default()
        };
        snapshot::write_snapshot(&dir, &snap).unwrap();
        match mk().build_recovered(PersistOptions::new(&dir)) {
            Err(RecoverError::UnknownTenant(name)) => assert_eq!(name, "ghost"),
            other => panic!("unknown tenant must refuse, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
