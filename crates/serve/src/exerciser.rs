//! Deterministic schedule exerciser for the serving stack (ISSUE 9).
//!
//! [`apex_core::sched`] supplies the mechanics — yield points, traces,
//! schedule enumeration, crash injection. This module supplies the
//! *world*: a real [`ServerState`] over a real WAL directory, a set of
//! scripted logical threads ([`Op`] sequences), and the invariant
//! checker that every schedule must satisfy:
//!
//! * **Budget** — engine `spent ≤ B` at every step and after recovery.
//! * **Acked accounting** — between steps, live `spent` equals the sum
//!   of ε across *acked* answers, exactly. A WAL append that failed or
//!   a commit that denied charges nothing.
//! * **Grant conservation** — `Σ granted allowances = Σ live
//!   allowances + spend of closed sessions + reclaimed`, at every step
//!   and after recovery. Closing, reaping, compaction and crashes move
//!   budget between those buckets but never create or destroy it.
//! * **Per-answer bound** — every acked answer has `ε ≤ εᵘ`.
//! * **Crash recovery** — after a kill at *any* yield point, recovered
//!   `spent` is at least the acked sum (no acked charge forgotten) and
//!   at most acked + the one in-flight commit's `εᵘ` (a durable-but-
//!   unacked record may legitimately be replayed; it can never exceed
//!   the worst case the evaluate phase fixed).
//!
//! Schedules are executed one step at a time on one real thread, so a
//! failure prints a fully replayable report: scenario name, schedule,
//! crash point, `(seed, case)` for random runs, and the yield trace.
//! `docs/CONCURRENCY.md` documents the yield-point map and how to turn
//! a report back into a pinned regression test.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use apex_core::sched::{self, RngCore as _, SeedableRng, SimulatedCrash, StdRng, TraceHook};
use apex_core::{ApexEngine, EngineConfig, EngineResponse, Mode, TranslatorCache};
use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
use apex_query::{AccuracySpec, ExplorationQuery};

use crate::clock::ManualClock;
use crate::state::{
    PersistOptions, ServerState, ServerStateBuilder, SubmitError, SubmitInFlight, SubmitOutcome,
    SubmitPhase,
};

/// The one tenant every world serves.
const TENANT: &str = "t";
/// Session idle TTL in the world's manual clock.
const TTL_MS: u64 = 100;
/// Float slack for ledger comparisons (sums of ≤ a handful of ε).
const EPS: f64 = 1e-9;
/// Fixed seed for the random-schedule gate; failures print the case.
pub const GATE_SEED: u64 = 0xA9E5_5EED;

/// One scripted step of a logical thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Evaluate phase of submission slot `q` (pin + speculate).
    Evaluate(usize),
    /// Commit phase of submission slot `q` (gate + append + charge).
    Commit(usize),
    /// Admin close of the world's session.
    Close,
    /// Advance the clock past the TTL, then run the reaper.
    Reap,
    /// Snapshot + WAL-generation rotation.
    Compact,
    /// Arm the WAL to refuse the next append.
    WalFault,
    /// Insert one row into the tenant's live dataset (bumps the epoch;
    /// any in-flight commit that evaluated earlier must refuse stale).
    Mutate,
    /// Kill the process here (schedule truncation; the yield-point
    /// crash sweep covers kills *inside* the other ops).
    Crash,
}

/// A named set of logical threads; the exerciser runs order-preserving
/// shuffles of them.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: &'static str,
    pub threads: Vec<Vec<Op>>,
    /// Inject the charge-before-append ordering bug (canary).
    pub canary: bool,
}

impl Scenario {
    fn counts(&self) -> Vec<usize> {
        self.threads.iter().map(Vec::len).collect()
    }

    /// Number of submission slots the ops reference.
    fn slots(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .filter_map(|op| match op {
                Op::Evaluate(q) | Op::Commit(q) => Some(q + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Two concurrent queriers racing an admin close and the reaper.
pub fn queriers_close_reap() -> Scenario {
    Scenario {
        name: "queriers-close-reap",
        threads: vec![
            vec![Op::Evaluate(0), Op::Commit(0)],
            vec![Op::Evaluate(1), Op::Commit(1)],
            vec![Op::Close],
            vec![Op::Reap],
        ],
        canary: false,
    }
}

/// Two concurrent queriers racing compaction and the reaper.
pub fn queriers_compact() -> Scenario {
    Scenario {
        name: "queriers-compact",
        threads: vec![
            vec![Op::Evaluate(0), Op::Commit(0)],
            vec![Op::Evaluate(1), Op::Commit(1)],
            vec![Op::Compact],
            vec![Op::Reap],
        ],
        canary: false,
    }
}

/// A WAL fault armed at every possible point relative to two
/// submissions — the scenario that catches append/charge ordering bugs
/// without any crash at all.
pub fn fault_commit() -> Scenario {
    Scenario {
        name: "fault-commit",
        threads: vec![
            vec![Op::Evaluate(0), Op::Commit(0)],
            vec![Op::WalFault],
            vec![Op::Evaluate(1), Op::Commit(1)],
        ],
        canary: false,
    }
}

/// A querier racing an admin close, killed at every schedule position.
pub fn close_crash() -> Scenario {
    Scenario {
        name: "close-crash",
        threads: vec![
            vec![Op::Evaluate(0), Op::Commit(0)],
            vec![Op::Close],
            vec![Op::Crash],
        ],
        canary: false,
    }
}

/// Two queriers racing a live row mutation (ISSUE 10): a commit whose
/// evaluate straddled the mutation must refuse as epoch-stale and
/// charge nothing; one that ordered cleanly charges exactly once.
pub fn mutate_racing_queriers() -> Scenario {
    Scenario {
        name: "mutate-racing-queriers",
        threads: vec![
            vec![Op::Evaluate(0), Op::Commit(0)],
            vec![Op::Mutate],
            vec![Op::Evaluate(1), Op::Commit(1)],
        ],
        canary: false,
    }
}

/// A mutation racing an armed WAL fault and compaction: the fault may
/// refuse the mutation's own append (applied live, never durable) or a
/// commit's; compaction must carry the mutation journal through the
/// snapshot either way.
pub fn mutate_fault_compact() -> Scenario {
    Scenario {
        name: "mutate-fault-compact",
        threads: vec![
            vec![Op::Evaluate(0), Op::Commit(0)],
            vec![Op::Mutate],
            vec![Op::WalFault],
            vec![Op::Compact],
        ],
        canary: false,
    }
}

/// [`fault_commit`] with the injected charge-before-append bug: the
/// bounded enumeration must fail on it (exerciser self-test).
pub fn canary_charge_before_log() -> Scenario {
    Scenario {
        canary: true,
        name: "canary-charge-before-log",
        ..fault_commit()
    }
}

/// The scenario pool the random gate draws from.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        queriers_close_reap(),
        queriers_compact(),
        fault_commit(),
        close_crash(),
        mutate_racing_queriers(),
        mutate_fault_compact(),
    ]
}

fn tiny_dataset() -> Dataset {
    let schema = Schema::new(vec![Attribute::new(
        "v",
        Domain::IntRange { min: 0, max: 7 },
    )])
    .unwrap();
    let mut d = Dataset::empty(schema);
    for i in 0..8_i64 {
        d.push(vec![Value::Int(i)]).unwrap();
    }
    d
}

fn histogram() -> ExplorationQuery {
    ExplorationQuery::wcq((0..8).map(|i| Predicate::eq("v", i as i64)).collect())
}

fn accuracy() -> AccuracySpec {
    AccuracySpec::new(25.0, 0.05).unwrap()
}

/// Worst-case loss of one `histogram()`/`accuracy()` submission,
/// probed once per process on a throwaway engine. The world sizes its
/// budget and allowance in these units so every scenario admits the
/// interesting outcomes (answer, deny-at-cap) deterministically.
fn unit_upper() -> f64 {
    static UPPER: OnceLock<f64> = OnceLock::new();
    *UPPER.get_or_init(|| {
        let mut engine = ApexEngine::new(
            tiny_dataset(),
            EngineConfig {
                budget: 1e9,
                mode: Mode::Pessimistic,
                seed: 7,
            },
        );
        engine
            .evaluate(&histogram(), &accuracy(), f64::INFINITY)
            .expect("probe evaluate")
            .epsilon_upper()
            .expect("probe must admit")
    })
}

/// One shared translator cache across every world: mechanism selection
/// for the (only) workload is measured once per process, not once per
/// schedule.
fn shared_cache() -> TranslatorCache {
    static CACHE: OnceLock<TranslatorCache> = OnceLock::new();
    CACHE
        .get_or_init(|| TranslatorCache::with_capacity(64))
        .clone()
}

/// A unique, self-cleaning state directory per run.
fn fresh_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "apex-exerciser-{tag}-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persist_opts(dir: &Path) -> PersistOptions {
    PersistOptions {
        sync: false,
        ..PersistOptions::new(dir)
    }
}

/// A live world under test: one durable tenant, one session, and the
/// model state ([`World::acked`], [`World::granted`]) the invariants
/// compare the real ledger against.
struct World {
    dir: PathBuf,
    clock: ManualClock,
    state: Option<ServerState>,
    session: u64,
    budget: f64,
    /// Σ allowances ever granted (one session in these scenarios).
    granted: f64,
    /// Σ ε across answers acked to the "client" (model ground truth).
    acked: f64,
    /// εᵘ of the commit currently in flight — the only slack recovery
    /// may legitimately show over `acked` after a mid-commit crash.
    inflight_upper: f64,
    /// Mutations acked to the "client" (WAL record durable).
    mut_acked: u64,
    /// Mutations applied live whose append was refused (an armed WAL
    /// fault): visible until the process dies, gone after recovery.
    mut_unlogged: u64,
    /// True while a mutate op is between its apply and its ack — the
    /// only window where recovery may show one mutation over
    /// `mut_acked` (durable-but-unacked record) or silently lose one
    /// (applied-but-unlogged).
    mut_inflight: bool,
    /// Pending evaluate-phase results by submission slot.
    pendings: Vec<Option<SubmitInFlight>>,
}

impl World {
    fn builder(&self) -> ServerStateBuilder {
        ServerState::builder_with_cache(shared_cache())
            .dataset(
                TENANT,
                tiny_dataset(),
                EngineConfig {
                    budget: self.budget,
                    mode: Mode::Pessimistic,
                    seed: 7,
                },
            )
            .clock(Arc::new(self.clock.clone()))
            .session_ttl(Duration::from_millis(TTL_MS))
    }

    fn new(dir: &Path, scenario: &Scenario) -> Result<World, String> {
        // Worlds are single-process and per-run fresh: the dir lock's
        // multi-process settle window would be 40 ms/run of sleep.
        crate::state::set_dirlock_settle_skip(true);
        let upper = unit_upper();
        let mut world = World {
            dir: dir.to_path_buf(),
            clock: ManualClock::new(),
            state: None,
            session: 0,
            // Ten units of budget, so the budget check `spent ≤ B` can
            // only fail through a genuine double charge…
            budget: upper * 10.0,
            granted: 0.0,
            acked: 0.0,
            inflight_upper: 0.0,
            mut_acked: 0,
            mut_unlogged: 0,
            mut_inflight: false,
            pendings: (0..scenario.slots()).map(|_| None).collect(),
        };
        let (state, _) = world
            .builder()
            .build_recovered(persist_opts(dir))
            .map_err(|e| format!("world bring-up failed: {e:?}"))?;
        if scenario.canary {
            state
                .tenant(TENANT)
                .unwrap()
                .engine
                .set_bug_charge_before_log(true);
        }
        // …while the allowance admits exactly one worst-case answer:
        // the second concurrent commit must re-check and deny, which is
        // exactly the path the slice-bound races live on.
        let allowance = upper * 1.5;
        let id = state
            .create_session(TENANT, allowance)
            .map_err(|e| format!("create_session failed: {e}"))?
            .expect("tenant exists");
        world.granted += allowance;
        world.session = id;
        world.state = Some(state);
        Ok(world)
    }

    /// Applies one op. `Err` is an invariant-class failure; panics
    /// (crash injection) unwind through to the driver.
    fn apply(&mut self, op: Op) -> Result<(), String> {
        let state = self.state.as_ref().expect("world is live");
        match op {
            Op::Evaluate(q) => {
                if self.pendings[q].is_some() {
                    return Err(format!("scenario bug: slot {q} already has a pending"));
                }
                match state.submit_evaluate(self.session, &histogram(), &accuracy()) {
                    Ok(SubmitPhase::Pending(flight)) => self.pendings[q] = Some(flight),
                    // Session closed/reaped underneath: a legal outcome,
                    // the slot's commit becomes a no-op.
                    Ok(SubmitPhase::Done(_)) => {}
                    Err(e) => return Err(format!("evaluate failed: {e}")),
                }
            }
            Op::Commit(q) => {
                let Some(flight) = self.pendings[q].take() else {
                    return Ok(());
                };
                self.inflight_upper = flight.epsilon_upper().unwrap_or(0.0);
                match state.submit_commit(flight) {
                    Ok(SubmitOutcome::Response(EngineResponse::Answered(a))) => {
                        // Negated form would hide a NaN ε — check both ways.
                        if a.epsilon.is_nan() || a.epsilon > a.epsilon_upper * (1.0 + EPS) {
                            return Err(format!(
                                "acked ε {} exceeds εᵘ {}",
                                a.epsilon, a.epsilon_upper
                            ));
                        }
                        self.acked += a.epsilon;
                    }
                    // Denied / gone: nothing charged, nothing acked.
                    Ok(_) => {}
                    // Refused append: the contract says neither acked
                    // nor applied; `check_live` verifies the "applied"
                    // half right after this step.
                    Err(SubmitError::Wal(_)) => {}
                    // The evaluate straddled a mutation: refused at the
                    // epoch re-check, nothing charged, nothing logged.
                    Err(SubmitError::Engine(apex_core::EngineError::StaleEpoch { .. })) => {}
                    Err(e) => return Err(format!("commit failed: {e}")),
                }
                self.inflight_upper = 0.0;
            }
            Op::Mutate => {
                self.mut_inflight = true;
                match state.mutate_rows(TENANT, true, &[vec![Value::Int(3)]]) {
                    Ok(crate::state::MutateOutcome::Applied(d)) => {
                        if d.inserted.len() != 1 {
                            return Err(format!(
                                "mutation applied {} rows, not 1",
                                d.inserted.len()
                            ));
                        }
                        self.mut_acked += 1;
                    }
                    Ok(crate::state::MutateOutcome::NoSuchDataset) => {
                        return Err("the world's tenant vanished".to_string());
                    }
                    // Armed fault refused the append: applied to the
                    // live engine (no ack), lost on recovery.
                    Err(SubmitError::Wal(_)) => self.mut_unlogged += 1,
                    Err(e) => return Err(format!("mutation failed: {e}")),
                }
                self.mut_inflight = false;
            }
            Op::Close => {
                // An armed WAL fault may refuse the Close record; the
                // in-memory close still happened and recovery simply
                // resurrects the session. Either way the conservation
                // equation must keep holding — so ignore the Result.
                let _ = state.expire_session(self.session);
            }
            Op::Reap => {
                self.clock.advance(TTL_MS + 1);
                let _ = state.reap_expired();
            }
            Op::Compact => state
                .compact()
                .map_err(|e| format!("compaction failed: {e}"))?,
            Op::WalFault => state.inject_wal_faults(1),
            Op::Crash => unreachable!("Crash is handled by the driver"),
        }
        Ok(())
    }

    /// Invariants that must hold between any two steps of a schedule.
    fn check_live(&self) -> Result<(), String> {
        let state = self.state.as_ref().expect("world is live");
        let spent = state.tenant(TENANT).unwrap().engine.spent();
        if spent > self.budget + EPS {
            return Err(format!("spent {spent} exceeds budget {}", self.budget));
        }
        if (spent - self.acked).abs() > EPS {
            return Err(format!(
                "live spent {spent} != acked Σε {} — a charge was applied without an ack \
                 (or acked without being applied)",
                self.acked
            ));
        }
        self.check_mutations(state, self.mut_acked + self.mut_unlogged, 0)?;
        self.check_granted(state, spent)
    }

    /// The live dataset must hold exactly the mutations the model says
    /// were applied: `expected ± slack` mutation records, each having
    /// inserted one row over the 8-row base, with `epoch` in lockstep.
    fn check_mutations(
        &self,
        state: &ServerState,
        expected: u64,
        slack: u64,
    ) -> Result<(), String> {
        let engine = &state.tenant(TENANT).unwrap().engine;
        let applied = engine.mutations_applied();
        if applied < expected || applied > expected + slack {
            return Err(format!(
                "dataset carries {applied} mutations, model says {expected} (+{slack} slack)"
            ));
        }
        let epoch = engine.epoch();
        if epoch != applied {
            return Err(format!(
                "epoch {epoch} diverged from mutations applied {applied}"
            ));
        }
        let rows = engine.with_engine(|e| e.dataset_scan_rows());
        if rows != 8 + applied {
            return Err(format!(
                "dataset scans {rows} rows, expected 8 base + {applied} inserted"
            ));
        }
        Ok(())
    }

    /// Grant conservation: granted = live allowances + spend attributed
    /// to closed sessions + reclaimed remainders.
    fn check_granted(&self, state: &ServerState, spent: f64) -> Result<(), String> {
        let live = state.list_sessions();
        let live_allowance: f64 = live.iter().map(|s| s.allowance).sum();
        let live_spent: f64 = live.iter().map(|s| s.spent).sum();
        let closed_spent = spent - live_spent;
        let reclaimed = state.tenant(TENANT).unwrap().reclaimed();
        let accounted = live_allowance + closed_spent + reclaimed;
        if (accounted - self.granted).abs() > EPS {
            return Err(format!(
                "grant conservation broken: granted {} but live allowance {live_allowance} \
                 + closed spend {closed_spent} + reclaimed {reclaimed} = {accounted}",
                self.granted
            ));
        }
        Ok(())
    }

    /// Drops the live state (releasing the directory lock — a real kill
    /// releases it too), recovers from disk, and checks the recovered
    /// ledger against the acked model.
    fn check_recovered(&mut self, crashed: bool) -> Result<(), String> {
        // A durable-but-unacked record from the one in-flight commit is
        // the only legitimate recovered-over-acked slack, and only a
        // crash can produce it (a completed run acked or discarded
        // every submission).
        let slack = if crashed { self.inflight_upper } else { 0.0 };
        for p in &mut self.pendings {
            *p = None;
        }
        drop(self.state.take());
        let (state, _report) = self
            .builder()
            .build_recovered(persist_opts(&self.dir))
            .map_err(|e| format!("recovery failed: {e:?}"))?;
        let spent = state.tenant(TENANT).unwrap().engine.spent();
        if spent > self.budget + EPS {
            return Err(format!(
                "recovered spent {spent} exceeds budget {}",
                self.budget
            ));
        }
        if spent + EPS < self.acked {
            return Err(format!(
                "recovered spent {spent} below acked Σε {} — an acked charge was forgotten",
                self.acked
            ));
        }
        if spent > self.acked + slack + EPS {
            return Err(format!(
                "recovered spent {spent} exceeds acked Σε {} + in-flight εᵘ {slack} — \
                 phantom charges were recovered",
                self.acked
            ));
        }
        // Mutation bounds: every acked mutation must be replayed
        // (durable before its ack); unlogged ones must be gone; a crash
        // mid-mutate may leave at most the one in-flight batch either
        // way (durable-but-unacked, or applied-but-unlogged).
        let mutation_slack = u64::from(crashed && self.mut_inflight);
        self.check_mutations(&state, self.mut_acked, mutation_slack)?;
        self.mut_unlogged = 0;
        self.mut_inflight = false;
        self.mut_acked = state.tenant(TENANT).unwrap().engine.mutations_applied();
        let out = self.check_granted(&state, spent);
        self.state = Some(state);
        out
    }
}

/// What a passing run reports back (used by self-tests to compare
/// replays and to position crash sweeps).
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// Every yield point the schedule passed through, in order.
    pub points: Vec<&'static str>,
    /// Final acked Σε.
    pub acked: f64,
}

/// A failing run: everything needed to replay it, plus the formatted
/// report [`sched::format_failure`] builds from it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub scenario: &'static str,
    pub seed: Option<(u64, u64)>,
    pub schedule: Vec<usize>,
    pub crash_at: Option<u64>,
    pub trace: Vec<&'static str>,
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&sched::format_failure(
            self.scenario,
            self.seed,
            &self.schedule,
            self.crash_at,
            &self.trace,
            &self.message,
        ))
    }
}

/// Runs one schedule of `scenario` in a fresh directory, optionally
/// killing the world at the `crash_at`-th yield point (1-based), and
/// always finishing with the recovery check.
pub fn run_one(
    scenario: &Scenario,
    schedule: &[usize],
    crash_at: Option<u64>,
) -> Result<RunTrace, (String, Vec<&'static str>)> {
    let dir = fresh_dir(scenario.name);
    let hook = Rc::new(match crash_at {
        Some(k) => TraceHook::with_crash_at(k),
        None => TraceHook::new(),
    });
    let out = run_in(&dir, scenario, schedule, &hook);
    let _ = std::fs::remove_dir_all(&dir);
    match out {
        Ok(acked) => Ok(RunTrace {
            points: hook.trace(),
            acked,
        }),
        Err(message) => Err((message, hook.trace())),
    }
}

fn run_in(
    dir: &Path,
    scenario: &Scenario,
    schedule: &[usize],
    hook: &Rc<TraceHook>,
) -> Result<f64, String> {
    let mut world = World::new(dir, scenario)?;
    let guard = sched::hook_scope(hook.clone());
    let mut cursor = vec![0usize; scenario.threads.len()];
    let mut crashed = false;
    for &t in schedule {
        let op = scenario.threads[t][cursor[t]];
        cursor[t] += 1;
        if op == Op::Crash {
            crashed = true;
            break;
        }
        match catch_unwind(AssertUnwindSafe(|| world.apply(op))) {
            Ok(Ok(())) => world.check_live()?,
            Ok(Err(message)) => return Err(message),
            Err(payload) => {
                if payload.downcast_ref::<SimulatedCrash>().is_some() {
                    crashed = true;
                    break;
                }
                std::panic::resume_unwind(payload);
            }
        }
    }
    // Uninstall the hook *before* recovery: recovery itself passes
    // yield points (it compacts), and an armed crash counter must not
    // fire inside the code whose crash-consistency we are checking.
    drop(guard);
    world.check_recovered(crashed)?;
    Ok(world.acked)
}

fn run_checked(
    scenario: &Scenario,
    schedule: &[usize],
    crash_at: Option<u64>,
    seed: Option<(u64, u64)>,
) -> Result<RunTrace, Box<Failure>> {
    run_one(scenario, schedule, crash_at).map_err(|(message, trace)| {
        Box::new(Failure {
            scenario: scenario.name,
            seed,
            schedule: schedule.to_vec(),
            crash_at,
            trace,
            message,
        })
    })
}

/// Exhaustively runs every interleaving of `scenario`; for the first
/// `crash_schedules` interleavings, additionally sweeps a kill across
/// every yield point the crash-free run passed through. Returns the
/// number of runs executed.
pub fn run_exhaustive(scenario: &Scenario, crash_schedules: usize) -> Result<usize, Box<Failure>> {
    let schedules = sched::interleavings(&scenario.counts(), usize::MAX);
    let mut runs = 0usize;
    for (i, schedule) in schedules.iter().enumerate() {
        let trace = run_checked(scenario, schedule, None, None)?;
        runs += 1;
        if i < crash_schedules {
            for k in 1..=trace.points.len() as u64 {
                run_checked(scenario, schedule, Some(k), None)?;
                runs += 1;
            }
        }
    }
    Ok(runs)
}

/// What a seeded case resolves to, before any run: the scenario index,
/// the schedule, whether a crash replay follows, and the raw draw that
/// picks the crash point (mod the trace length, known only after the
/// crash-free run).
pub fn derive_case(scenarios: &[Scenario], seed: u64, case: u64) -> (usize, Vec<usize>, bool, u64) {
    let mut rng = StdRng::seed_from_u64(sched::case_seed(seed, case));
    let idx = (rng.next_u64() % scenarios.len() as u64) as usize;
    let schedule = sched::random_interleaving(&mut rng, &scenarios[idx].counts());
    let with_crash = rng.next_u64() % 2 == 0;
    let crash_draw = rng.next_u64();
    (idx, schedule, with_crash, crash_draw)
}

/// Runs one seeded case (a failure report's `(seed, case)` replays
/// through here). Returns the number of runs executed (1, or 2 when
/// the case includes a crash replay).
pub fn run_case(scenarios: &[Scenario], seed: u64, case: u64) -> Result<usize, Box<Failure>> {
    let (idx, schedule, with_crash, crash_draw) = derive_case(scenarios, seed, case);
    let scenario = &scenarios[idx];
    let tag = Some((seed, case));
    let trace = run_checked(scenario, &schedule, None, tag)?;
    if with_crash && !trace.points.is_empty() {
        let k = 1 + crash_draw % trace.points.len() as u64;
        run_checked(scenario, &schedule, Some(k), tag)?;
        return Ok(2);
    }
    Ok(1)
}

/// Runs `cases` seeded random schedules over the scenario pool.
/// Returns the number of runs executed.
pub fn run_random(scenarios: &[Scenario], seed: u64, cases: u64) -> Result<usize, Box<Failure>> {
    let mut runs = 0usize;
    for case in 0..cases {
        runs += run_case(scenarios, seed, case)?;
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- bounded exhaustive passes (the smoke slice of the CI gate;
    // `schedule-gate` runs the full-strength `--ignored` variants) ----

    #[test]
    fn exhaustive_queriers_close_reap_holds_with_crash_sweep() {
        let runs = run_exhaustive(&queriers_close_reap(), 2).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            runs > 180,
            "expected 180 schedules + crash sweeps, got {runs}"
        );
    }

    #[test]
    fn exhaustive_fault_commit_holds_with_crash_sweep() {
        let runs = run_exhaustive(&fault_commit(), 2).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            runs > 30,
            "expected 30 schedules + crash sweeps, got {runs}"
        );
    }

    #[test]
    fn exhaustive_mutate_racing_queriers_holds_with_crash_sweep() {
        let runs = run_exhaustive(&mutate_racing_queriers(), 2).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            runs > 30,
            "expected 30 schedules + crash sweeps, got {runs}"
        );
    }

    #[test]
    fn exhaustive_mutate_fault_compact_holds_with_crash_sweep() {
        let runs = run_exhaustive(&mutate_fault_compact(), 2).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            runs > 60,
            "expected 60 schedules + crash sweeps, got {runs}"
        );
    }

    #[test]
    fn exhaustive_close_crash_holds() {
        // Every schedule position of the Crash op, plus point-level
        // sweeps on the first four schedules.
        run_exhaustive(&close_crash(), 4).unwrap_or_else(|f| panic!("{f}"));
    }

    #[test]
    fn random_schedules_hold() {
        run_random(&all_scenarios(), GATE_SEED, 40).unwrap_or_else(|f| panic!("{f}"));
    }

    // ---- full-strength gate (run by the `schedule-gate` CI job via
    // `-- --include-ignored`) ----

    #[test]
    #[ignore = "full-strength schedule gate; run via CI schedule-gate job"]
    fn gate_exhaustive_all_scenarios_with_full_crash_sweeps() {
        for scenario in all_scenarios() {
            let runs = run_exhaustive(&scenario, usize::MAX).unwrap_or_else(|f| panic!("{f}"));
            assert!(runs > 0, "{} ran nothing", scenario.name);
        }
    }

    #[test]
    #[ignore = "full-strength schedule gate; run via CI schedule-gate job"]
    fn gate_ten_thousand_seeded_random_schedules() {
        let runs =
            run_random(&all_scenarios(), GATE_SEED, 10_000).unwrap_or_else(|f| panic!("{f}"));
        assert!(runs >= 10_000);
    }

    // ---- exerciser self-tests ----

    #[test]
    fn canary_ordering_bug_is_caught_by_bounded_enumeration() {
        // Charging before the append is invisible when every append
        // succeeds — the fault-commit scenario plus the strict
        // spent==acked invariant pins it within 30 schedules.
        let failure = run_exhaustive(&canary_charge_before_log(), 0)
            .expect_err("the injected charge-before-append bug must be caught");
        assert!(
            failure.message.contains("live spent"),
            "canary caught by the wrong invariant: {failure}"
        );
        assert!(failure.crash_at.is_none(), "no crash needed: {failure}");
    }

    #[test]
    fn a_failing_schedule_replays_to_the_identical_trace() {
        let failure = run_exhaustive(&canary_charge_before_log(), 0).expect_err("canary must fail");
        let scenario = canary_charge_before_log();
        let a = run_one(&scenario, &failure.schedule, failure.crash_at)
            .expect_err("pinned schedule must fail on replay");
        let b = run_one(&scenario, &failure.schedule, failure.crash_at)
            .expect_err("pinned schedule must fail on replay");
        assert_eq!(a.1, b.1, "yield traces diverged between replays");
        assert_eq!(a.0, b.0, "violation messages diverged between replays");
        assert_eq!(a.1, failure.trace, "replay diverged from the original run");
    }

    #[test]
    fn a_seeded_case_derives_and_replays_identically() {
        let scenarios = all_scenarios();
        let first = derive_case(&scenarios, GATE_SEED, 5);
        let second = derive_case(&scenarios, GATE_SEED, 5);
        assert_eq!(first, second, "case derivation is not deterministic");
        let (idx, schedule, _, _) = first;
        let a = run_one(&scenarios[idx], &schedule, None).expect("case 5 passes");
        let b = run_one(&scenarios[idx], &schedule, None).expect("case 5 passes");
        assert_eq!(a.points, b.points, "yield traces diverged between replays");
        assert_eq!(a.acked.to_bits(), b.acked.to_bits(), "acked ε diverged");
    }

    // ---- pinned regression schedules: interleavings that were (or
    // model) real races, kept as fixed schedules forever ----

    #[test]
    fn pinned_close_between_evaluate_and_commit_charges_nothing() {
        // The PR 5 race: admin close lands between a submission's
        // evaluate and commit phases. The commit must observe the
        // closed slice and charge nothing.
        let scenario = Scenario {
            name: "pinned-close-mid-flight",
            threads: vec![vec![Op::Evaluate(0), Op::Commit(0)], vec![Op::Close]],
            canary: false,
        };
        let t = run_one(&scenario, &[0, 1, 0], None).unwrap_or_else(|(m, _)| panic!("{m}"));
        assert_eq!(t.acked, 0.0, "a commit racing a close must not charge");
    }

    #[test]
    fn pinned_reaper_skips_the_pinned_inflight_session() {
        // The reaper fires mid-submission (clock jumps past the TTL);
        // the pin must keep the session alive and the commit must land.
        let scenario = Scenario {
            name: "pinned-reap-mid-flight",
            threads: vec![vec![Op::Evaluate(0), Op::Commit(0)], vec![Op::Reap]],
            canary: false,
        };
        let t = run_one(&scenario, &[0, 1, 0], None).unwrap_or_else(|(m, _)| panic!("{m}"));
        assert!(t.acked > 0.0, "the pinned session must survive the reaper");
    }

    #[test]
    fn pinned_compaction_between_phases_keeps_recovery_exact() {
        // Compaction rotates the WAL generation between the two phases;
        // the commit's record lands in the new generation and recovery
        // (inside run_one) must still reproduce the charge exactly.
        let scenario = Scenario {
            name: "pinned-compact-mid-flight",
            threads: vec![vec![Op::Evaluate(0), Op::Commit(0)], vec![Op::Compact]],
            canary: false,
        };
        let t = run_one(&scenario, &[0, 1, 0], None).unwrap_or_else(|(m, _)| panic!("{m}"));
        assert!(t.acked > 0.0, "the commit must land after rotation");
    }

    #[test]
    fn pinned_wal_fault_before_commit_charges_nothing() {
        // Append-before-charge: a refused append must leave the ledger
        // untouched (run_one's live + recovery checks prove it).
        let scenario = Scenario {
            name: "pinned-fault-before-commit",
            threads: vec![vec![Op::Evaluate(0), Op::Commit(0)], vec![Op::WalFault]],
            canary: false,
        };
        let t = run_one(&scenario, &[1, 0, 0], None).unwrap_or_else(|(m, _)| panic!("{m}"));
        assert_eq!(t.acked, 0.0, "a refused append must not charge");
    }

    #[test]
    fn pinned_mutation_between_evaluate_and_commit_refuses_stale() {
        // The ISSUE 10 race: a row mutation lands between a submission's
        // evaluate and commit phases. The commit must observe the epoch
        // bump, refuse as stale, and charge nothing — while the mutation
        // itself lands durably.
        let scenario = Scenario {
            name: "pinned-mutate-mid-flight",
            threads: vec![vec![Op::Evaluate(0), Op::Commit(0)], vec![Op::Mutate]],
            canary: false,
        };
        let t = run_one(&scenario, &[0, 1, 0], None).unwrap_or_else(|(m, _)| panic!("{m}"));
        assert_eq!(
            t.acked, 0.0,
            "a commit straddling a mutation must not charge"
        );
        // The reverse order charges exactly once: committed before the
        // epoch moved.
        let t = run_one(&scenario, &[0, 0, 1], None).unwrap_or_else(|(m, _)| panic!("{m}"));
        assert!(t.acked > 0.0, "a commit that beat the mutation must land");
    }

    // ---- satellite 1: poison recovery proof ----

    #[test]
    fn a_crash_mid_append_poisons_no_lock_the_shard_needs() {
        // Kill the world at `wal.append.enter` — *inside* the
        // PersistInner mutex — then keep using the same state. Before
        // the lockx recovery this panicked on the poisoned mutex on the
        // very next submit; now the shard keeps serving, and the ledger
        // stays exact.
        let probe = Scenario {
            name: "poison-probe",
            threads: vec![vec![Op::Evaluate(0), Op::Commit(0)]],
            canary: false,
        };
        let t = run_one(&probe, &[0, 0], None).unwrap_or_else(|(m, _)| panic!("{m}"));
        let k = t
            .points
            .iter()
            .position(|p| *p == "wal.append.enter")
            .expect("commit path must pass the append point") as u64
            + 1;

        let dir = fresh_dir("poison-continue");
        let mut world = World::new(&dir, &probe).unwrap();
        let hook = Rc::new(TraceHook::with_crash_at(k));
        let guard = sched::hook_scope(hook);
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            world.apply(Op::Evaluate(0)).unwrap();
            world.apply(Op::Commit(0)).unwrap();
        }))
        .expect_err("the armed point must fire mid-commit");
        assert!(unwound.downcast_ref::<SimulatedCrash>().is_some());
        drop(guard);

        // The crash fired before the record was written and before the
        // charge: the model says nothing happened.
        world.pendings[0] = None;
        world.check_live().unwrap_or_else(|m| panic!("{m}"));
        // Keep serving on the SAME state, through the poisoned mutex.
        world.apply(Op::Evaluate(0)).unwrap();
        world.apply(Op::Commit(0)).unwrap();
        assert!(world.acked > 0.0, "the shard must keep answering");
        world.check_live().unwrap_or_else(|m| panic!("{m}"));
        world
            .check_recovered(false)
            .unwrap_or_else(|m| panic!("{m}"));
        drop(world);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
