//! The shard layer: N shard workers, each owning its own engine set,
//! ledger gate, WAL generation sequence, and snapshot directory, with
//! tenants mapped to shards by **consistent hashing** over the tenant
//! name — adding a shard moves only ~1/(N+1) of tenants, so a resharded
//! deployment migrates a bounded slice of state instead of all of it.
//!
//! The fixed thread-per-connection pool is replaced by a nonblocking
//! accept/dispatch loop: one event thread accepts connections, reads
//! just enough of each request to extract the routing key (the tenant
//! name for `POST /v1/sessions`, the shard bits of the session id for
//! everything session-scoped), then hands the connection to the owning
//! shard's **bounded** work queue. A full queue sheds the request with
//! `503` + `Retry-After` — backpressure is explicit, never unbounded
//! memory. Responses default to HTTP keep-alive: after a shard worker
//! writes its response, the connection migrates back to the event loop
//! and its next request may route to a *different* shard, so one client
//! connection can reach every shard.
//!
//! Session ids encode their owning shard in the high bits
//! (`id = (shard << 40) | local`): routing a session-scoped request
//! never needs a lookup, ids stay unique across shards, and they remain
//! below 2^53 (exact in JSON doubles) for up to 2^13 shards.
//!
//! The `TranslatorCache` stays a single `Arc`-shared instance across
//! shards (its artifacts are data-independent), so cross-tenant cache
//! hits survive sharding. Recovery replays each shard's
//! WAL-over-snapshot independently and in parallel at boot, and
//! `/v1/stats` aggregates per-shard ledgers plus exposes the per-shard
//! breakdown.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use apex_mech::CacheStats;

use crate::http::{self, BufParse, Request, Response};
use crate::json::Json;
use crate::router;
use crate::snapshot;
use crate::state::{
    lockx, PersistOptions, RecoverError, RecoveryReport, ServerState, ServerStateBuilder,
};
use crate::wire;

/// Bits the shard index occupies above the per-shard sequence number.
pub const SHARD_ID_SHIFT: u32 = 40;

/// Hard ceiling on the shard count: keeps `(shard << 40) | local` below
/// 2^53, so session ids stay exactly representable in JSON doubles.
pub const MAX_SHARDS: usize = 1 << 13;

/// Virtual nodes per shard on the hash ring. More vnodes → smoother
/// ownership split and a remap fraction closer to the ideal 1/(N+1);
/// 256 keeps the observed remap within ~1.3× of ideal while the ring
/// stays small enough (shards × 256 points) that lookups are a binary
/// search over a few KB.
const VNODES: usize = 256;

/// The session-id offset of shard `k`.
pub fn shard_id_base(shard: usize) -> u64 {
    (shard as u64) << SHARD_ID_SHIFT
}

/// The shard encoded in a session id's high bits.
pub fn session_shard(id: u64) -> usize {
    (id >> SHARD_ID_SHIFT) as usize
}

/// 64-bit FNV-1a — deterministic across processes and platforms (no
/// seed, no pointer identity), which is what makes the ring's routing
/// stable across restarts.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// MurmurHash3's 64-bit finalizer. Raw FNV-1a clusters on
/// near-identical inputs (vnode labels differ only in a digit or two),
/// which skews ring-arc lengths badly; the finalizer's avalanche
/// spreads the points uniformly. Still seedless and deterministic.
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The ring's point hash: FNV-1a with an avalanche finalizer.
fn point_hash(bytes: &[u8]) -> u64 {
    fmix64(fnv1a(bytes))
}

/// The consistent-hash ring mapping tenant names to shards.
///
/// Each shard contributes [`VNODES`] points at
/// `point_hash("shard-{k}/vnode-{v}")`; a tenant belongs to the first
/// point clockwise from `point_hash(name)`. Growing the ring from N to
/// N+1 shards
/// only reassigns tenants whose clockwise-first point is now one of the
/// new shard's vnodes — an expected 1/(N+1) fraction; every other
/// tenant keeps its shard, which is the property that bounds how much
/// state a reshard has to migrate.
#[derive(Debug, Clone)]
pub struct ShardRing {
    shards: usize,
    /// Sorted `(point, shard)` pairs.
    ring: Vec<(u64, usize)>,
}

impl ShardRing {
    /// A ring over `shards` shards (clamped to `1..=MAX_SHARDS`).
    pub fn new(shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS);
        let mut ring = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for v in 0..VNODES {
                ring.push((
                    point_hash(format!("shard-{shard}/vnode-{v}").as_bytes()),
                    shard,
                ));
            }
        }
        ring.sort_unstable();
        // A 64-bit point collision between vnodes is astronomically
        // unlikely, but dedup keeps the winner deterministic (lowest
        // shard) rather than sort-order-dependent.
        ring.dedup_by_key(|e| e.0);
        Self { shards, ring }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `tenant` — a pure function of (name, shard
    /// count), identical in every process that builds the same ring.
    pub fn shard_for(&self, tenant: &str) -> usize {
        let h = point_hash(tenant.as_bytes());
        let i = match self.ring.binary_search_by_key(&h, |e| e.0) {
            Ok(i) => i,
            Err(i) => i % self.ring.len(), // wrap past the last point
        };
        self.ring[i].1
    }
}

/// A set of shard states behind one ring: shard `k` owns its engines,
/// ledger gate, WAL sequence, and `root/shard-k` directory, while all
/// shards share one translator cache.
#[derive(Debug)]
pub struct ShardSet {
    ring: ShardRing,
    states: Vec<Arc<ServerState>>,
}

impl ShardSet {
    /// Builds `shards` **in-memory** shard states (no persistence).
    /// `mk(k)` supplies shard `k`'s builder — typically
    /// [`ServerState::builder_with_cache`] over one shared cache, with
    /// every tenant registered on every shard (the ring decides who
    /// serves whom; budgets are charged only on the owner).
    pub fn build(shards: usize, mk: impl Fn(usize) -> ServerStateBuilder) -> Self {
        let ring = ShardRing::new(shards);
        let states = (0..ring.shards())
            .map(|k| Arc::new(mk(k).session_id_base(shard_id_base(k)).build()))
            .collect();
        Self { ring, states }
    }

    /// Recovers every shard from `root/shard-k`, **independently and in
    /// parallel** — one thread per shard replays that shard's
    /// WAL-over-snapshot; a slow or large shard never serializes the
    /// others. The first shard to refuse recovery fails the whole boot.
    ///
    /// # Errors
    /// The first [`RecoverError`] any shard reported.
    pub fn recover(
        root: &Path,
        shards: usize,
        mk: impl Fn(usize) -> ServerStateBuilder + Sync,
        opts: impl Fn(&Path) -> PersistOptions + Sync,
    ) -> Result<(Self, Vec<RecoveryReport>), RecoverError> {
        let ring = ShardRing::new(shards);
        let n = ring.shards();
        let mut slots: Vec<Option<Result<(ServerState, RecoveryReport), RecoverError>>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (k, slot) in slots.iter_mut().enumerate() {
                let mk = &mk;
                let opts = &opts;
                scope.spawn(move || {
                    let dir = snapshot::shard_dir(root, k);
                    *slot = Some(
                        mk(k)
                            .session_id_base(shard_id_base(k))
                            .build_recovered(opts(&dir)),
                    );
                });
            }
        });
        let mut states = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for slot in slots {
            let (state, report) = slot.expect("every shard thread ran")?;
            states.push(Arc::new(state));
            reports.push(report);
        }
        Ok((Self { ring, states }, reports))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.states.len()
    }

    /// The ring (routing is `ring().shard_for(tenant)`).
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    /// Shard `k`'s state.
    pub fn state(&self, k: usize) -> &Arc<ServerState> {
        &self.states[k]
    }

    /// All shard states, in shard order.
    pub fn states(&self) -> &[Arc<ServerState>] {
        &self.states
    }

    /// The state owning `tenant`.
    pub fn owner(&self, tenant: &str) -> &Arc<ServerState> {
        &self.states[self.ring.shard_for(tenant)]
    }

    /// Live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.states.iter().map(|s| s.session_count()).sum()
    }

    /// `tenant`'s spent budget summed across shards (only the owner
    /// charges in a given deployment era, but the sum is correct
    /// regardless).
    pub fn spent(&self, tenant: &str) -> f64 {
        self.states
            .iter()
            .filter_map(|s| s.tenant(tenant))
            .map(|t| t.engine.spent())
            .sum()
    }

    /// Compacts every shard (the clean-shutdown path). The first error
    /// is returned but every shard is still attempted.
    ///
    /// # Errors
    /// The first shard compaction failure.
    pub fn compact_all(&self) -> Result<(), std::io::Error> {
        let mut first_err = None;
        for s in &self.states {
            if let Err(e) = s.compact() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// The aggregated `/v1/stats` body: totals across shards (same shape as
/// the unsharded endpoint, so existing clients keep working) plus a
/// `shards` breakdown.
pub fn stats_json(set: &ShardSet) -> Json {
    let mut dataset_entries = Vec::new();
    for (name, _) in set.state(0).tenants() {
        let mut budget = 0.0;
        let (mut spent, mut reclaimed) = (0.0f64, 0.0f64);
        let (mut answered, mut denied) = (0usize, 0usize);
        let mut sessions = 0usize;
        let mut cache = CacheStats::default();
        // Durable-store telemetry, summed over the shards' per-tenant
        // buffer pools. `paged` stays false for resident datasets and
        // the store object reads all-zero.
        let mut paged = false;
        let mut epoch = 0u64;
        // Live-mutation telemetry: only the owning shard's engine ever
        // mutates, so max (not sum) across shards is the true value.
        let (mut mutation_epoch, mut mutations_applied) = (0u64, 0u64);
        let mut pool = apex_data::PoolStats::default();
        let (mut transcript_records, mut transcript_dropped) = (0u64, 0u64);
        for st in set.states() {
            let Some(t) = st.tenant(name) else { continue };
            let ledger = t.engine.export_ledger();
            budget = ledger.budget;
            spent += ledger.spent;
            answered += ledger.answered;
            denied += ledger.denied;
            reclaimed += t.reclaimed();
            sessions += st.session_count_for(name);
            let local = t.cache.local_stats();
            cache.hits += local.hits;
            cache.misses += local.misses;
            cache.evictions += local.evictions;
            if let Some(s) = t.store_stats() {
                paged = true;
                pool = pool.merge(&s);
            }
            if let Some(e) = t.dataset_epoch() {
                epoch = epoch.max(e);
            }
            mutation_epoch = mutation_epoch.max(t.engine.epoch());
            mutations_applied = mutations_applied.max(t.engine.mutations_applied());
            transcript_records += t.transcript_records();
            transcript_dropped += t.transcript_dropped();
        }
        dataset_entries.push((
            name.clone(),
            Json::obj(vec![
                ("cache", wire::cache_stats_json(cache)),
                (
                    "store",
                    Json::obj(vec![
                        ("paged", Json::Bool(paged)),
                        ("epoch", Json::from(epoch)),
                        ("pool_hits", Json::from(pool.hits)),
                        ("pool_misses", Json::from(pool.misses)),
                        ("pool_evictions", Json::from(pool.evictions)),
                        ("pool_flushes", Json::from(pool.flushes)),
                        ("transcript_records", Json::from(transcript_records)),
                        ("transcript_dropped", Json::from(transcript_dropped)),
                    ]),
                ),
                (
                    "budget",
                    Json::obj(vec![
                        ("budget", Json::Num(budget)),
                        ("spent", Json::Num(spent)),
                        ("remaining", Json::Num(budget - spent)),
                        ("reclaimed", Json::Num(reclaimed)),
                    ]),
                ),
                (
                    "transcript",
                    Json::obj(vec![
                        ("answered", Json::from(answered)),
                        ("denied", Json::from(denied)),
                    ]),
                ),
                ("sessions", Json::from(sessions)),
                ("epoch", Json::from(mutation_epoch)),
                ("mutations_applied", Json::from(mutations_applied)),
            ]),
        ));
    }

    let shard_entries: Vec<Json> = set
        .states()
        .iter()
        .enumerate()
        .map(|(k, st)| {
            let datasets: Vec<(String, Json)> = st
                .tenants()
                .iter()
                .map(|(n, t)| {
                    let ledger = t.engine.export_ledger();
                    (
                        n.clone(),
                        Json::obj(vec![
                            ("spent", Json::Num(ledger.spent)),
                            ("reclaimed", Json::Num(t.reclaimed())),
                            ("answered", Json::from(ledger.answered)),
                            ("denied", Json::from(ledger.denied)),
                            ("sessions", Json::from(st.session_count_for(n))),
                        ]),
                    )
                })
                .collect();
            Json::obj(vec![
                ("shard", Json::from(k)),
                ("sessions", Json::from(st.session_count())),
                ("expired", Json::from(st.expired_count())),
                ("session_id_base", Json::from(st.session_id_base())),
                ("datasets", Json::Obj(datasets)),
            ])
        })
        .collect();

    // The root cache is one shared instance; report it once, not summed.
    let root = set.state(0).cache();
    Json::obj(vec![
        ("sessions", Json::from(set.session_count())),
        (
            "expired",
            Json::from(
                set.states()
                    .iter()
                    .map(|s| s.expired_count())
                    .sum::<usize>(),
            ),
        ),
        ("shard_count", Json::from(set.shards())),
        (
            "cache",
            Json::obj(vec![
                ("capacity", Json::from(root.capacity())),
                ("entries", Json::from(root.len())),
                ("global", wire::cache_stats_json(root.stats())),
            ]),
        ),
        ("datasets", Json::Obj(dataset_entries)),
        ("shards", Json::Arr(shard_entries)),
    ])
}

/// Knobs for the sharded server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads per shard draining that shard's queue. Shard
    /// throughput under durable WALs is fsync-bound, so a couple of
    /// workers per shard suffice to keep appends overlapping.
    pub workers_per_shard: usize,
    /// Bound of each shard's work queue; a full queue answers `503`.
    pub queue_cap: usize,
    /// Idle keep-alive connections past this are dropped.
    pub idle_timeout: Duration,
    /// Seconds advertised in the backpressure `Retry-After` header.
    pub retry_after_secs: u64,
    /// How long a worker lingers on a keep-alive connection after
    /// responding, waiting for the client's next request. A session's
    /// requests (open → query → close) all route to the same shard, so
    /// the follow-up usually lands here within the window and is served
    /// directly — skipping the dispatcher round trip that otherwise
    /// dominates per-request latency. Zero disables stickiness.
    pub sticky_wait: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers_per_shard: 2,
            queue_cap: 256,
            idle_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            sticky_wait: Duration::from_millis(1),
        }
    }
}

/// A connection parked in the event loop (or in flight to a worker).
#[derive(Debug)]
struct ConnState {
    stream: TcpStream,
    /// Bytes read but not yet consumed by a parsed request.
    buf: Vec<u8>,
    /// When the current (incomplete) request started arriving.
    read_start: Option<Instant>,
    last_activity: Instant,
    /// Whether the stream is currently in worker mode (blocking, write
    /// timeout armed) rather than event-loop mode (nonblocking). Kept
    /// here so the worker's serve loop pays the two mode-switch
    /// syscalls once per dispatch, not once per pipelined request.
    worker_io: bool,
    /// Responses accumulated for a pipelined burst, flushed in one
    /// write once no further request is already buffered (or before
    /// the connection blocks, parks, or drops). Always empty while the
    /// connection sits in the event loop.
    wbuf: Vec<u8>,
}

/// Largest buffer a single connection may accumulate: one max-size head
/// plus one max-size body plus pipelined slack.
const MAX_CONN_BUF: usize = http::MAX_BODY + http::MAX_LINE * (http::MAX_HEADERS + 2) + (64 << 10);

/// One request handed to a shard worker, carrying its connection.
struct Work {
    conn: ConnState,
    req: Request,
}

/// A bounded multi-consumer work queue with a *drain signal*.
///
/// Replaces the `mpsc::sync_channel` + `Arc<Mutex<Receiver>>` pair the
/// shards used before. Same dispatch semantics — `try_send` never
/// blocks, a full queue is backpressure, closing wakes every worker —
/// plus the one thing a channel cannot express: [`WorkQueue::is_drained`]
/// becomes observable the instant the queue is empty *and* every worker
/// is parked back in `recv`. Tests that previously slept-and-retried to
/// guess when a shard went quiescent now wait on that edge directly
/// (see `ShardServerHandle::wait_queue_drained`).
struct WorkQueue<T> {
    inner: Mutex<QueueInner<T>>,
    /// Wakes workers parked in `recv`.
    recv_cv: Condvar,
    /// Wakes waiters in `wait_drained` when the drain edge may have
    /// been reached.
    drain_cv: Condvar,
    /// Queue bound; `try_send` beyond it reports `Full` (unless an idle
    /// worker can take the item immediately).
    cap: usize,
    /// Worker threads consuming this queue; drained means all of them
    /// are parked in `recv` with nothing left to pop.
    workers: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    /// Workers currently parked inside `recv`.
    waiting: usize,
    closed: bool,
}

impl<T> WorkQueue<T> {
    fn new(cap: usize, workers: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                waiting: 0,
                closed: false,
            }),
            recv_cv: Condvar::new(),
            drain_cv: Condvar::new(),
            cap,
            workers,
        }
    }

    /// Nonblocking enqueue. `Full` is the backpressure signal (503 at
    /// the dispatcher) — except that a parked worker with nothing to do
    /// always admits one more item, so `cap = 0` keeps its rendezvous
    /// reading and a small cap never sheds load an idle worker could
    /// absorb right now.
    fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        let mut g = lockx::lock(&self.inner);
        if g.closed {
            return Err(TrySendError::Disconnected(item));
        }
        if g.items.len() >= self.cap && g.waiting <= g.items.len() {
            return Err(TrySendError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.recv_cv.notify_one();
        Ok(())
    }

    /// Blocks until an item arrives (`Some`) or the queue is closed and
    /// empty (`None` — the worker's shutdown signal).
    fn recv(&self) -> Option<T> {
        let mut g = lockx::lock(&self.inner);
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g.waiting += 1;
            if g.waiting == self.workers {
                // Every worker parked on an empty queue: the drain edge.
                self.drain_cv.notify_all();
            }
            g = lockx::wait(&self.recv_cv, g);
            g.waiting -= 1;
        }
    }

    /// Closes the queue: further `try_send`s are refused and parked
    /// workers drain what's left, then exit.
    fn close(&self) {
        lockx::lock(&self.inner).closed = true;
        self.recv_cv.notify_all();
        self.drain_cv.notify_all();
    }

    /// Whether the queue is quiescent right now: nothing queued and
    /// every worker parked in `recv` (or the queue is closed).
    fn is_drained(g: &QueueInner<T>, workers: usize) -> bool {
        g.items.is_empty() && (g.closed || g.waiting == workers)
    }

    /// Blocks until the queue drains (empty + all workers parked) or
    /// `timeout` elapses. `true` on the drain edge. Note a worker still
    /// writing a response or lingering on a sticky connection counts as
    /// busy — this reports *the shard finished its queued work*, not
    /// merely *the queue emptied*.
    fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = lockx::lock(&self.inner);
        loop {
            if Self::is_drained(&g, self.workers) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = lockx::wait_timeout(&self.drain_cv, g, deadline - now);
            g = guard;
        }
    }
}

/// Control handle for a running sharded server.
pub struct ShardServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    event: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    queues: Arc<Vec<WorkQueue<Work>>>,
}

impl ShardServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until shard `k`'s queue drains — empty with every worker
    /// parked waiting for work — or `timeout` elapses; `true` on the
    /// drain edge. Deterministic quiescence for tests: after the last
    /// in-flight response is written, this returns instead of the
    /// caller guessing with sleep-and-retry.
    pub fn wait_queue_drained(&self, k: usize, timeout: Duration) -> bool {
        self.queues[k].wait_drained(timeout)
    }

    /// Requests graceful shutdown. The event loop polls the flag (it
    /// never blocks indefinitely), so no nudge connection is needed.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the event loop and every shard worker have exited.
    pub fn join(mut self) {
        if let Some(e) = self.event.take() {
            let _ = e.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Starts the sharded server: binds `addr`, spawns the event thread and
/// `workers_per_shard` workers per shard, and returns the handle.
///
/// # Errors
/// Propagates bind failures.
pub fn serve_sharded<A: ToSocketAddrs>(
    addr: A,
    set: Arc<ShardSet>,
    cfg: ServeConfig,
) -> std::io::Result<ShardServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));

    // Workers hand keep-alive connections back through this channel.
    let (ret_tx, ret_rx) = mpsc::channel::<ConnState>();
    let workers_per_shard = cfg.workers_per_shard.max(1);
    let queues: Arc<Vec<WorkQueue<Work>>> = Arc::new(
        (0..set.shards())
            .map(|_| WorkQueue::new(cfg.queue_cap, workers_per_shard))
            .collect(),
    );
    let mut workers = Vec::new();
    for k in 0..set.shards() {
        // Each shard's WAL group-commit gate gathers one writer per
        // worker before paying its single fsync.
        set.state(k).set_sync_peers(workers_per_shard);
        for _ in 0..workers_per_shard {
            let set = set.clone();
            let queues = queues.clone();
            let ret = ret_tx.clone();
            let stop = stop.clone();
            let cfg = cfg.clone();
            workers.push(std::thread::spawn(move || {
                shard_worker(&set, k, &queues[k], &ret, &stop, &cfg);
            }));
        }
    }
    drop(ret_tx); // workers hold the only senders now

    let event = {
        let stop = stop.clone();
        let queues = queues.clone();
        std::thread::spawn(move || {
            event_loop(&listener, &set, &queues, &ret_rx, &stop, &cfg);
            // The dispatcher is gone: close every queue so workers
            // drain what's left and exit (this replaces the implicit
            // close that dropping the channel senders used to give).
            for q in queues.iter() {
                q.close();
            }
        })
    };

    Ok(ShardServerHandle {
        addr: local,
        stop,
        event: Some(event),
        workers,
        queues,
    })
}

/// Whether the client asked to keep the connection open (HTTP/1.1
/// default unless `Connection: close`).
fn wants_keep_alive(req: &Request) -> bool {
    !req.header("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
}

/// Cap on consecutive sticky serves per queue grab. Fairness against a
/// chatty connection comes from the queue-priority check (queued work
/// preempts lingering after every response), so this is only a
/// backstop against a conn that streams requests forever; it can be
/// generous without starving anyone.
const STICKY_MAX: usize = 512;

/// Flush the accumulated response buffer once it reaches this size even
/// if more pipelined requests are waiting, so a long burst can't defer
/// its first response arbitrarily.
const WBUF_FLUSH: usize = 32 << 10;

/// What the sticky wait on a keep-alive connection produced.
enum Sticky {
    /// The next request arrived and routes to this worker's shard.
    Serve(Request),
    /// No (complete) request within the window, or it routes elsewhere:
    /// park the connection back in the event loop.
    Park,
    /// The client hung up or the socket failed.
    Drop,
}

/// Waits up to `wait` for the connection's next request. Only a
/// complete request that routes to shard `k` is consumed; anything
/// else (partial bytes, malformed input, a foreign-shard or global
/// request) stays buffered for the event loop to handle.
fn sticky_next(conn: &mut ConnState, set: &ShardSet, k: usize, wait: Duration) -> Sticky {
    let deadline = Instant::now() + wait;
    let mut chunk = [0u8; 4096];
    loop {
        match http::parse_buffered(&conn.buf) {
            BufParse::Complete(req, consumed) => {
                if matches!(target_for(set, &req), Target::Shard(s) if s == k) {
                    conn.buf.drain(..consumed);
                    conn.read_start = None;
                    conn.last_activity = Instant::now();
                    return Sticky::Serve(req);
                }
                return Sticky::Park;
            }
            BufParse::Bad(_) => return Sticky::Park, // event loop answers it
            BufParse::NeedMore => {
                if conn.buf.len() > MAX_CONN_BUF {
                    return Sticky::Park; // event loop answers 413
                }
            }
        }
        let now = Instant::now();
        if now >= deadline {
            return Sticky::Park;
        }
        // Blocking read with the remaining window as the timeout: on a
        // busy host this yields the core to the client whose request
        // we're waiting for.
        if conn.stream.set_read_timeout(Some(deadline - now)).is_err() {
            return Sticky::Park;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Sticky::Drop,
            Ok(n) => {
                if conn.buf.is_empty() {
                    conn.read_start = Some(Instant::now());
                }
                conn.buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Sticky::Park
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Sticky::Drop,
        }
    }
}

/// One shard worker: drain the shard's queue, route against the shard's
/// own state, write the response, and migrate the connection back to
/// the event loop when it stays open.
///
/// After each response the worker lingers for `cfg.sticky_wait` on the
/// connection: a session's open → query → close all hash to the same
/// shard, so the follow-up request usually arrives within the window
/// and is served right here, without a dispatcher round trip. Requests
/// that route elsewhere (or don't arrive in time) park the connection
/// back in the event loop as before.
fn shard_worker(
    set: &Arc<ShardSet>,
    k: usize,
    queue: &WorkQueue<Work>,
    ret: &mpsc::Sender<ConnState>,
    stop: &Arc<AtomicBool>,
    cfg: &ServeConfig,
) {
    let state = set.state(k);
    // Parks a connection back in the event loop, nonblocking again. A
    // closed return channel means the event loop is gone (shutdown);
    // dropping the connection is then correct.
    let park = |mut conn: ConnState| {
        conn.worker_io = false;
        if conn.stream.set_read_timeout(None).is_ok() && conn.stream.set_nonblocking(true).is_ok() {
            let _ = ret.send(conn);
        }
    };
    loop {
        let Some(mut work) = queue.recv() else {
            return; // queue closed: shutdown
        };
        let mut served = 0;
        loop {
            let Work { mut conn, req } = work;
            served += 1;
            let resp = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                router::route(state, &req)
            })) {
                Ok(resp) => resp,
                Err(_) => Response::json(500, "{\"error\":\"internal error\"}".into()),
            };
            if resp.shutdown {
                stop.store(true, Ordering::SeqCst);
            }
            let keep = wants_keep_alive(&req) && !resp.shutdown;
            // Response writes are blocking (with a timeout): the payloads
            // are small and a worker must not drop a half-written response.
            if !conn.worker_io {
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn.stream.set_write_timeout(Some(http::IO_TIMEOUT));
                conn.worker_io = true;
            }
            http::append_response(&mut conn.wbuf, &resp, keep);
            if !keep {
                // Best-effort final flush: the connection drops either way.
                let _ = conn.stream.write_all(&conn.wbuf);
                break;
            }
            conn.last_activity = Instant::now();
            // Pipelined burst fast path: while the next request is
            // already buffered (zero wait), keep serving and let the
            // responses pile up in wbuf — one flush syscall per burst
            // instead of one per response.
            if conn.wbuf.len() < WBUF_FLUSH && served < STICKY_MAX && !stop.load(Ordering::SeqCst) {
                if let Sticky::Serve(next_req) = sticky_next(&mut conn, set, k, Duration::ZERO) {
                    work = Work {
                        conn,
                        req: next_req,
                    };
                    continue;
                }
            }
            // About to block, park, or drop: the client must see its
            // responses first.
            if conn.stream.write_all(&conn.wbuf).is_err() {
                break; // drop the connection
            }
            conn.wbuf.clear();
            // Sticky first, queue second: keeping each worker pinned to
            // its connection is what keeps every worker of a shard an
            // *active WAL writer* — one worker alternating between two
            // connections would leave its sibling idle and every group
            // commit gathering a party that never arrives. A connection
            // streaming requests forever cannot starve the queue: the
            // sticky window only serves requests already buffered or
            // arriving within `sticky_wait`, and STICKY_MAX backstops
            // pathological streams.
            if !cfg.sticky_wait.is_zero() && served < STICKY_MAX && !stop.load(Ordering::SeqCst) {
                match sticky_next(&mut conn, set, k, cfg.sticky_wait) {
                    Sticky::Serve(next_req) => {
                        work = Work {
                            conn,
                            req: next_req,
                        };
                        continue;
                    }
                    Sticky::Park => {}
                    Sticky::Drop => break,
                }
            }
            park(conn);
            break;
        }
    }
}

/// Where one parsed request must go.
enum Target {
    /// Session- or tenant-scoped: the owning shard's queue.
    Shard(usize),
    /// Cross-shard (healthz, stats, admin list/shutdown): handled inline.
    Global,
    /// Answerable without touching any shard.
    Reply(Response),
}

/// Pulls `"dataset":"…"` out of a create-session body without a full
/// JSON parse — routing only; the owning shard's router re-parses and
/// validates properly.
fn extract_dataset(body: &str) -> Option<String> {
    let at = body.find("\"dataset\"")?;
    let rest = &body[at + "\"dataset\"".len()..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn target_for(set: &ShardSet, req: &Request) -> Target {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["v1", "sessions"] => {
            // Tenant-routed; a body the router would reject goes to
            // shard 0 for the proper 400/404/405.
            let shard = req
                .body_str()
                .and_then(extract_dataset)
                .map(|d| set.ring().shard_for(&d))
                .unwrap_or(0);
            Target::Shard(shard)
        }
        // Row mutations go to the shard that owns the dataset's engine —
        // the same ring decision that routes its sessions, so mutations
        // and the queries they race serialize on one engine worker.
        ["v1", "datasets", name, ..] => Target::Shard(set.ring().shard_for(name)),
        ["v1", "sessions", id, ..] | ["v1", "admin", "sessions", id, ..] => {
            match id.parse::<u64>() {
                Ok(id) => {
                    let shard = session_shard(id);
                    if shard < set.shards() {
                        Target::Shard(shard)
                    } else {
                        // An id from a larger past deployment: nothing
                        // here can own it.
                        Target::Reply(Response::json(404, wire::error_json("no such session")))
                    }
                }
                // Router answers "session id must be an integer".
                Err(_) => Target::Shard(0),
            }
        }
        _ => Target::Global,
    }
}

/// The cross-shard endpoints, handled on the event thread (all cheap:
/// counter reads and ledger exports).
fn route_global(set: &ShardSet, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => {
            if req.method != "GET" {
                return Response::json(405, wire::error_json("use GET"));
            }
            let body = Json::obj(vec![
                ("status", Json::from("ok")),
                ("shards", Json::from(set.shards())),
                ("datasets", Json::from(set.state(0).tenants().len())),
                ("sessions", Json::from(set.session_count())),
            ]);
            Response::json(200, body.render())
        }
        ["v1", "stats"] => {
            if req.method != "GET" {
                return Response::json(405, wire::error_json("use GET"));
            }
            Response::json(200, stats_json(set).render())
        }
        ["v1", "admin", rest @ ..] => {
            // Every shard carries the same admin token; shard 0 checks.
            if let Err(resp) = router::admin_auth(set.state(0), req) {
                return resp;
            }
            match rest {
                ["shutdown"] => {
                    if req.method != "POST" {
                        return Response::json(405, wire::error_json("use POST"));
                    }
                    let mut resp = Response::json(
                        202,
                        Json::obj(vec![("status", Json::from("shutting down"))]).render(),
                    );
                    resp.shutdown = true;
                    resp
                }
                ["sessions"] => {
                    if req.method != "GET" {
                        return Response::json(405, wire::error_json("use GET"));
                    }
                    let mut sessions: Vec<_> = set
                        .states()
                        .iter()
                        .flat_map(|s| s.list_sessions())
                        .collect();
                    sessions.sort_by_key(|s| s.id);
                    let body = Json::obj(vec![
                        (
                            "sessions",
                            Json::Arr(sessions.into_iter().map(wire::session_info_json).collect()),
                        ),
                        (
                            "expired",
                            Json::from(
                                set.states()
                                    .iter()
                                    .map(|s| s.expired_count())
                                    .sum::<usize>(),
                            ),
                        ),
                        (
                            "ttl_millis",
                            set.state(0)
                                .ttl_millis()
                                .map(Json::from)
                                .unwrap_or(Json::Null),
                        ),
                    ]);
                    Response::json(200, body.render())
                }
                _ => Response::json(404, wire::error_json("no such admin endpoint")),
            }
        }
        _ => Response::json(404, wire::error_json("no such endpoint")),
    }
}

/// Outcome of draining a connection's readable bytes.
enum Fill {
    /// Appended at least one byte.
    Got,
    /// Nothing available right now.
    Nothing,
    /// EOF or a hard error: the connection is done.
    Closed,
}

fn fill(conn: &mut ConnState, scratch: &mut [u8]) -> Fill {
    let mut got = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => return Fill::Closed,
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch[..n]);
                got = true;
                if n < scratch.len() {
                    return Fill::Got;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                return if got { Fill::Got } else { Fill::Nothing };
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Fill::Closed,
        }
    }
}

/// Writes `resp` inline from the event thread (blocking, with a write
/// timeout — the payloads are small). Returns whether the connection
/// survives: write succeeded, keep-alive wanted, and back to
/// nonblocking cleanly.
fn respond_inline(conn: &mut ConnState, resp: &Response, keep_alive: bool) -> bool {
    let _ = conn.stream.set_nonblocking(false);
    let _ = conn.stream.set_write_timeout(Some(http::IO_TIMEOUT));
    let ok = http::write_response_conn(&mut conn.stream, resp, keep_alive).is_ok();
    ok && keep_alive && conn.stream.set_nonblocking(true).is_ok()
}

/// Services one connection for one scan pass. Returns the connection to
/// keep parking, or `None` when it was closed or handed to a shard.
#[allow(clippy::too_many_arguments)] // the event loop's full working set
fn service_conn(
    mut conn: ConnState,
    now: Instant,
    set: &ShardSet,
    queues: &[WorkQueue<Work>],
    cfg: &ServeConfig,
    stop: &AtomicBool,
    scratch: &mut [u8],
    progress: &mut bool,
) -> Option<ConnState> {
    match fill(&mut conn, scratch) {
        Fill::Closed => return None,
        Fill::Got => {
            conn.last_activity = now;
            *progress = true;
        }
        Fill::Nothing => {}
    }
    loop {
        if conn.buf.is_empty() {
            conn.read_start = None;
            if now.duration_since(conn.last_activity) > cfg.idle_timeout {
                return None;
            }
            return Some(conn);
        }
        let read_start = *conn.read_start.get_or_insert(now);
        match http::parse_buffered(&conn.buf) {
            BufParse::NeedMore => {
                if conn.buf.len() > MAX_CONN_BUF {
                    let resp = Response::json(413, wire::error_json("request too large"));
                    respond_inline(&mut conn, &resp, false);
                    return None;
                }
                if now.duration_since(read_start) > http::REQUEST_DEADLINE {
                    let resp = Response::json(408, wire::error_json("request timed out"));
                    respond_inline(&mut conn, &resp, false);
                    return None;
                }
                return Some(conn);
            }
            BufParse::Bad(status) => {
                let resp = Response::json(status, wire::error_json(http::status_text(status)));
                respond_inline(&mut conn, &resp, false);
                return None;
            }
            BufParse::Complete(req, consumed) => {
                conn.buf.drain(..consumed);
                conn.read_start = None;
                *progress = true;
                let keep = wants_keep_alive(&req);
                match target_for(set, &req) {
                    Target::Reply(resp) => {
                        if !respond_inline(&mut conn, &resp, keep) {
                            return None;
                        }
                        // Loop: the buffer may hold a pipelined request.
                    }
                    Target::Global => {
                        let resp = route_global(set, &req);
                        if resp.shutdown {
                            stop.store(true, Ordering::SeqCst);
                        }
                        if !respond_inline(&mut conn, &resp, keep && !resp.shutdown) {
                            return None;
                        }
                    }
                    Target::Shard(k) => match queues[k].try_send(Work { conn, req }) {
                        Ok(()) => return None,
                        Err(TrySendError::Full(work)) => {
                            // Backpressure: shed THIS request, keep the
                            // connection — the client retries after
                            // `Retry-After` without reconnecting.
                            let Work { conn: back, .. } = work;
                            conn = back;
                            let resp = Response::unavailable(cfg.retry_after_secs);
                            if !respond_inline(&mut conn, &resp, keep) {
                                return None;
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => return None,
                    },
                }
            }
        }
    }
}

/// The nonblocking accept/dispatch loop. Single-threaded readiness by
/// scanning: accept whatever is pending, take back worker-returned
/// connections, try to read + parse each parked connection, dispatch
/// complete requests. Scans that make no progress sleep briefly, so an
/// idle server costs ~0 and a busy one never waits on a timer.
fn event_loop(
    listener: &TcpListener,
    set: &Arc<ShardSet>,
    queues: &[WorkQueue<Work>],
    ret_rx: &Receiver<ConnState>,
    stop: &Arc<AtomicBool>,
    cfg: &ServeConfig,
) {
    let mut conns: Vec<ConnState> = Vec::new();
    let mut scratch = vec![0u8; 16 << 10];
    while !stop.load(Ordering::SeqCst) {
        let mut progress = false;

        // New connections.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_ok() {
                        conns.push(ConnState {
                            stream,
                            buf: Vec::new(),
                            read_start: None,
                            last_activity: Instant::now(),
                            worker_io: false,
                            wbuf: Vec::new(),
                        });
                        progress = true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // Persistent accept failures (e.g. EMFILE) fall through
                // to the scan; the no-progress sleep is the backoff.
                Err(_) => break,
            }
        }

        // Connections migrating back from shard workers.
        while let Ok(conn) = ret_rx.try_recv() {
            conns.push(conn);
            progress = true;
        }

        // Scan every parked connection.
        let now = Instant::now();
        let mut kept = Vec::with_capacity(conns.len());
        for conn in conns.drain(..) {
            if let Some(c) = service_conn(
                conn,
                now,
                set,
                queues,
                cfg,
                stop,
                &mut scratch,
                &mut progress,
            ) {
                kept.push(c);
            }
        }
        conns = kept;

        if !progress {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    // Dropping the queue senders (owned by our caller's vector) happens
    // when this function returns; workers then drain and exit. Parked
    // connections and the listener close on drop.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use apex_core::TranslatorCache;
    use apex_core::{EngineConfig, Mode};
    use apex_data::{Attribute, Dataset, Domain, Schema, Value};

    fn tiny_dataset(domain: i64) -> Dataset {
        let schema = Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange {
                min: 0,
                max: domain - 1,
            },
        )])
        .unwrap();
        let mut d = Dataset::empty(schema);
        for i in 0..16 {
            d.push(vec![Value::Int(i % domain)]).unwrap();
        }
        d
    }

    /// Picks `per_shard` tenant names owned by EACH shard, so tests
    /// never depend on luck for traffic reaching every shard.
    fn split_tenants(shards: usize, per_shard: usize) -> Vec<String> {
        let ring = ShardRing::new(shards);
        let mut picked: Vec<Vec<String>> = vec![Vec::new(); shards];
        for i in 0.. {
            let name = format!("tenant-{i}");
            let k = ring.shard_for(&name);
            if picked[k].len() < per_shard {
                picked[k].push(name);
            }
            if picked.iter().all(|p| p.len() == per_shard) {
                break;
            }
        }
        picked.into_iter().flatten().collect()
    }

    fn demo_set(shards: usize, tenants: &[String]) -> Arc<ShardSet> {
        let cache = TranslatorCache::with_capacity(64);
        let tenants = tenants.to_vec();
        Arc::new(ShardSet::build(shards, |k| {
            let mut b = ServerState::builder_with_cache(cache.clone());
            for (i, name) in tenants.iter().enumerate() {
                b = b.dataset(
                    name,
                    tiny_dataset(8),
                    EngineConfig {
                        budget: 10.0,
                        mode: Mode::Optimistic,
                        seed: 0x5AD_0000 + (k as u64) * 100 + i as u64,
                    },
                );
            }
            b
        }))
    }

    #[test]
    fn ring_is_deterministic_and_pinned() {
        // Two independent constructions agree on every tenant…
        let a = ShardRing::new(4);
        let b = ShardRing::new(4);
        for i in 0..1000 {
            let name = format!("tenant-{i}");
            assert_eq!(a.shard_for(&name), b.shard_for(&name));
        }
        // …and the hash itself is pinned: routing must be identical
        // across process restarts, which rules out any per-process seed.
        assert_eq!(fnv1a(b"apex"), 8577353448253779745);
        assert_eq!(fnv1a(b"adult"), 11639421285675599503);
        assert_eq!(fnv1a(b"taxi"), 15672339713388457737);
        assert_eq!(point_hash(b"apex"), 8112367261626308721);
        assert_eq!(point_hash(b"adult"), 7037391770252502742);
        assert_eq!(point_hash(b"taxi"), 14145573428915606398);
    }

    #[test]
    fn ring_spreads_tenants_across_all_shards() {
        for shards in [2usize, 4, 8] {
            let ring = ShardRing::new(shards);
            let mut counts = vec![0usize; shards];
            for i in 0..10_000 {
                counts[ring.shard_for(&format!("tenant-{i}"))] += 1;
            }
            for (k, c) in counts.iter().enumerate() {
                assert!(
                    *c > 10_000 / shards / 4,
                    "shard {k} of {shards} owns only {c} of 10000 tenants"
                );
            }
        }
    }

    #[test]
    fn adding_a_shard_remaps_a_bounded_fraction() {
        const TENANTS: usize = 10_000;
        for n in 1usize..=8 {
            let before = ShardRing::new(n);
            let after = ShardRing::new(n + 1);
            let moved = (0..TENANTS)
                .filter(|i| {
                    let name = format!("tenant-{i}");
                    before.shard_for(&name) != after.shard_for(&name)
                })
                .count();
            // Ideal is 1/(n+1); vnode placement variance gets slack.
            let bound = ((TENANTS as f64) * (1.6 / (n + 1) as f64 + 0.02)) as usize;
            assert!(
                moved <= bound,
                "{n}→{} shards moved {moved}/{TENANTS} tenants (bound {bound})",
                n + 1
            );
            // And every moved tenant landed on the NEW shard's ring
            // points or was displaced by them — nothing shuffles between
            // old shards.
            for i in 0..TENANTS {
                let name = format!("tenant-{i}");
                let (b, a) = (before.shard_for(&name), after.shard_for(&name));
                if b != a {
                    assert_eq!(a, n, "tenant {name} moved {b}→{a}, not to the new shard");
                }
            }
        }
    }

    #[test]
    fn session_ids_encode_their_shard() {
        for shard in [0usize, 1, 7, 4095] {
            let base = shard_id_base(shard);
            assert_eq!(session_shard(base + 1), shard);
            assert_eq!(session_shard(base + 0xFF_FFFF), shard);
        }
        // Ids stay exactly representable in a JSON double.
        assert!(shard_id_base(MAX_SHARDS - 1) + ((1u64 << SHARD_ID_SHIFT) - 1) < (1u64 << 53));
    }

    #[test]
    fn sharded_server_routes_sessions_and_aggregates_stats() {
        let tenants = split_tenants(2, 2);
        let set = demo_set(2, &tenants);
        let handle = serve_sharded("127.0.0.1:0", set.clone(), ServeConfig::default()).unwrap();
        let addr = handle.addr();

        let q = "BIN t ON COUNT(*) WHERE W = { v IN [0, 4), v IN [4, 8) } \
                 ERROR 8 CONFIDENCE 0.95;";
        let mut ids = Vec::new();
        for name in &tenants {
            let body = format!("{{\"dataset\":\"{name}\",\"budget\":2.0}}");
            let (status, created) =
                client::request(addr, "POST", "/v1/sessions", Some(&body)).unwrap();
            assert_eq!(status, 201, "{created:?}");
            let id = created.get("session").and_then(Json::as_u64).unwrap();
            // The id's shard bits match the ring's routing decision.
            assert_eq!(session_shard(id), set.ring().shard_for(name));
            let (status, resp) = client::request(
                addr,
                "POST",
                &format!("/v1/sessions/{id}/query"),
                Some(&format!("{{\"query\":\"{q}\"}}")),
            )
            .unwrap();
            assert_eq!(status, 200, "{resp:?}");
            ids.push((name, id));
        }

        // Both shards saw traffic (the four tenants split across 2).
        assert!(
            set.states()
                .iter()
                .all(|s| s.tenants().iter().any(|(_, t)| t.engine.spent() > 0.0)),
            "consistent hashing left a shard idle"
        );

        // Aggregated stats: totals match the sum over shards.
        let (status, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            stats.get("sessions").and_then(Json::as_u64),
            Some(tenants.len() as u64)
        );
        assert_eq!(stats.get("shard_count").and_then(Json::as_u64), Some(2));
        let shards_arr = stats.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(shards_arr.len(), 2);
        for name in &tenants {
            let agg = stats
                .get("datasets")
                .and_then(|d| d.get(name))
                .and_then(|d| d.get("budget"))
                .and_then(|b| b.get("spent"))
                .and_then(Json::as_f64)
                .unwrap();
            let summed = set.spent(name);
            assert!(
                (agg - summed).abs() < 1e-12,
                "{name}: stats {agg} vs shard sum {summed}"
            );
            assert!(agg > 0.0);
        }

        // The admin list merges both shards, ascending by id.
        let (status, listed) = client::request(addr, "GET", "/v1/admin/sessions", None).unwrap();
        assert_eq!(status, 200);
        let listed = listed.get("sessions").and_then(Json::as_arr).unwrap();
        assert_eq!(listed.len(), tenants.len());

        // Analyst close routes by the id's shard bits and reclaims.
        for (name, id) in &ids {
            let (status, closed) = client::request(
                addr,
                "POST",
                &format!("/v1/sessions/{id}/close"),
                Some("{}"),
            )
            .unwrap();
            assert_eq!(status, 200, "closing {name}: {closed:?}");
            assert!(closed.get("released").and_then(Json::as_f64).unwrap() > 0.0);
        }
        // A close on a foreign-deployment id (shard out of range) 404s.
        let ghost = shard_id_base(9) + 1;
        let (status, _) = client::request(
            addr,
            "POST",
            &format!("/v1/sessions/{ghost}/close"),
            Some("{}"),
        )
        .unwrap();
        assert_eq!(status, 404);

        // Graceful shutdown through the aggregated admin plane.
        let (status, _) = client::request(addr, "POST", "/v1/admin/shutdown", Some("{}")).unwrap();
        assert_eq!(status, 202);
        handle.join();
    }

    #[test]
    fn mutations_route_to_the_owning_shard_and_surface_in_stats() {
        let tenants = split_tenants(2, 1);
        let set = demo_set(2, &tenants);
        let handle = serve_sharded("127.0.0.1:0", set.clone(), ServeConfig::default()).unwrap();
        let addr = handle.addr();

        for name in &tenants {
            let (status, resp) = client::request(
                addr,
                "POST",
                &format!("/v1/datasets/{name}/rows"),
                Some(r#"{"op":"insert","rows":[[2],[4]]}"#),
            )
            .unwrap();
            assert_eq!(status, 200, "{resp:?}");
            assert_eq!(resp.get("epoch").and_then(Json::as_u64), Some(1));

            // Only the owner shard's engine moved; replicas stay pristine.
            let owner = set.ring().shard_for(name);
            for (k, st) in set.states().iter().enumerate() {
                let expect = if k == owner { 1 } else { 0 };
                assert_eq!(
                    st.tenant(name).unwrap().engine.epoch(),
                    expect,
                    "tenant {name} epoch on shard {k}"
                );
            }
        }
        // An unknown dataset still routes (to some shard) and 404s there.
        let (status, _) = client::request(
            addr,
            "POST",
            "/v1/datasets/ghost/rows",
            Some(r#"{"op":"insert","rows":[[1]]}"#),
        )
        .unwrap();
        assert_eq!(status, 404);

        // Aggregated stats report the owner's epoch, not a replica's 0.
        let (status, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
        assert_eq!(status, 200);
        for name in &tenants {
            let d = stats.get("datasets").and_then(|d| d.get(name)).unwrap();
            assert_eq!(d.get("epoch").and_then(Json::as_u64), Some(1), "{name}");
            assert_eq!(
                d.get("mutations_applied").and_then(Json::as_u64),
                Some(1),
                "{name}"
            );
        }

        let (status, _) = client::request(addr, "POST", "/v1/admin/shutdown", Some("{}")).unwrap();
        assert_eq!(status, 202);
        handle.join();
    }

    #[test]
    fn keep_alive_connection_migrates_across_shards() {
        use std::io::Write;
        let tenants = split_tenants(2, 2);
        let set = demo_set(2, &tenants);
        // split_tenants interleaves per shard, so these two differ.
        let a = tenants[0].as_str();
        let b = tenants
            .iter()
            .find(|t| set.ring().shard_for(t) != set.ring().shard_for(a))
            .expect("split_tenants covers both shards")
            .as_str();
        let handle = serve_sharded("127.0.0.1:0", set.clone(), ServeConfig::default()).unwrap();

        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut sessions = Vec::new();
        let mut carry = Vec::new();
        // Several requests over ONE connection, alternating shards.
        for name in [a, b, a, b] {
            let body = format!("{{\"dataset\":\"{name}\",\"budget\":1.0}}");
            let raw = format!(
                "POST /v1/sessions HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(raw.as_bytes()).unwrap();
            let resp = read_one_response(&mut stream, &mut carry);
            assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
            assert!(resp.contains("keep-alive"), "{resp}");
            let at = resp.find("\"session\":").unwrap();
            let digits: String = resp[at + 10..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            sessions.push(digits.parse::<u64>().unwrap());
        }
        let shards_hit: std::collections::HashSet<usize> =
            sessions.iter().map(|&id| session_shard(id)).collect();
        assert_eq!(shards_hit.len(), 2, "one connection must reach both shards");

        // Pipelining: two requests written back-to-back still get two
        // well-formed responses in order.
        let r1 = format!(
            "GET /v1/sessions/{}/budget HTTP/1.1\r\nHost: x\r\n\r\n",
            sessions[0]
        );
        let r2 = format!(
            "GET /v1/sessions/{}/budget HTTP/1.1\r\nHost: x\r\n\r\n",
            sessions[1]
        );
        stream.write_all(r1.as_bytes()).unwrap();
        stream.write_all(r2.as_bytes()).unwrap();
        for _ in 0..2 {
            let resp = read_one_response(&mut stream, &mut carry);
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        }

        // `Connection: close` is honored.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let resp = read_one_response(&mut stream, &mut carry);
        assert!(resp.contains("Connection: close"), "{resp}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "server must close after Connection: close");

        handle.stop();
        handle.join();
    }

    /// Reads exactly one HTTP response (head + Content-Length body).
    /// `carry` holds bytes read past the response boundary (pipelined
    /// responses can arrive in one segment) for the next call.
    fn read_one_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> String {
        let mut chunk = [0u8; 1024];
        loop {
            let head_end = carry
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map(|p| p + 4);
            if let Some(head_end) = head_end {
                let head = String::from_utf8_lossy(&carry[..head_end]).into_owned();
                let len: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("Content-Length: "))
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(0);
                if carry.len() >= head_end + len {
                    let resp = String::from_utf8_lossy(&carry[..head_end + len]).into_owned();
                    carry.drain(..head_end + len);
                    return resp;
                }
            }
            let n = stream.read(&mut chunk).expect("response read");
            assert!(n > 0, "connection closed mid-response");
            carry.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn full_shard_queue_answers_503_with_retry_after() {
        use std::io::Write;
        // One shard, ONE worker, a rendezvous (capacity-0) queue: while
        // the worker is busy, any dispatch must shed with 503.
        let cache = TranslatorCache::with_capacity(16);
        let set = Arc::new(ShardSet::build(1, |_| {
            ServerState::builder_with_cache(cache.clone()).dataset(
                "wide",
                {
                    let schema = Schema::new(vec![Attribute::new(
                        "v",
                        Domain::IntRange { min: 0, max: 4095 },
                    )])
                    .unwrap();
                    let mut d = Dataset::empty(schema);
                    for i in 0..32 {
                        d.push(vec![Value::Int(i * 128)]).unwrap();
                    }
                    d
                },
                EngineConfig {
                    budget: 100.0,
                    mode: Mode::Pessimistic,
                    seed: 7,
                },
            )
        }));
        let cfg = ServeConfig {
            workers_per_shard: 1,
            queue_cap: 0,
            ..ServeConfig::default()
        };
        let handle = serve_sharded("127.0.0.1:0", set, cfg).unwrap();
        let addr = handle.addr();

        let (status, created) = client::request(
            addr,
            "POST",
            "/v1/sessions",
            Some("{\"dataset\":\"wide\",\"budget\":50.0}"),
        )
        .unwrap();
        assert_eq!(status, 201, "{created:?}");
        let id = created.get("session").and_then(Json::as_u64).unwrap();

        // A slow cold-prepare query occupies the only worker…
        let preds: Vec<String> = (1..=48).map(|i| format!("v IN [0, {})", i * 64)).collect();
        let slow = format!(
            "BIN wide ON COUNT(*) WHERE W = {{ {} }} ERROR 200 CONFIDENCE 0.99;",
            preds.join(", ")
        );
        let slow_body = format!("{{\"query\":{}}}", Json::from(slow).render());
        let got_503 = std::thread::scope(|scope| {
            let slow_client = scope.spawn(|| {
                client::request(
                    addr,
                    "POST",
                    &format!("/v1/sessions/{id}/query"),
                    Some(&slow_body),
                )
            });
            std::thread::sleep(Duration::from_millis(40));
            // …so concurrent requests to the same shard shed with 503 +
            // Retry-After (raw socket: the header must be on the wire).
            let mut got = false;
            for _ in 0..50 {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s.write_all(
                    format!(
                        "GET /v1/sessions/{id}/budget HTTP/1.1\r\nHost: x\r\n\
                         Connection: close\r\n\r\n"
                    )
                    .as_bytes(),
                )
                .unwrap();
                let mut out = String::new();
                let _ = s.read_to_string(&mut out);
                if out.starts_with("HTTP/1.1 503") {
                    assert!(out.contains("Retry-After: 1"), "{out}");
                    got = true;
                    break;
                }
                // The slow query may have finished already on a fast
                // machine; 200 is the only other legal outcome.
                assert!(out.starts_with("HTTP/1.1 200"), "{out}");
            }
            let (slow_status, _) = slow_client.join().unwrap().unwrap();
            assert!(
                slow_status == 200 || slow_status == 409,
                "slow query returned {slow_status}"
            );
            got
        });
        assert!(
            got_503,
            "a rendezvous queue with a busy worker must shed at least one 503"
        );

        // After the pressure clears, wait on the drain signal — the
        // queue reports the moment the worker parks back on it with
        // nothing queued. No sleep-and-retry: once drained, the very
        // next dispatch must be admitted and answered.
        assert!(
            handle.wait_queue_drained(0, Duration::from_secs(10)),
            "the shard never drained after the slow query finished"
        );
        let (status, _) =
            client::request(addr, "GET", &format!("/v1/sessions/{id}/budget"), None).unwrap();
        assert_eq!(status, 200, "a drained shard must admit the next request");

        handle.stop();
        handle.join();
    }

    #[test]
    fn in_memory_set_recovers_nothing_but_durable_set_recovers_per_shard() {
        let root = crate::testutil::temp_dir("shardset");
        let tenants = split_tenants(2, 2);
        let cache = TranslatorCache::with_capacity(64);
        let mk = |k: usize| {
            let mut b = ServerState::builder_with_cache(cache.clone());
            for (i, name) in tenants.iter().enumerate() {
                b = b.dataset(
                    name,
                    tiny_dataset(8),
                    EngineConfig {
                        budget: 10.0,
                        mode: Mode::Optimistic,
                        seed: 0xD00D + (k as u64) * 10 + i as u64,
                    },
                );
            }
            b
        };
        let opts = |dir: &Path| PersistOptions {
            sync: false,
            ..PersistOptions::new(dir)
        };

        let spent: Vec<f64> = {
            let (set, _) = ShardSet::recover(&root, 2, mk, opts).unwrap();
            let acc = apex_query::AccuracySpec::new(25.0, 0.05).unwrap();
            let query = apex_query::ExplorationQuery::wcq(vec![
                apex_data::Predicate::range("v", 0.0, 4.0),
                apex_data::Predicate::range("v", 4.0, 8.0),
            ]);
            for name in &tenants {
                let shard = set.ring().shard_for(name);
                let id = set.state(shard).create_session(name, 2.0).unwrap().unwrap();
                assert_eq!(session_shard(id), shard);
                set.state(shard).submit(id, &query, &acc).unwrap();
            }
            tenants.iter().map(|n| set.spent(n)).collect()
            // Dropped WITHOUT compaction: recovery replays per-shard WALs.
        };
        assert!(spent.iter().all(|s| *s > 0.0));

        let (set, reports) = ShardSet::recover(&root, 2, mk, opts).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(
            reports.iter().all(|r| r.replayed > 0),
            "both shards must have had WAL to replay: {reports:?}"
        );
        for (name, before) in tenants.iter().zip(&spent) {
            let after = set.spent(name);
            assert!(
                (after - before).abs() < 1e-9,
                "{name}: recovered {after} != acked {before}"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
