//! Endpoint dispatch: path + method → handler.
//!
//! | Endpoint                              | Meaning                                  |
//! |---------------------------------------|------------------------------------------|
//! | `GET  /healthz`                       | liveness                                 |
//! | `POST /v1/sessions`                   | open a session (dataset + budget slice)  |
//! | `POST /v1/sessions/{id}/query`        | submit a query (200 answered, 409 denied)|
//! | `GET  /v1/sessions/{id}/budget`       | session + engine budget state            |
//! | `POST /v1/sessions/{id}/close`        | close a session, reclaim its remainder   |
//! | `GET  /v1/stats`                      | cache counters (global + per dataset)    |
//! | `POST /v1/datasets/{name}/rows`       | admin: insert/delete rows (live dataset) |
//! | `GET  /v1/admin/sessions`             | admin: list live sessions                |
//! | `POST /v1/admin/sessions/{id}/expire` | admin: force-expire a session            |
//! | `POST /v1/admin/shutdown`             | admin: begin graceful shutdown           |
//!
//! Status mapping: malformed bodies and engine-rejected queries (unknown
//! attributes, empty workloads) are 400; unknown datasets/sessions 404;
//! an **expired** session is 410 (it once lived — distinct from 404); a
//! **denied** query is 409 — denial is part of the privacy protocol, not
//! a server fault, so it gets its own signal distinct from 4xx client
//! errors and 2xx answers. A mutation batch too large to frame as one
//! WAL record is 413 (refused before anything is applied). A failed
//! write-ahead append is 500: the charge is never acked without its log
//! record.
//!
//! Row mutations live under `/v1/datasets/...` rather than `/v1/admin/...`
//! so shard routing can key them by dataset name, but they carry the same
//! bearer-token gate as the admin plane: changing the data every session
//! queries is an operator action, not an analyst one.
//!
//! The admin plane (`/v1/admin/*`) checks `Authorization: Bearer <token>`
//! when the state carries an admin token (`--admin-token`); without one
//! it is open (development mode — see `docs/SERVICE.md`).

use std::sync::Arc;

use apex_core::EngineResponse;

use crate::http::{Request, Response};
use crate::json::Json;
use crate::state::{ServerState, SessionStatus, SubmitError, SubmitOutcome};
use crate::wire;

/// Routes one request. Pure: all side effects go through `state`.
pub fn route(state: &Arc<ServerState>, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => method(req, "GET", || healthz(state)),
        ["v1", "sessions"] => method(req, "POST", || create_session(state, req)),
        ["v1", "sessions", id, "query"] => {
            with_session_id(id, |id| method(req, "POST", || submit(state, id, req)))
        }
        ["v1", "sessions", id, "budget"] => {
            with_session_id(id, |id| method(req, "GET", || budget(state, id)))
        }
        ["v1", "sessions", id, "close"] => {
            with_session_id(id, |id| method(req, "POST", || close_session(state, id)))
        }
        ["v1", "stats"] => method(req, "GET", || stats(state)),
        ["v1", "datasets", name, "rows"] => match admin_auth(state, req) {
            Ok(()) => method(req, "POST", || mutate(state, name, req)),
            Err(resp) => resp,
        },
        ["v1", "admin", rest @ ..] => match admin_auth(state, req) {
            Ok(()) => admin(state, req, rest),
            Err(resp) => resp,
        },
        _ => Response::json(404, wire::error_json("no such endpoint")),
    }
}

/// Admin sub-router (auth already checked).
fn admin(state: &Arc<ServerState>, req: &Request, segments: &[&str]) -> Response {
    match segments {
        ["shutdown"] => method(req, "POST", shutdown),
        ["sessions"] => method(req, "GET", || admin_sessions(state)),
        ["sessions", id, "expire"] => {
            with_session_id(id, |id| method(req, "POST", || admin_expire(state, id)))
        }
        _ => Response::json(404, wire::error_json("no such admin endpoint")),
    }
}

/// Checks the bearer token when one is configured. Constant-time
/// comparison: the verdict leaks nothing about how much of the token
/// matched. `pub(crate)` so the shard layer can guard its aggregated
/// admin endpoints with the same rule.
pub(crate) fn admin_auth(state: &ServerState, req: &Request) -> Result<(), Response> {
    let Some(expected) = state.admin_token() else {
        return Ok(());
    };
    let presented = req
        .header("authorization")
        .and_then(|v| v.strip_prefix("Bearer "))
        .map(str::trim)
        .unwrap_or("");
    if constant_time_eq(presented.as_bytes(), expected.as_bytes()) {
        Ok(())
    } else {
        Err(Response::json(
            401,
            wire::error_json("admin endpoints require Authorization: Bearer <token>"),
        ))
    }
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

fn method(req: &Request, want: &str, handler: impl FnOnce() -> Response) -> Response {
    if req.method == want {
        handler()
    } else {
        Response::json(405, wire::error_json(&format!("use {want}")))
    }
}

fn with_session_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => Response::json(400, wire::error_json("session id must be an integer")),
    }
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = req
        .body_str()
        .ok_or_else(|| Response::json(400, wire::error_json("body must be UTF-8 JSON")))?;
    crate::json::parse(text).map_err(|e| Response::json(400, wire::error_json(&e.to_string())))
}

fn healthz(state: &ServerState) -> Response {
    let body = Json::obj(vec![
        ("status", Json::from("ok")),
        ("datasets", Json::from(state.tenants().len())),
        ("sessions", Json::from(state.session_count())),
    ]);
    Response::json(200, body.render())
}

fn create_session(state: &ServerState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let create = match wire::parse_create_session(&body) {
        Ok(c) => c,
        Err(msg) => return Response::json(400, wire::error_json(&msg)),
    };
    let id = match state.create_session(&create.dataset, create.budget) {
        Ok(Some(id)) => id,
        Ok(None) => {
            return Response::json(
                404,
                wire::error_json(&format!("no dataset named \"{}\"", create.dataset)),
            )
        }
        Err(e) => return wal_failed(&e),
    };
    let body = Json::obj(vec![
        ("session", Json::from(id)),
        ("dataset", Json::from(create.dataset)),
        ("allowance", Json::Num(create.budget)),
    ]);
    Response::json(201, body.render())
}

fn gone() -> Response {
    Response::json(410, wire::error_json("session expired"))
}

/// The one 500 a durable deployment can produce: the write-ahead append
/// failed, so the mutation was not acked (see `state::SubmitError`).
fn wal_failed(e: &std::io::Error) -> Response {
    Response::json(
        500,
        wire::error_json(&format!("write-ahead log append failed: {e}")),
    )
}

fn submit(state: &ServerState, id: u64, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let (query, accuracy) = match wire::parse_query_request(&body) {
        Ok(qa) => qa,
        Err(msg) => return Response::json(400, wire::error_json(&msg)),
    };
    // The state layer resolves the session without holding the map lock
    // during the (possibly slow) mechanism run, and WAL-logs the outcome
    // before returning — this response is the ack.
    match state.submit(id, &query, &accuracy) {
        Ok(SubmitOutcome::Response(resp)) => {
            let status = match resp {
                EngineResponse::Answered(_) => 200,
                EngineResponse::Denied => 409,
            };
            Response::json(status, wire::engine_response_json(&resp).render())
        }
        Ok(SubmitOutcome::Gone) => gone(),
        Ok(SubmitOutcome::NoSuchSession) => {
            Response::json(404, wire::error_json("no such session"))
        }
        // A mechanism overshooting its declared worst case is an engine
        // fault, not a client error — the charge was refused (nothing
        // spent), and the client should see a server-side failure.
        Err(SubmitError::Engine(e @ apex_core::EngineError::LossAboveWorstCase { .. })) => {
            Response::json(500, wire::error_json(&e.to_string()))
        }
        Err(SubmitError::Engine(e)) => Response::json(400, wire::error_json(&e.to_string())),
        Err(SubmitError::Wal(e)) => wal_failed(&e),
        // Queries never build mutation batches; unreachable here, mapped
        // anyway so the error enum stays total.
        Err(e @ SubmitError::BatchTooLarge { .. }) => {
            Response::json(413, wire::error_json(&e.to_string()))
        }
    }
}

/// `POST /v1/datasets/{name}/rows`: apply a row mutation batch. The
/// response is the ack — with persistence enabled, the WAL record is
/// durable before this returns. Epoch-keyed caches and pending charges
/// make racing queries safe: an evaluate that straddles the mutation is
/// refused at commit with a stale-epoch error (mapped to 400 here via
/// the query path) and nothing is charged.
fn mutate(state: &ServerState, name: &str, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let m = match wire::parse_mutate_rows(&body) {
        Ok(m) => m,
        Err(msg) => return Response::json(400, wire::error_json(&msg)),
    };
    match state.mutate_rows(name, m.insert, &m.rows) {
        Ok(crate::state::MutateOutcome::Applied(delta)) => {
            let applied = state
                .tenant(name)
                .map(|t| t.engine.mutations_applied())
                .unwrap_or(0);
            Response::json(
                200,
                wire::mutation_json(name, m.insert, &delta, applied).render(),
            )
        }
        Ok(crate::state::MutateOutcome::NoSuchDataset) => Response::json(
            404,
            wire::error_json(&format!("no dataset named \"{name}\"")),
        ),
        Err(e @ SubmitError::BatchTooLarge { .. }) => {
            Response::json(413, wire::error_json(&e.to_string()))
        }
        // Arity/type mismatches, empty-batch refusals: client errors.
        Err(SubmitError::Engine(e)) => Response::json(400, wire::error_json(&e.to_string())),
        Err(SubmitError::Wal(e)) => wal_failed(&e),
    }
}

fn budget(state: &ServerState, id: u64) -> Response {
    let Some((dataset, session)) =
        state.with_session(id, |s| (s.dataset.clone(), s.session.clone()))
    else {
        return match state.session_status(id) {
            SessionStatus::Expired => gone(),
            _ => Response::json(404, wire::error_json("no such session")),
        };
    };
    let engine = session.engine();
    let body = wire::budget_json(
        id,
        &dataset,
        session.allowance(),
        session.spent(),
        engine.budget(),
        engine.spent(),
    );
    Response::json(200, body.render())
}

fn stats(state: &ServerState) -> Response {
    let mut datasets = Vec::new();
    for (name, tenant) in state.tenants() {
        let ledger = tenant.engine.export_ledger();
        datasets.push((
            name.clone(),
            Json::obj(vec![
                ("cache", wire::cache_stats_json(tenant.cache.local_stats())),
                (
                    "budget",
                    Json::obj(vec![
                        ("budget", Json::Num(ledger.budget)),
                        ("spent", Json::Num(ledger.spent)),
                        ("remaining", Json::Num(tenant.engine.remaining())),
                        ("reclaimed", Json::Num(tenant.reclaimed())),
                    ]),
                ),
                (
                    "transcript",
                    Json::obj(vec![
                        ("answered", Json::from(ledger.answered)),
                        ("denied", Json::from(ledger.denied)),
                    ]),
                ),
                ("sessions", Json::from(state.session_count_for(name))),
                ("epoch", Json::from(tenant.engine.epoch())),
                (
                    "mutations_applied",
                    Json::from(tenant.engine.mutations_applied()),
                ),
            ]),
        ));
    }
    let body = Json::obj(vec![
        ("sessions", Json::from(state.session_count())),
        ("expired", Json::from(state.expired_count())),
        (
            "cache",
            Json::obj(vec![
                ("capacity", Json::from(state.cache().capacity())),
                ("entries", Json::from(state.cache().len())),
                ("global", wire::cache_stats_json(state.cache().stats())),
            ]),
        ),
        ("datasets", Json::Obj(datasets)),
    ]);
    Response::json(200, body.render())
}

fn admin_sessions(state: &ServerState) -> Response {
    let sessions = state
        .list_sessions()
        .into_iter()
        .map(wire::session_info_json)
        .collect();
    let body = Json::obj(vec![
        ("sessions", Json::Arr(sessions)),
        ("expired", Json::from(state.expired_count())),
        (
            "ttl_millis",
            state.ttl_millis().map(Json::from).unwrap_or(Json::Null),
        ),
    ]);
    Response::json(200, body.render())
}

fn admin_expire(state: &ServerState, id: u64) -> Response {
    close_session(state, id)
}

/// Closing a session (analyst `close` or admin `expire`): removes it,
/// reclaims the unspent slice remainder, and reports what was released.
fn close_session(state: &ServerState, id: u64) -> Response {
    match state.expire_session(id) {
        Ok(Some(released)) => Response::json(
            200,
            Json::obj(vec![
                ("session", Json::from(id)),
                ("released", Json::Num(released)),
            ])
            .render(),
        ),
        Ok(None) => match state.session_status(id) {
            SessionStatus::Expired => gone(),
            _ => Response::json(404, wire::error_json("no such session")),
        },
        Err(e) => wal_failed(&e),
    }
}

fn shutdown() -> Response {
    let mut resp = Response::json(
        202,
        Json::obj(vec![("status", Json::from("shutting down"))]).render(),
    );
    resp.shutdown = true;
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use apex_core::EngineConfig;
    use apex_data::{Attribute, Dataset, Domain, Schema, Value};
    use std::time::Duration;

    fn demo_dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange { min: 0, max: 7 },
        )])
        .unwrap();
        let mut d = Dataset::empty(schema);
        for i in 0..8_i64 {
            for _ in 0..4 {
                d.push(vec![Value::Int(i)]).unwrap();
            }
        }
        d
    }

    fn state() -> Arc<ServerState> {
        Arc::new(
            ServerState::builder(16)
                .dataset("demo", demo_dataset(), EngineConfig::default())
                .build(),
        )
    }

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request::new(method, path, body)
    }

    fn req_auth(method: &str, path: &str, body: &str, token: &str) -> Request {
        let mut r = Request::new(method, path, body);
        r.headers
            .push(("authorization".into(), format!("Bearer {token}")));
        r
    }

    fn open_session(s: &Arc<ServerState>, body: &str) -> u64 {
        let r = route(s, &req("POST", "/v1/sessions", body));
        assert_eq!(r.status, 201, "{}", r.body);
        crate::json::parse(&r.body)
            .unwrap()
            .get("session")
            .and_then(Json::as_u64)
            .unwrap()
    }

    #[test]
    fn full_session_lifecycle_over_the_router() {
        let s = state();
        let r = route(&s, &req("GET", "/healthz", ""));
        assert_eq!(r.status, 200);

        let id = open_session(&s, r#"{"dataset":"demo","budget":0.8}"#);

        let q = r#"{"query":"BIN demo ON COUNT(*) WHERE W = { v IN [0, 4), v IN [4, 8) } ERROR 8 CONFIDENCE 0.95;"}"#;
        let r = route(&s, &req("POST", &format!("/v1/sessions/{id}/query"), q));
        assert_eq!(r.status, 200, "{}", r.body);
        let parsed = crate::json::parse(&r.body).unwrap();
        assert_eq!(
            parsed.get("status").and_then(Json::as_str),
            Some("answered")
        );
        assert_eq!(
            parsed
                .get("answer")
                .and_then(|a| a.get("counts"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );

        let r = route(&s, &req("GET", &format!("/v1/sessions/{id}/budget"), ""));
        assert_eq!(r.status, 200);
        let parsed = crate::json::parse(&r.body).unwrap();
        let spent = parsed.get("spent").and_then(Json::as_f64).unwrap();
        assert!(spent > 0.0);

        let r = route(&s, &req("GET", "/v1/stats", ""));
        assert_eq!(r.status, 200);
        let parsed = crate::json::parse(&r.body).unwrap();
        assert!(
            parsed
                .get("cache")
                .and_then(|c| c.get("global"))
                .and_then(|g| g.get("misses"))
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
    }

    #[test]
    fn denial_maps_to_409() {
        let s = state();
        let id = open_session(&s, r#"{"dataset":"demo","budget":0.000001}"#);
        let q =
            r#"{"query":"BIN demo ON COUNT(*) WHERE { v IN [0, 8) } ERROR 4 CONFIDENCE 0.99;"}"#;
        let r = route(&s, &req("POST", &format!("/v1/sessions/{id}/query"), q));
        assert_eq!(r.status, 409, "{}", r.body);
        assert!(r.body.contains("denied"));
    }

    #[test]
    fn error_paths_get_the_right_codes() {
        let s = state();
        // Unknown endpoint / wrong method.
        assert_eq!(route(&s, &req("GET", "/nope", "")).status, 404);
        assert_eq!(route(&s, &req("DELETE", "/v1/sessions", "")).status, 405);
        // Bad JSON, bad dataset, bad session ids.
        assert_eq!(route(&s, &req("POST", "/v1/sessions", "{")).status, 400);
        assert_eq!(
            route(
                &s,
                &req("POST", "/v1/sessions", r#"{"dataset":"x","budget":1}"#)
            )
            .status,
            404
        );
        assert_eq!(
            route(&s, &req("GET", "/v1/sessions/abc/budget", "")).status,
            400
        );
        assert_eq!(
            route(&s, &req("GET", "/v1/sessions/999/budget", "")).status,
            404
        );
        // A syntactically broken query.
        let id = open_session(&s, r#"{"dataset":"demo","budget":1}"#);
        let r = route(
            &s,
            &req(
                "POST",
                &format!("/v1/sessions/{id}/query"),
                r#"{"query":"SELECT nope"}"#,
            ),
        );
        assert_eq!(r.status, 400, "{}", r.body);
        // A well-formed query over an unknown attribute is 400, not 500.
        let r = route(
            &s,
            &req(
                "POST",
                &format!("/v1/sessions/{id}/query"),
                r#"{"query":"BIN d ON COUNT(*) WHERE { nope IN [0, 1) } ERROR 4 CONFIDENCE 0.99;"}"#,
            ),
        );
        assert_eq!(r.status, 400, "{}", r.body);
    }

    #[test]
    fn expired_sessions_answer_410_not_404() {
        let clock = ManualClock::new();
        let s = Arc::new(
            ServerState::builder(16)
                .dataset("demo", demo_dataset(), EngineConfig::default())
                .clock(Arc::new(clock.clone()))
                .session_ttl(Duration::from_millis(10))
                .build(),
        );
        let id = open_session(&s, r#"{"dataset":"demo","budget":0.5}"#);
        clock.advance(11);
        s.reap_expired().unwrap();

        let q =
            r#"{"query":"BIN demo ON COUNT(*) WHERE { v IN [0, 8) } ERROR 8 CONFIDENCE 0.95;"}"#;
        let r = route(&s, &req("POST", &format!("/v1/sessions/{id}/query"), q));
        assert_eq!(r.status, 410, "{}", r.body);
        let r = route(&s, &req("GET", &format!("/v1/sessions/{id}/budget"), ""));
        assert_eq!(r.status, 410, "{}", r.body);
        // A never-issued id still 404s.
        let r = route(&s, &req("GET", "/v1/sessions/12345/budget", ""));
        assert_eq!(r.status, 404);
        // Stats surface the tombstone and the reclaimed slice.
        let r = route(&s, &req("GET", "/v1/stats", ""));
        let parsed = crate::json::parse(&r.body).unwrap();
        assert_eq!(parsed.get("expired").and_then(Json::as_u64), Some(1));
        let reclaimed = parsed
            .get("datasets")
            .and_then(|d| d.get("demo"))
            .and_then(|d| d.get("budget"))
            .and_then(|b| b.get("reclaimed"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((reclaimed - 0.5).abs() < 1e-12, "nothing was spent");
    }

    #[test]
    fn admin_plane_requires_the_bearer_token() {
        let s = Arc::new(
            ServerState::builder(16)
                .dataset("demo", demo_dataset(), EngineConfig::default())
                .admin_token("s3cret")
                .build(),
        );
        let id = open_session(&s, r#"{"dataset":"demo","budget":0.5}"#);

        // No token / wrong token: 401 on every admin endpoint.
        for (method_, path) in [
            ("GET", "/v1/admin/sessions".to_string()),
            ("POST", format!("/v1/admin/sessions/{id}/expire")),
            ("POST", "/v1/admin/shutdown".to_string()),
        ] {
            assert_eq!(route(&s, &req(method_, &path, "")).status, 401);
            assert_eq!(
                route(&s, &req_auth(method_, &path, "", "wrong")).status,
                401
            );
        }
        // Non-admin endpoints are untouched by the token requirement.
        assert_eq!(route(&s, &req("GET", "/healthz", "")).status, 200);

        // With the token: list shows the session, expire releases it.
        let r = route(&s, &req_auth("GET", "/v1/admin/sessions", "", "s3cret"));
        assert_eq!(r.status, 200, "{}", r.body);
        let parsed = crate::json::parse(&r.body).unwrap();
        let listed = parsed.get("sessions").and_then(Json::as_arr).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].get("session").and_then(Json::as_u64), Some(id));

        let r = route(
            &s,
            &req_auth(
                "POST",
                &format!("/v1/admin/sessions/{id}/expire"),
                "",
                "s3cret",
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let released = crate::json::parse(&r.body)
            .unwrap()
            .get("released")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(released, 0.5);
        // Re-expiring is 410; a never-issued id is 404.
        let r = route(
            &s,
            &req_auth(
                "POST",
                &format!("/v1/admin/sessions/{id}/expire"),
                "",
                "s3cret",
            ),
        );
        assert_eq!(r.status, 410);
        let r = route(
            &s,
            &req_auth("POST", "/v1/admin/sessions/777/expire", "", "s3cret"),
        );
        assert_eq!(r.status, 404);
    }

    #[test]
    fn mutation_endpoint_applies_and_reports_the_new_epoch() {
        let s = state();
        // Insert four rows of v=3.
        let r = route(
            &s,
            &req(
                "POST",
                "/v1/datasets/demo/rows",
                r#"{"op":"insert","rows":[[3],[3],[3],[3]]}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let parsed = crate::json::parse(&r.body).unwrap();
        assert_eq!(parsed.get("inserted").and_then(Json::as_u64), Some(4));
        assert_eq!(parsed.get("epoch").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed.get("mutations_applied").and_then(Json::as_u64),
            Some(1)
        );

        // A fresh query sees the mutated data (8 + 4 rows in [0, 4)).
        let id = open_session(&s, r#"{"dataset":"demo","budget":5}"#);
        let q = r#"{"query":"BIN demo ON COUNT(*) WHERE W = { v IN [0, 4), v IN [4, 8) } ERROR 8 CONFIDENCE 0.95;"}"#;
        let r = route(&s, &req("POST", &format!("/v1/sessions/{id}/query"), q));
        assert_eq!(r.status, 200, "{}", r.body);

        // Delete two of them back out; deletes count only real matches.
        let r = route(
            &s,
            &req(
                "POST",
                "/v1/datasets/demo/rows",
                r#"{"op":"delete","rows":[[3],[3]]}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let parsed = crate::json::parse(&r.body).unwrap();
        assert_eq!(parsed.get("deleted").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("epoch").and_then(Json::as_u64), Some(2));

        // Stats surface the per-tenant epoch and mutation count.
        let r = route(&s, &req("GET", "/v1/stats", ""));
        let parsed = crate::json::parse(&r.body).unwrap();
        let demo = parsed.get("datasets").and_then(|d| d.get("demo")).unwrap();
        assert_eq!(demo.get("epoch").and_then(Json::as_u64), Some(2));
        assert_eq!(
            demo.get("mutations_applied").and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn mutation_endpoint_error_codes() {
        let s = state();
        // Unknown dataset: 404. Wrong method: 405. Malformed body: 400.
        assert_eq!(
            route(
                &s,
                &req(
                    "POST",
                    "/v1/datasets/nope/rows",
                    r#"{"op":"insert","rows":[[1]]}"#
                )
            )
            .status,
            404
        );
        assert_eq!(
            route(&s, &req("GET", "/v1/datasets/demo/rows", "")).status,
            405
        );
        assert_eq!(
            route(&s, &req("POST", "/v1/datasets/demo/rows", "{")).status,
            400
        );
        assert_eq!(
            route(
                &s,
                &req(
                    "POST",
                    "/v1/datasets/demo/rows",
                    r#"{"op":"insert","rows":[]}"#
                )
            )
            .status,
            400
        );
        // Arity mismatch on delete is an engine rejection: 400.
        let r = route(
            &s,
            &req(
                "POST",
                "/v1/datasets/demo/rows",
                r#"{"op":"delete","rows":[[1,2]]}"#,
            ),
        );
        assert_eq!(r.status, 400, "{}", r.body);
        // An oversized batch is refused with 413 before anything applies.
        let big_row = format!("[{}]", vec!["1"; 40_000].join(","));
        let r = route(
            &s,
            &req(
                "POST",
                "/v1/datasets/demo/rows",
                &format!(r#"{{"op":"insert","rows":[{big_row}]}}"#),
            ),
        );
        assert_eq!(r.status, 413, "{}", r.body);
        assert_eq!(
            s.tenant("demo").unwrap().engine.epoch(),
            0,
            "nothing applied"
        );
    }

    #[test]
    fn mutation_endpoint_honors_the_admin_token() {
        let s = Arc::new(
            ServerState::builder(16)
                .dataset("demo", demo_dataset(), EngineConfig::default())
                .admin_token("s3cret")
                .build(),
        );
        let body = r#"{"op":"insert","rows":[[1]]}"#;
        assert_eq!(
            route(&s, &req("POST", "/v1/datasets/demo/rows", body)).status,
            401
        );
        assert_eq!(
            route(
                &s,
                &req_auth("POST", "/v1/datasets/demo/rows", body, "wrong")
            )
            .status,
            401
        );
        let r = route(
            &s,
            &req_auth("POST", "/v1/datasets/demo/rows", body, "s3cret"),
        );
        assert_eq!(r.status, 200, "{}", r.body);
    }

    #[test]
    fn shutdown_endpoint_flags_the_response() {
        let s = state();
        let r = route(&s, &req("POST", "/v1/admin/shutdown", ""));
        assert_eq!(r.status, 202);
        assert!(r.shutdown);
    }
}
