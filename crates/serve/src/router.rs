//! Endpoint dispatch: path + method → handler.
//!
//! | Endpoint                          | Meaning                                  |
//! |-----------------------------------|------------------------------------------|
//! | `GET  /healthz`                   | liveness                                 |
//! | `POST /v1/sessions`               | open a session (dataset + budget slice)  |
//! | `POST /v1/sessions/{id}/query`    | submit a query (200 answered, 409 denied)|
//! | `GET  /v1/sessions/{id}/budget`   | session + engine budget state            |
//! | `GET  /v1/stats`                  | cache counters (global + per dataset)    |
//! | `POST /v1/admin/shutdown`         | begin graceful shutdown                  |
//!
//! Status mapping: malformed bodies and engine-rejected queries (unknown
//! attributes, empty workloads) are 400; unknown datasets/sessions 404;
//! a **denied** query is 409 — denial is part of the privacy protocol,
//! not a server fault, so it gets its own signal distinct from 4xx
//! client errors and 2xx answers.

use std::sync::Arc;

use apex_core::EngineResponse;

use crate::http::{Request, Response};
use crate::json::Json;
use crate::state::ServerState;
use crate::wire;

/// Routes one request. Pure: all side effects go through `state`.
pub fn route(state: &Arc<ServerState>, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => method(req, "GET", || healthz(state)),
        ["v1", "sessions"] => method(req, "POST", || create_session(state, req)),
        ["v1", "sessions", id, "query"] => {
            with_session_id(id, |id| method(req, "POST", || submit(state, id, req)))
        }
        ["v1", "sessions", id, "budget"] => {
            with_session_id(id, |id| method(req, "GET", || budget(state, id)))
        }
        ["v1", "stats"] => method(req, "GET", || stats(state)),
        ["v1", "admin", "shutdown"] => method(req, "POST", shutdown),
        _ => Response::json(404, wire::error_json("no such endpoint")),
    }
}

fn method(req: &Request, want: &str, handler: impl FnOnce() -> Response) -> Response {
    if req.method == want {
        handler()
    } else {
        Response::json(405, wire::error_json(&format!("use {want}")))
    }
}

fn with_session_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => Response::json(400, wire::error_json("session id must be an integer")),
    }
}

fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = req
        .body_str()
        .ok_or_else(|| Response::json(400, wire::error_json("body must be UTF-8 JSON")))?;
    crate::json::parse(text).map_err(|e| Response::json(400, wire::error_json(&e.to_string())))
}

fn healthz(state: &ServerState) -> Response {
    let body = Json::obj(vec![
        ("status", Json::from("ok")),
        ("datasets", Json::from(state.tenants().len())),
        ("sessions", Json::from(state.session_count())),
    ]);
    Response::json(200, body.render())
}

fn create_session(state: &ServerState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let create = match wire::parse_create_session(&body) {
        Ok(c) => c,
        Err(msg) => return Response::json(400, wire::error_json(&msg)),
    };
    let Some(id) = state.create_session(&create.dataset, create.budget) else {
        return Response::json(
            404,
            wire::error_json(&format!("no dataset named \"{}\"", create.dataset)),
        );
    };
    let body = Json::obj(vec![
        ("session", Json::from(id)),
        ("dataset", Json::from(create.dataset)),
        ("allowance", Json::Num(create.budget)),
    ]);
    Response::json(201, body.render())
}

fn submit(state: &ServerState, id: u64, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let (query, accuracy) = match wire::parse_query_request(&body) {
        Ok(qa) => qa,
        Err(msg) => return Response::json(400, wire::error_json(&msg)),
    };
    // Clone the slice handle out so the session map stays unlocked while
    // the mechanism runs (submissions can be slow; lookups must not be).
    let Some(session) = state.with_session(id, |s| s.session.clone()) else {
        return Response::json(404, wire::error_json("no such session"));
    };
    match session.submit(&query, &accuracy) {
        Ok(resp) => {
            let status = match resp {
                EngineResponse::Answered(_) => 200,
                EngineResponse::Denied => 409,
            };
            Response::json(status, wire::engine_response_json(&resp).render())
        }
        Err(e) => Response::json(400, wire::error_json(&e.to_string())),
    }
}

fn budget(state: &ServerState, id: u64) -> Response {
    let Some((dataset, session)) =
        state.with_session(id, |s| (s.dataset.clone(), s.session.clone()))
    else {
        return Response::json(404, wire::error_json("no such session"));
    };
    let engine = session.engine();
    let body = wire::budget_json(
        id,
        &dataset,
        session.allowance(),
        session.spent(),
        engine.budget(),
        engine.spent(),
    );
    Response::json(200, body.render())
}

fn stats(state: &ServerState) -> Response {
    let mut datasets = Vec::new();
    for (name, tenant) in state.tenants() {
        datasets.push((
            name.clone(),
            Json::obj(vec![
                ("cache", wire::cache_stats_json(tenant.cache.local_stats())),
                (
                    "budget",
                    Json::obj(vec![
                        ("budget", Json::Num(tenant.engine.budget())),
                        ("spent", Json::Num(tenant.engine.spent())),
                        ("remaining", Json::Num(tenant.engine.remaining())),
                    ]),
                ),
                ("sessions", Json::from(state.session_count_for(name))),
            ]),
        ));
    }
    let body = Json::obj(vec![
        ("sessions", Json::from(state.session_count())),
        (
            "cache",
            Json::obj(vec![
                ("capacity", Json::from(state.cache().capacity())),
                ("entries", Json::from(state.cache().len())),
                ("global", wire::cache_stats_json(state.cache().stats())),
            ]),
        ),
        ("datasets", Json::Obj(datasets)),
    ]);
    Response::json(200, body.render())
}

fn shutdown() -> Response {
    let mut resp = Response::json(
        202,
        Json::obj(vec![("status", Json::from("shutting down"))]).render(),
    );
    resp.shutdown = true;
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_core::EngineConfig;
    use apex_data::{Attribute, Dataset, Domain, Schema, Value};

    fn state() -> Arc<ServerState> {
        let schema = Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange { min: 0, max: 7 },
        )])
        .unwrap();
        let mut d = Dataset::empty(schema);
        for i in 0..8_i64 {
            for _ in 0..4 {
                d.push(vec![Value::Int(i)]).unwrap();
            }
        }
        Arc::new(
            ServerState::builder(16)
                .dataset("demo", d, EngineConfig::default())
                .build(),
        )
    }

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn full_session_lifecycle_over_the_router() {
        let s = state();
        let r = route(&s, &req("GET", "/healthz", ""));
        assert_eq!(r.status, 200);

        let r = route(
            &s,
            &req("POST", "/v1/sessions", r#"{"dataset":"demo","budget":0.8}"#),
        );
        assert_eq!(r.status, 201, "{}", r.body);
        let id = crate::json::parse(&r.body)
            .unwrap()
            .get("session")
            .and_then(Json::as_u64)
            .unwrap();

        let q = r#"{"query":"BIN demo ON COUNT(*) WHERE W = { v IN [0, 4), v IN [4, 8) } ERROR 8 CONFIDENCE 0.95;"}"#;
        let r = route(&s, &req("POST", &format!("/v1/sessions/{id}/query"), q));
        assert_eq!(r.status, 200, "{}", r.body);
        let parsed = crate::json::parse(&r.body).unwrap();
        assert_eq!(
            parsed.get("status").and_then(Json::as_str),
            Some("answered")
        );
        assert_eq!(
            parsed
                .get("answer")
                .and_then(|a| a.get("counts"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );

        let r = route(&s, &req("GET", &format!("/v1/sessions/{id}/budget"), ""));
        assert_eq!(r.status, 200);
        let parsed = crate::json::parse(&r.body).unwrap();
        let spent = parsed.get("spent").and_then(Json::as_f64).unwrap();
        assert!(spent > 0.0);

        let r = route(&s, &req("GET", "/v1/stats", ""));
        assert_eq!(r.status, 200);
        let parsed = crate::json::parse(&r.body).unwrap();
        assert!(
            parsed
                .get("cache")
                .and_then(|c| c.get("global"))
                .and_then(|g| g.get("misses"))
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
    }

    #[test]
    fn denial_maps_to_409() {
        let s = state();
        let r = route(
            &s,
            &req(
                "POST",
                "/v1/sessions",
                r#"{"dataset":"demo","budget":0.000001}"#,
            ),
        );
        let id = crate::json::parse(&r.body)
            .unwrap()
            .get("session")
            .and_then(Json::as_u64)
            .unwrap();
        let q =
            r#"{"query":"BIN demo ON COUNT(*) WHERE { v IN [0, 8) } ERROR 4 CONFIDENCE 0.99;"}"#;
        let r = route(&s, &req("POST", &format!("/v1/sessions/{id}/query"), q));
        assert_eq!(r.status, 409, "{}", r.body);
        assert!(r.body.contains("denied"));
    }

    #[test]
    fn error_paths_get_the_right_codes() {
        let s = state();
        // Unknown endpoint / wrong method.
        assert_eq!(route(&s, &req("GET", "/nope", "")).status, 404);
        assert_eq!(route(&s, &req("DELETE", "/v1/sessions", "")).status, 405);
        // Bad JSON, bad dataset, bad session ids.
        assert_eq!(route(&s, &req("POST", "/v1/sessions", "{")).status, 400);
        assert_eq!(
            route(
                &s,
                &req("POST", "/v1/sessions", r#"{"dataset":"x","budget":1}"#)
            )
            .status,
            404
        );
        assert_eq!(
            route(&s, &req("GET", "/v1/sessions/abc/budget", "")).status,
            400
        );
        assert_eq!(
            route(&s, &req("GET", "/v1/sessions/999/budget", "")).status,
            404
        );
        // A syntactically broken query.
        let id = {
            let r = route(
                &s,
                &req("POST", "/v1/sessions", r#"{"dataset":"demo","budget":1}"#),
            );
            crate::json::parse(&r.body)
                .unwrap()
                .get("session")
                .and_then(Json::as_u64)
                .unwrap()
        };
        let r = route(
            &s,
            &req(
                "POST",
                &format!("/v1/sessions/{id}/query"),
                r#"{"query":"SELECT nope"}"#,
            ),
        );
        assert_eq!(r.status, 400, "{}", r.body);
        // A well-formed query over an unknown attribute is 400, not 500.
        let r = route(
            &s,
            &req(
                "POST",
                &format!("/v1/sessions/{id}/query"),
                r#"{"query":"BIN d ON COUNT(*) WHERE { nope IN [0, 1) } ERROR 4 CONFIDENCE 0.99;"}"#,
            ),
        );
        assert_eq!(r.status, 400, "{}", r.body);
    }

    #[test]
    fn shutdown_endpoint_flags_the_response() {
        let s = state();
        let r = route(&s, &req("POST", "/v1/admin/shutdown", ""));
        assert_eq!(r.status, 202);
        assert!(r.shutdown);
    }
}
