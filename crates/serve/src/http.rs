//! A minimal HTTP/1.1 server over `std::net` — no async runtime, per the
//! repo's offline std-only policy.
//!
//! One acceptor thread hands accepted connections to a fixed pool of
//! worker threads through a **bounded** `mpsc` channel (connections past
//! the backlog are shed at accept time); each worker parses one request
//! per connection (`Connection: close` semantics), routes it through the
//! handler, and writes the JSON response. Request bodies, header lines,
//! and header counts are capped; every socket carries read/write
//! timeouts *and* each request has a wall-clock deadline checked between
//! reads, so a slow-dripping client cannot hold a worker past
//! `REQUEST_DEADLINE + IO_TIMEOUT` no matter how it paces its bytes.
//! Malformed requests get proper 4xx responses.
//!
//! Graceful shutdown: [`ServerHandle::stop`] (or a handler response with
//! the `shutdown` flag, which is how `POST /v1/admin/shutdown` works)
//! flips a shared flag and nudges the acceptor awake with a loopback
//! connection (wildcard binds are nudged via the loopback address of the
//! same family); the acceptor drops the channel sender, the workers
//! drain in-flight requests and exit, and [`ServerHandle::join`] returns.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Largest accepted request body.
pub(crate) const MAX_BODY: usize = 1 << 20;
/// Largest accepted request line / header line.
pub(crate) const MAX_LINE: usize = 8 << 10;
/// Most header lines accepted per request.
pub(crate) const MAX_HEADERS: usize = 100;
/// Per-socket read/write timeout (bounds each individual read).
pub(crate) const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Wall-clock budget for reading one whole request; checked between
/// reads, so a byte-dripping client is cut off at
/// `REQUEST_DEADLINE + IO_TIMEOUT` worst case.
pub(crate) const REQUEST_DEADLINE: Duration = Duration::from_secs(20);
/// Accepted connections queued ahead of the workers; beyond this the
/// acceptor sheds new connections instead of buffering file descriptors
/// without bound.
const QUEUE_CAP: usize = 1024;
/// Back-off before retrying a failing `accept()` (e.g. EMFILE under a
/// connection flood) — without it the acceptor would busy-spin.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(50);

/// A parsed request: method, path, headers, and raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method ("GET", "POST", …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when the request carried none).
    pub body: Vec<u8>,
}

impl Request {
    /// A header-less request (tests and in-process routing).
    pub fn new(method: &str, path: &str, body: &str) -> Self {
        Self {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// The body as UTF-8 text (`None` when it is not valid UTF-8).
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The first header named `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A response to write: status code plus a JSON body. `shutdown` asks the
/// server to stop accepting after this response is delivered.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always served as `application/json`).
    pub body: String,
    /// When true, the server begins graceful shutdown after responding.
    pub shutdown: bool,
    /// Seconds for a `Retry-After` header (backpressure 503s carry one).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            shutdown: false,
            retry_after: None,
        }
    }

    /// The backpressure response: 503 with `Retry-After: retry_secs` —
    /// what a shard whose work queue is full sheds load with.
    pub fn unavailable(retry_secs: u64) -> Self {
        Self {
            status: 503,
            body: "{\"error\":\"shard overloaded, retry later\"}".to_string(),
            shutdown: false,
            retry_after: Some(retry_secs),
        }
    }
}

pub(crate) fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Reads one request from the stream. `Ok(Err(status))` reports a
/// malformed or over-deadline request the caller should answer with that
/// status code.
fn read_request(
    stream: &mut TcpStream,
    deadline: Instant,
) -> std::io::Result<Result<Request, u16>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // Request line.
    if let Err(status) = read_line_capped(&mut reader, &mut line, deadline)? {
        return Ok(Err(status));
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t.to_string(), v),
        _ => return Ok(Err(400)),
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Err(501));
    }
    let path = target.split('?').next().unwrap_or("").to_string();

    // Headers: Content-Length frames the body; the rest (notably
    // Authorization) is kept for the router.
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for header_count in 0.. {
        if header_count > MAX_HEADERS {
            return Ok(Err(400));
        }
        if let Err(status) = read_line_capped(&mut reader, &mut line, deadline)? {
            return Ok(Err(status));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                match value.parse::<usize>() {
                    Ok(n) if n <= MAX_BODY => content_length = n,
                    Ok(_) => return Ok(Err(413)),
                    Err(_) => return Ok(Err(400)),
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // Chunked bodies are not part of this API's contract.
                return Ok(Err(501));
            }
            headers.push((name.to_ascii_lowercase(), value.to_string()));
        } else {
            return Ok(Err(400));
        }
    }

    // Body, in chunks with the deadline checked between reads — a client
    // dripping one byte per (almost-)timeout cannot stretch this past
    // the deadline.
    let mut body = Vec::with_capacity(content_length.min(64 << 10));
    let mut chunk = [0u8; 8 << 10];
    while body.len() < content_length {
        if Instant::now() >= deadline {
            return Ok(Err(408));
        }
        let want = (content_length - body.len()).min(chunk.len());
        let n = reader.read(&mut chunk[..want])?;
        if n == 0 {
            return Ok(Err(400)); // EOF before the declared length
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Ok(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Reads one CRLF- (or LF-) terminated line, bounded by [`MAX_LINE`] and
/// `deadline`. `Ok(Err(status))` on EOF/overlong lines (400) or deadline
/// exhaustion (408).
fn read_line_capped(
    reader: &mut BufReader<&mut TcpStream>,
    line: &mut String,
    deadline: Instant,
) -> std::io::Result<Result<(), u16>> {
    line.clear();
    loop {
        if Instant::now() >= deadline {
            return Ok(Err(408));
        }
        let (consumed, done) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                return Ok(Err(400)); // EOF mid-line
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if line.len() + i + 1 > MAX_LINE {
                        return Ok(Err(400));
                    }
                    line.push_str(&String::from_utf8_lossy(&buf[..=i]));
                    (i + 1, true)
                }
                None => {
                    if line.len() + buf.len() > MAX_LINE {
                        return Ok(Err(400));
                    }
                    line.push_str(&String::from_utf8_lossy(buf));
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if done {
            return Ok(Ok(()));
        }
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    write_response_conn(stream, resp, false)
}

/// Appends one serialized response to `out`; `keep_alive` picks the
/// `Connection:` header the sharded server's connection-migration loop
/// relies on. Split from the write so shard workers can accumulate the
/// responses to a pipelined burst and flush them in a single syscall.
pub(crate) fn append_response(out: &mut Vec<u8>, resp: &Response, keep_alive: bool) {
    let retry = resp
        .retry_after
        .map(|secs| format!("Retry-After: {secs}\r\n"))
        .unwrap_or_default();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry}Connection: {}\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    out.reserve(head.len() + resp.body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(resp.body.as_bytes());
}

/// Writes one response; head and body in ONE write: with TCP_NODELAY a
/// separate head write is a separate packet, and on the serving hot
/// path the extra syscall + segment per response is measurable.
pub(crate) fn write_response_conn(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut wire = Vec::new();
    append_response(&mut wire, resp, keep_alive);
    stream.write_all(&wire)
}

/// What [`parse_buffered`] made of the bytes accumulated so far.
#[derive(Debug)]
pub(crate) enum BufParse {
    /// No complete request yet — keep reading.
    NeedMore,
    /// Malformed beyond repair; answer with this status and close.
    Bad(u16),
    /// One complete request, consuming this many bytes of the buffer.
    Complete(Request, usize),
}

/// Incremental request parsing over a connection-owned buffer — the
/// nonblocking sharded accept loop's counterpart to [`read_request`]
/// (same limits, same status mapping), re-invoked as bytes arrive and
/// across keep-alive requests (leftover pipelined bytes stay in the
/// buffer).
pub(crate) fn parse_buffered(buf: &[u8]) -> BufParse {
    // Head = everything through the first blank line.
    let Some(head_len) = find_blank_line(buf) else {
        // A head that cannot fit the caps will never become valid.
        return if buf.len() > MAX_LINE * (MAX_HEADERS + 2) {
            BufParse::Bad(400)
        } else {
            BufParse::NeedMore
        };
    };
    let head = &buf[..head_len];
    let mut lines = head.split(|&b| b == b'\n').map(|l| {
        let l = l.strip_suffix(b"\r").unwrap_or(l);
        String::from_utf8_lossy(l).into_owned()
    });

    // Request line.
    let Some(request_line) = lines.next() else {
        return BufParse::Bad(400);
    };
    if request_line.len() > MAX_LINE {
        return BufParse::Bad(400);
    }
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t.to_string(), v),
        _ => return BufParse::Bad(400),
    };
    if !version.starts_with("HTTP/1.") {
        return BufParse::Bad(501);
    }
    let path = target.split('?').next().unwrap_or("").to_string();

    // Headers, same caps and semantics as the blocking reader.
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for (count, line) in lines.enumerate() {
        if count >= MAX_HEADERS || line.len() > MAX_LINE {
            return BufParse::Bad(400);
        }
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let Some((name, value)) = line.split_once(':') else {
            return BufParse::Bad(400);
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY => content_length = n,
                Ok(_) => return BufParse::Bad(413),
                Err(_) => return BufParse::Bad(400),
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return BufParse::Bad(501);
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }

    let total = head_len + content_length;
    if buf.len() < total {
        return BufParse::NeedMore;
    }
    BufParse::Complete(
        Request {
            method,
            path,
            headers,
            body: buf[head_len..total].to_vec(),
        },
        total,
    )
}

/// Index just past the first `\r\n\r\n` (or lone `\n\n`) head terminator.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while let Some(rel) = buf[i..].iter().position(|&b| b == b'\n') {
        let at = i + rel;
        let rest = &buf[at + 1..];
        if rest.first() == Some(&b'\n') {
            return Some(at + 2);
        }
        if rest.first() == Some(&b'\r') && rest.get(1) == Some(&b'\n') {
            return Some(at + 3);
        }
        i = at + 1;
    }
    None
}

/// Control handle for a running server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: stop accepting, drain in-flight
    /// requests, let workers exit. Idempotent.
    pub fn stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            nudge(self.addr);
        }
    }

    /// Blocks until the server has fully shut down (after [`ServerHandle::stop`]
    /// or a handler-initiated shutdown).
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Wakes a blocking `accept()` with one throwaway loopback connection.
/// Wildcard binds (`0.0.0.0` / `::`) are not connectable on every
/// platform, so the nudge targets the loopback address of the same
/// family instead.
fn nudge(mut addr: SocketAddr) {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

/// Starts the server: binds `addr`, spawns `threads` workers plus one
/// acceptor, and returns immediately with the control handle. `handler`
/// maps each request to a response; a panicking handler answers 500 and
/// the worker survives.
///
/// # Errors
/// Propagates bind failures.
pub fn serve<A, F>(addr: A, threads: usize, handler: F) -> std::io::Result<ServerHandle>
where
    A: ToSocketAddrs,
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let handler = Arc::new(handler);
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(QUEUE_CAP);
    let rx = Arc::new(Mutex::new(rx));

    let threads = threads.max(1);
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let rx = rx.clone();
        let handler = handler.clone();
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || loop {
            // Holding the receiver lock only while popping keeps the other
            // workers runnable during request handling.
            let next = { rx.lock().expect("no poisoning").recv() };
            let Ok(mut stream) = next else {
                return; // channel closed: shutdown
            };
            let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
            let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
            let deadline = Instant::now() + REQUEST_DEADLINE;
            let resp = match read_request(&mut stream, deadline) {
                Ok(Ok(req)) => {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&req))) {
                        Ok(resp) => resp,
                        Err(_) => Response::json(500, "{\"error\":\"internal error\"}".into()),
                    }
                }
                Ok(Err(status)) => {
                    Response::json(status, format!("{{\"error\":\"{}\"}}", status_text(status)))
                }
                Err(_) => Response::json(408, "{\"error\":\"read failed\"}".into()),
            };
            let _ = write_response(&mut stream, &resp);
            if resp.shutdown && !stop.swap(true, Ordering::SeqCst) {
                nudge(local);
            }
        }));
    }

    let acceptor = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    // A full queue sheds the connection (dropping it
                    // closes the socket) instead of buffering file
                    // descriptors without bound during a flood.
                    Ok(stream) => match tx.try_send(stream) {
                        Ok(()) | Err(TrySendError::Full(_)) => {}
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    Err(_) => {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // accept() can fail persistently (EMFILE under
                        // flood); back off instead of busy-spinning.
                        std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    }
                }
            }
            // Dropping `tx` here closes the channel; workers drain and exit.
        })
    };

    Ok(ServerHandle {
        addr: local,
        stop,
        acceptor: Some(acceptor),
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One scripted request against an echo handler.
    fn roundtrip(raw: &str) -> String {
        let handle = serve("127.0.0.1:0", 2, |req: &Request| {
            Response::json(
                200,
                format!(
                    "{{\"method\":\"{}\",\"path\":\"{}\",\"len\":{}}}",
                    req.method,
                    req.path,
                    req.body.len()
                ),
            )
        })
        .unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        handle.stop();
        handle.join();
        out
    }

    #[test]
    fn parses_and_answers_a_post() {
        let out = roundtrip("POST /x?q=1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(
            out.ends_with("{\"method\":\"POST\",\"path\":\"/x\",\"len\":5}"),
            "{out}"
        );
    }

    #[test]
    fn headers_reach_the_handler_case_insensitively() {
        let handle = serve("127.0.0.1:0", 1, |req: &Request| {
            Response::json(
                200,
                format!(
                    "{{\"auth\":\"{}\"}}",
                    req.header("Authorization").unwrap_or("-")
                ),
            )
        })
        .unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\nAUTHORIZATION:  Bearer tok \r\n\r\n")
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.ends_with("{\"auth\":\"Bearer tok\"}"), "{out}");
        handle.stop();
        handle.join();
    }

    #[test]
    fn malformed_requests_get_4xx() {
        let out = roundtrip("NONSENSE\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400 "), "{out}");
        let out = roundtrip("GET / HTTP/2\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 501 "), "{out}");
        let out = roundtrip("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 413 "), "{out}");
    }

    #[test]
    fn handler_panic_becomes_500() {
        let handle = serve("127.0.0.1:0", 1, |_req: &Request| -> Response {
            panic!("boom")
        })
        .unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 500 "), "{out}");
        // The worker survived the panic and still serves.
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 500 "), "{out}");
        handle.stop();
        handle.join();
    }

    #[test]
    fn header_count_is_capped() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..200 {
            raw.push_str(&format!("X-Pad-{i}: 1\r\n"));
        }
        raw.push_str("\r\n");
        let out = roundtrip(&raw);
        assert!(out.starts_with("HTTP/1.1 400 "), "{out}");
    }

    #[test]
    fn wildcard_bind_still_shuts_down() {
        // The shutdown nudge must reach a 0.0.0.0 listener (it targets
        // loopback of the same family, since wildcard addresses are not
        // connectable everywhere).
        let handle = serve("0.0.0.0:0", 1, |_req: &Request| {
            Response::json(200, "{}".into())
        })
        .unwrap();
        handle.stop();
        handle.join();
    }

    #[test]
    fn stop_is_graceful_and_idempotent() {
        let handle = serve("127.0.0.1:0", 2, |_req: &Request| {
            Response::json(200, "{}".into())
        })
        .unwrap();
        handle.stop();
        handle.stop();
        handle.join();
    }
}
