//! Injectable time for session TTLs.
//!
//! The reaper's contract ("a session idle longer than the TTL expires,
//! and its unspent slice is released exactly once") is only testable if
//! tests control the clock — real-sleep TTL tests are either slow or
//! flaky. So the server state takes a [`Clock`] trait object:
//! [`SystemClock`] in production, [`ManualClock`] (an atomic counter the
//! test advances) everywhere determinism matters.
//!
//! Millisecond ticks on a `u64` are plenty: TTLs are seconds-to-hours,
//! and 2⁶⁴ ms is ~584 million years of uptime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic millisecond clock the server reads idle times from.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Milliseconds since an arbitrary (per-clock) origin. Must never
    /// decrease.
    fn now_millis(&self) -> u64;
}

/// The production clock: monotonic milliseconds since construction
/// (`Instant`-backed, so wall-clock jumps cannot expire sessions).
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_millis(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for deterministic TTL tests: time only moves
/// when the test calls [`ManualClock::advance`]. Clones share the same
/// underlying counter.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    millis: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock stopped at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `millis`.
    pub fn advance(&self, millis: u64) {
        self.millis.fetch_add(millis, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_millis(&self) -> u64 {
        self.millis.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_told() {
        let c = ManualClock::new();
        let shared: Arc<dyn Clock> = Arc::new(c.clone());
        assert_eq!(shared.now_millis(), 0);
        c.advance(250);
        assert_eq!(shared.now_millis(), 250);
        c.advance(1);
        assert_eq!(shared.now_millis(), 251);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_millis();
        let b = c.now_millis();
        assert!(b >= a);
    }
}
