//! Snapshots: periodic compaction of the ledger + session table, and
//! the state-directory layout recovery reads.
//!
//! A WAL alone grows without bound and replays from the beginning of
//! time. Compaction folds everything the WAL said so far into one
//! atomic **snapshot** (per-tenant spent/reclaimed budget, the live
//! session table, expired-session tombstones), then rotates to a fresh
//! WAL generation. The state directory therefore holds:
//!
//! ```text
//! state-dir/
//!   snapshot.bin    one framed, checksummed snapshot (atomic rename)
//!   wal-<GEN>.log   generation-numbered WALs; the snapshot records the
//!                   generation it covers *through*, recovery replays
//!                   only generations beyond it
//! ```
//!
//! The rotation protocol is crash-safe at every step: the snapshot is
//! written to a temp file, fsynced, then renamed over `snapshot.bin`
//! (the commit point); a new WAL generation is only opened after the
//! rename, and stale generations are deleted last. A crash anywhere
//! leaves either the old snapshot + old WALs, or the new snapshot with
//! the old WALs correctly ignored (their generation is covered) — never
//! a double-count, never a loss.
//!
//! Snapshot corruption is **always** fatal for recovery: unlike a WAL
//! tail, a snapshot is compacted history with nothing to truncate back
//! to. (The previous snapshot was deleted only after this one committed,
//! so a torn rename cannot even arise on POSIX rename semantics.)

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::wal::{crc32, push_rows, push_str, take_f64, take_rows, take_str, take_u32, take_u64};

/// Snapshot file magic (format version pinned in the last byte).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"APEXSNP1";

/// The snapshot file name within a state directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// One tenant's persisted ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantLedger {
    /// Tenant (dataset) name.
    pub name: String,
    /// Actual privacy loss spent against the tenant's budget `B`.
    pub spent: f64,
    /// Total unspent allowance released by closed/expired sessions.
    pub reclaimed: f64,
}

/// One live session as persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionImage {
    /// Server-assigned session id.
    pub id: u64,
    /// The tenant dataset the session is bound to.
    pub dataset: String,
    /// The session's budget slice.
    pub allowance: f64,
    /// Loss already charged to the slice.
    pub spent: f64,
}

/// One applied row mutation retained for replay. Only **resident**
/// (in-memory) tenants need journaling here: a paged tenant's store is
/// its own durable mutation log, and its WAL records are skipped on
/// replay once the store epoch covers them. For resident tenants the
/// journal is the sole durable copy, so compaction must carry every
/// record forward — the journal grows with the tenant's mutation
/// history (mutations are admin-plane operations, not the query path).
#[derive(Debug, Clone, PartialEq)]
pub struct MutationImage {
    /// The mutated tenant dataset.
    pub dataset: String,
    /// `true` for an insert batch, `false` for a delete batch.
    pub insert: bool,
    /// Dataset epoch after this mutation applied.
    pub epoch_after: u64,
    /// The requested row batch (never empty).
    pub rows: Vec<Vec<apex_data::Value>>,
}

/// Everything a snapshot captures.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// WAL generations `≤ covered_gen` are folded into this snapshot;
    /// recovery replays only generations beyond it.
    pub covered_gen: u64,
    /// Next session id to hand out.
    pub next_session: u64,
    /// Per-tenant ledgers.
    pub tenants: Vec<TenantLedger>,
    /// Live sessions. (Closed sessions need no tombstone list: ids are
    /// allocated sequentially, so `next_session` is the watermark — any
    /// id below it that is not live once existed and is gone.)
    pub sessions: Vec<SessionImage>,
    /// Resident tenants' applied-mutation journal, in apply order.
    /// Encoded as an optional trailing section, so snapshots written
    /// before live mutations existed still decode (as an empty journal).
    pub mutations: Vec<MutationImage>,
}

impl Snapshot {
    /// Serializes the snapshot payload (magic and frame excluded).
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.covered_gen.to_le_bytes());
        out.extend_from_slice(&self.next_session.to_le_bytes());
        out.extend_from_slice(
            &u32::try_from(self.tenants.len())
                .expect("few tenants")
                .to_le_bytes(),
        );
        for t in &self.tenants {
            push_str(&mut out, &t.name);
            out.extend_from_slice(&t.spent.to_le_bytes());
            out.extend_from_slice(&t.reclaimed.to_le_bytes());
        }
        out.extend_from_slice(
            &u32::try_from(self.sessions.len())
                .expect("bounded sessions")
                .to_le_bytes(),
        );
        for s in &self.sessions {
            out.extend_from_slice(&s.id.to_le_bytes());
            push_str(&mut out, &s.dataset);
            out.extend_from_slice(&s.allowance.to_le_bytes());
            out.extend_from_slice(&s.spent.to_le_bytes());
        }
        // Optional trailing section: omitted entirely when empty, so
        // the encoding of a journal-free snapshot is unchanged from the
        // pre-mutation format.
        if !self.mutations.is_empty() {
            out.extend_from_slice(
                &u32::try_from(self.mutations.len())
                    .expect("bounded journal")
                    .to_le_bytes(),
            );
            for m in &self.mutations {
                push_str(&mut out, &m.dataset);
                out.push(u8::from(m.insert));
                out.extend_from_slice(&m.epoch_after.to_le_bytes());
                push_rows(&mut out, &m.rows);
            }
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> Option<Snapshot> {
        let (covered_gen, rest) = take_u64(payload)?;
        let (next_session, rest) = take_u64(rest)?;
        let (n_tenants, mut rest) = take_u32(rest)?;
        let mut tenants = Vec::with_capacity(n_tenants.min(1024) as usize);
        for _ in 0..n_tenants {
            let (name, r) = take_str(rest)?;
            let (spent, r) = take_f64(r)?;
            let (reclaimed, r) = take_f64(r)?;
            tenants.push(TenantLedger {
                name,
                spent,
                reclaimed,
            });
            rest = r;
        }
        let (n_sessions, mut rest) = take_u32(rest)?;
        let mut sessions = Vec::with_capacity(n_sessions.min(1024) as usize);
        for _ in 0..n_sessions {
            let (id, r) = take_u64(rest)?;
            let (dataset, r) = take_str(r)?;
            let (allowance, r) = take_f64(r)?;
            let (spent, r) = take_f64(r)?;
            sessions.push(SessionImage {
                id,
                dataset,
                allowance,
                spent,
            });
            rest = r;
        }
        let mut mutations = Vec::new();
        if !rest.is_empty() {
            let (n, mut rest2) = take_u32(rest)?;
            for _ in 0..n {
                let (dataset, r) = take_str(rest2)?;
                let (&flag, r) = r.split_first()?;
                let insert = match flag {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                let (epoch_after, r) = take_u64(r)?;
                let (rows, r) = take_rows(r)?;
                mutations.push(MutationImage {
                    dataset,
                    insert,
                    epoch_after,
                    rows,
                });
                rest2 = r;
            }
            rest = rest2;
        }
        rest.is_empty().then_some(Snapshot {
            covered_gen,
            next_session,
            tenants,
            sessions,
            mutations,
        })
    }

    /// Serializes the whole file image: magic + framed payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 8 + payload.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("small snapshot")
                .to_le_bytes(),
        );
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a file image; `None` on any damage (magic, frame,
    /// checksum, structure, trailing bytes) — snapshot damage is never
    /// partially recoverable.
    pub fn decode(bytes: &[u8]) -> Option<Snapshot> {
        let rest = bytes.strip_prefix(SNAPSHOT_MAGIC.as_slice())?;
        let (len, rest) = take_u32(rest)?;
        let (crc, rest) = take_u32(rest)?;
        if rest.len() != len as usize || crc32(rest) != crc {
            return None;
        }
        Snapshot::decode_payload(rest)
    }
}

/// Writes the snapshot atomically: temp file, fsync, rename over
/// [`SNAPSHOT_FILE`], best-effort directory sync. The rename is the
/// commit point.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_snapshot(dir: &Path, snapshot: &Snapshot) -> io::Result<()> {
    let tmp = dir.join("snapshot.tmp");
    let image = snapshot.encode();
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Make the rename itself durable where the platform allows it.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads the snapshot; `Ok(None)` when none exists yet.
///
/// # Errors
/// I/O failures, or `InvalidData` when the file exists but is damaged
/// (always fatal — see the module docs).
pub fn read_snapshot(dir: &Path) -> io::Result<Option<Snapshot>> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    Snapshot::decode(&bytes).map(Some).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corrupt snapshot at {}", path.display()),
        )
    })
}

/// Per-shard state directory under a shard set's root: `root/shard-K`.
/// Each shard's WAL generations, snapshot, and dir lock live entirely
/// inside its own subdirectory, so shards recover independently (and in
/// parallel) and never contend on one another's files.
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

/// Path of the WAL file for `gen` within `dir`.
pub fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:08}.log"))
}

/// Generation numbers of all WAL files in `dir`, ascending.
///
/// # Errors
/// Propagates directory-read failures.
pub fn list_wal_gens(dir: &Path) -> io::Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            gens.push(gen);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Deletes WAL generations `≤ covered_gen` (already folded into the
/// snapshot). Best-effort: a file that refuses to die is retried on the
/// next compaction; it is *covered*, so recovery ignores it either way.
pub fn prune_wals(dir: &Path, covered_gen: u64) {
    if let Ok(gens) = list_wal_gens(dir) {
        for gen in gens {
            if gen <= covered_gen {
                let _ = fs::remove_file(wal_path(dir, gen));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            covered_gen: 3,
            next_session: 17,
            tenants: vec![
                TenantLedger {
                    name: "adult".into(),
                    spent: 0.375,
                    reclaimed: 0.125,
                },
                TenantLedger {
                    name: "taxi".into(),
                    spent: 0.0,
                    reclaimed: 0.0,
                },
            ],
            sessions: vec![SessionImage {
                id: 12,
                dataset: "adult".into(),
                allowance: 0.25,
                spent: 0.0625,
            }],
            mutations: vec![MutationImage {
                dataset: "adult".into(),
                insert: true,
                epoch_after: 2,
                rows: vec![vec![
                    apex_data::Value::Int(5),
                    apex_data::Value::Str("x".into()),
                    apex_data::Value::Null,
                ]],
            }],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let s = sample();
        assert_eq!(Snapshot::decode(&s.encode()), Some(s));
        let empty = Snapshot::default();
        assert_eq!(Snapshot::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn any_single_bit_flip_is_fatal() {
        let image = sample().encode();
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut damaged = image.clone();
                damaged[byte] ^= 1 << bit;
                assert_eq!(
                    Snapshot::decode(&damaged),
                    None,
                    "flip at {byte}:{bit} must be detected"
                );
            }
        }
        // Truncations and trailing garbage are fatal too.
        for cut in 0..image.len() {
            assert_eq!(Snapshot::decode(&image[..cut]), None, "cut at {cut}");
        }
        let mut padded = image.clone();
        padded.push(0);
        assert_eq!(Snapshot::decode(&padded), None);
    }

    #[test]
    fn directory_layout_round_trips() {
        let dir = crate::testutil::temp_dir("snapshot");
        fs::create_dir_all(&dir).unwrap();

        assert_eq!(read_snapshot(&dir).unwrap(), None);
        let s = sample();
        write_snapshot(&dir, &s).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some(s.clone()));
        // Overwrite is atomic-by-rename and reads back the new content.
        let mut s2 = s.clone();
        s2.next_session = 99;
        write_snapshot(&dir, &s2).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some(s2));

        // Corruption on disk surfaces as InvalidData.
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_snapshot(&dir).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        // WAL generation listing and pruning.
        for gen in [1u64, 2, 5] {
            fs::write(wal_path(&dir, gen), b"x").unwrap();
        }
        fs::write(dir.join("wal-junk.log"), b"x").unwrap();
        assert_eq!(list_wal_gens(&dir).unwrap(), vec![1, 2, 5]);
        prune_wals(&dir, 2);
        assert_eq!(list_wal_gens(&dir).unwrap(), vec![5]);

        fs::remove_dir_all(&dir).unwrap();
    }
}
