//! `apex-serve --self-test`: spin up on an ephemeral port, fire a
//! scripted concurrent workload through real sockets, and assert the
//! service's invariants — the end-to-end gate CI runs.
//!
//! The posture follows HISTEX (PAPERS.md): drive concurrent histories
//! against a live server and check the isolation-level contract on the
//! observed outcomes. Here the contract is APEx's admit-then-charge
//! semantics under concurrency:
//!
//! 1. **budget conservation** — per dataset, the engine's spent loss
//!    never exceeds `B`, no session exceeds its slice, and the engine's
//!    ledger equals the sum of the ε values clients saw on the wire;
//! 2. **protocol discipline** — every response is 2xx or 409 (denial);
//!    anything else fails the test;
//! 3. **shared warm-up** — sessions submit structurally identical
//!    workloads, so the shared translator cache must report cross-session
//!    hits (> 0) in `/v1/stats`;
//! 4. **durability** — the whole run is write-ahead logged to a state
//!    directory; after shutdown the state is **restarted in-process**
//!    and the recovered ledger must equal, per dataset, what the clients
//!    were acked on the wire. When the caller supplies a state dir that
//!    already has history (CI runs the gate twice against one
//!    directory), the run starts from the *recovered* baseline and the
//!    equality check covers baseline + new traffic — any divergence
//!    between what was persisted and what was acked fails the gate.
//! 5. **paged persistence** — the adult/taxi tenants live in the durable
//!    paged store under a data dir (caller-supplied, or `<state dir>/data`
//!    so the twice-against-one-dir smoke reopens it). The first pass
//!    ingests; every later pass must *open* the stores from disk — zero
//!    re-synthesis — and a double integrity scan plus the workload must
//!    leave the buffer-pool hit counter > 0. Per-tenant transcript logs
//!    ride the same store and must replay from disk, record for record,
//!    after shutdown.
//! 6. **live mutations** — rows are inserted over the wire into a paged
//!    tenant and a resident tenant mid-run; the ack's epoch must match
//!    the owning engine and the stats aggregation, a query admitted
//!    afterwards answers at the new epoch, and the restart leg must
//!    reproduce the epoch, the mutation count, and the row count from
//!    disk (store replay for the paged tenant, WAL/snapshot-journal
//!    replay for the resident one).
//!
//! Sessions *oversubscribe* on purpose: each holds a slice of `B` large
//! enough that the slices jointly exceed `B`, so both the per-session and
//! the engine-wide admission bound are exercised.
//!
//! The run ends with the **compaction-pause scenario**: a deliberately
//! slow query (a many-row prefix workload on the `wide` tenant, whose
//! cold translator prepare takes hundreds of milliseconds) is put in
//! flight, and WAL rotations are forced against it. Since the
//! evaluate/charge split, the ledger gate's shared side covers only the
//! commit+append pair, so a rotation must complete *while the query is
//! still evaluating* — if none does, the gate is spanning mechanism runs
//! again and the test fails.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use apex_core::{EngineConfig, Mode, PreparedTranslator};
use apex_data::store::{Manifest, PageLog};
use apex_data::synth::{adult_dataset, nytaxi_dataset};
use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
use apex_mech::mc::McConfig;
use apex_mech::PreparedQuery;
use apex_query::{ExplorationQuery, Strategy};

use crate::client;
use crate::json::Json;
use crate::shard::{serve_sharded, ServeConfig, ShardSet};
use crate::state::{PersistOptions, RecoverError, ServerState, ServerStateBuilder};

/// Self-test knobs (`--shards/--workers-per-shard/--sessions/--submits/
/// --rows/--cache-cap/--state-dir`).
#[derive(Debug, Clone)]
pub struct SelfTestConfig {
    /// Worker threads per shard.
    pub server_threads: usize,
    /// Shard count: each shard owns its own engines, WAL sequence, and
    /// `state-dir/shard-K/` directory; tenants route by consistent
    /// hashing. `1` reproduces the unsharded behavior.
    pub shards: usize,
    /// Concurrent analyst sessions (client threads).
    pub sessions: usize,
    /// Query submissions per session.
    pub submits: usize,
    /// Rows per synthetic dataset.
    pub rows: usize,
    /// Shared translator-cache capacity.
    pub cache_cap: usize,
    /// State directory for the durability leg; `None` uses (and cleans
    /// up) a fresh temp dir. Passing a dir that already holds state runs
    /// the gate in *recovered* mode on top of it.
    pub state_dir: Option<PathBuf>,
    /// Durable dataset directory for the persistence leg; `None` keeps
    /// the paged stores under `<state dir>/data`, so a rerun against one
    /// state dir automatically exercises ingest-then-reopen.
    pub data_dir: Option<PathBuf>,
    /// Workload rows of the slow query the compaction-pause scenario
    /// holds in flight (more rows → slower cold translator prepare).
    /// The default suits release builds; debug-mode tests pass a smaller
    /// count.
    pub slow_query_prefixes: usize,
}

impl Default for SelfTestConfig {
    fn default() -> Self {
        Self {
            server_threads: 4,
            shards: 1,
            sessions: 8,
            submits: 6,
            rows: 2_000,
            cache_cap: 64,
            state_dir: None,
            data_dir: None,
            slow_query_prefixes: 256,
        }
    }
}

/// What the scripted workload observed.
#[derive(Debug, Clone, Default)]
pub struct SelfTestReport {
    /// Answered submissions (HTTP 200).
    pub answered: u64,
    /// Denied submissions (HTTP 409).
    pub denied: u64,
    /// Shared-cache hits across all scopes at the end.
    pub cache_hits: u64,
    /// Shared-cache misses across all scopes at the end.
    pub cache_misses: u64,
    /// Per-dataset `(name, spent, budget)` at the end.
    pub budgets: Vec<(String, f64, f64)>,
    /// Per-tenant `(name, millis)` cold translator-prepare timings for a
    /// representative workload, through the same auto-selected operator
    /// path production takes. Observability only — printed, never
    /// asserted on (machine speed is not an invariant).
    pub prepare_ms: Vec<(String, f64)>,
    /// Whether the run started from a non-empty recovered ledger (the
    /// second CI pass against one state dir).
    pub recovered_baseline: bool,
    /// WAL records the post-shutdown restart replayed.
    pub recovery_replayed: usize,
    /// Longest forced WAL rotation observed while the slow query was in
    /// flight (the compaction pause the evaluate/charge split bounds).
    pub compaction_pause_millis: u64,
    /// Wall time of the slow query the rotations raced against.
    pub slow_query_millis: u64,
    /// Forced rotations that completed while the slow query was still
    /// evaluating (must be ≥ 1 when the query was genuinely slow).
    pub rotations_in_flight: u32,
    /// Tenants synthesized and ingested into the data dir this run
    /// (0 on a reopened run — the zero-re-synthesis invariant).
    pub datasets_synthesized: u32,
    /// Tenants opened from an existing on-disk paged store.
    pub datasets_opened: u32,
    /// Buffer-pool hits summed over the paged tenants at the end
    /// (must be > 0: re-scans are served from memory, not disk).
    pub store_pool_hits: u64,
    /// Transcript records across all tenants and shards at shutdown.
    pub transcript_records: u64,
    /// Row-mutation batches acked over the wire (the live-update leg:
    /// one paged tenant, one resident tenant; each verified live and
    /// re-verified after the restart).
    pub mutations_acked: u64,
}

/// Per-dataset budget for the scripted workload.
const BUDGET: f64 = 0.6;

/// Budget of the `wide` tenant the compaction-pause scenario spends
/// from — ample, so the slow query itself is admitted.
const WIDE_BUDGET: f64 = 50.0;

/// Domain size of the `wide` tenant; with [`WIDE_STEP`] it bounds the
/// slow query at 512 prefix rows.
const WIDE_DOMAIN: i64 = 8192;

/// Prefix stride of the slow query's workload rows.
const WIDE_STEP: usize = 16;

/// Buffer-pool frames used while **ingesting** a paged tenant —
/// deliberately smaller than the page count of a few-thousand-row
/// dataset, so the self-test's ingest path exercises eviction and dirty
/// write-back. Serving pools are sized to the store instead (see
/// [`build_state`]): a sequential rescan through a pool smaller than the
/// store evicts every page before the scan comes back around, so the
/// pool-hit assertion needs the whole store resident.
const SELF_TEST_POOL_FRAMES: usize = 8;

fn query_for(dataset: &str, submit: usize) -> String {
    // Two structurally distinct workloads per dataset (so the cache holds
    // several entries), identical across sessions (so sessions share
    // warm-up). Alternating per submit also re-hits each entry.
    match (dataset, submit % 2) {
        ("adult", 0) => "BIN adult ON COUNT(*) WHERE W = { age IN [17, 40), age IN [40, 60), \
                         age IN [60, 91) } ERROR 30 CONFIDENCE 0.99;"
            .to_string(),
        ("adult", _) => "BIN adult ON COUNT(*) WHERE W = { education_num IN [1, 9), \
                         education_num IN [9, 17) } ERROR 30 CONFIDENCE 0.99;"
            .to_string(),
        (_, 0) => "BIN taxi ON COUNT(*) WHERE W = { passenger_count IN [1, 3), \
                   passenger_count IN [3, 11) } ERROR 30 CONFIDENCE 0.99;"
            .to_string(),
        _ => "BIN taxi ON COUNT(*) WHERE W = { pickup_hour IN [0, 8), pickup_hour IN [8, 16), \
              pickup_hour IN [16, 24) } ERROR 30 CONFIDENCE 0.99;"
            .to_string(),
    }
}

/// The compaction-pause scenario's tenant: a wide-domain dataset whose
/// prefix workloads compile to many cells, making the cold translator
/// prepare slow on purpose (cost is data-independent — rows stay tiny).
fn wide_dataset() -> Dataset {
    let schema = Schema::new(vec![Attribute::new(
        "v",
        Domain::IntRange {
            min: 0,
            max: WIDE_DOMAIN - 1,
        },
    )])
    .expect("static schema is valid");
    let mut d = Dataset::empty(schema);
    for i in 0..64 {
        d.push(vec![Value::Int(i * (WIDE_DOMAIN / 64))])
            .expect("value in domain");
    }
    d
}

/// The slow query: `prefixes` nested ranges over the wide domain. Every
/// range boundary is a fresh partition cell, so the strategy-mechanism
/// translation Monte-Carlo simulates over ~`prefixes` cells × the full
/// sample count — hundreds of milliseconds cold, by design.
fn slow_wide_query(prefixes: usize) -> String {
    let p = prefixes.clamp(2, WIDE_DOMAIN as usize / WIDE_STEP);
    let preds: Vec<String> = (1..=p)
        .map(|i| format!("v IN [0, {})", i * WIDE_STEP))
        .collect();
    format!(
        "BIN wide ON COUNT(*) WHERE W = {{ {} }} ERROR 200 CONFIDENCE 0.99;",
        preds.join(", ")
    )
}

/// One wire-encodable row at each attribute's domain floor — valid for
/// any tenant's schema, so the mutation leg can insert it blind.
fn floor_row_json(schema: &Schema) -> Json {
    Json::Arr(
        schema
            .attributes()
            .iter()
            .map(|a| match &a.domain {
                Domain::IntRange { min, .. } => Json::Num(*min as f64),
                Domain::FloatRange { min, .. } => Json::Num(*min),
                Domain::Categorical(cats) => Json::Str(cats.first().cloned().unwrap_or_default()),
                Domain::Text => Json::Str("x".to_string()),
                Domain::Boolean => Json::Bool(false),
            })
            .collect(),
    )
}

/// Ingest-or-open one tenant's paged store under the data root. Returns
/// `true` when the dataset had to be synthesized and ingested, `false`
/// when an existing store was opened (and verified) from disk.
fn ensure_paged(data_root: &std::path::Path, name: &str, rows: usize) -> Result<bool, String> {
    let dir = data_root.join(name);
    if Manifest::exists(&dir) {
        Dataset::open_paged(&dir, SELF_TEST_POOL_FRAMES)
            .map_err(|e| format!("persisted {name} store failed to open: {e}"))?;
        return Ok(false);
    }
    let data = match name {
        "adult" => adult_dataset(rows, 7),
        _ => nytaxi_dataset(rows, 9),
    };
    data.ingest_paged(&dir, 1, SELF_TEST_POOL_FRAMES)
        .map_err(|e| format!("ingest of {name} failed: {e}"))?;
    Ok(true)
}

/// Builds one shard's state. The adult/taxi tenants open the paged
/// stores [`ensure_paged`] prepared under `data_root` (each shard gets
/// its own buffer pool over the shared read-only page files); the `wide`
/// tenant stays resident — it exists to make translator prepare slow,
/// not to exercise storage.
fn build_state(
    cache: apex_core::TranslatorCache,
    data_root: &std::path::Path,
) -> ServerStateBuilder {
    let open = |name: &str| {
        // Store-sized pool: the persistence leg asserts warm rescans are
        // served from memory, so every page must be able to stay resident.
        let dir = data_root.join(name);
        let pages = Manifest::load(&dir)
            .unwrap_or_else(|e| {
                panic!("paged {name} manifest vanished between ingest and open: {e}")
            })
            .page_count as usize;
        Dataset::open_paged(&dir, pages + 1)
            .unwrap_or_else(|e| panic!("paged {name} store vanished between ingest and open: {e}"))
    };
    ServerState::builder_with_cache(cache)
        .dataset(
            "adult",
            open("adult"),
            EngineConfig {
                budget: BUDGET,
                mode: Mode::Pessimistic,
                seed: 0x5E1F_0001,
            },
        )
        .dataset(
            "taxi",
            open("taxi"),
            EngineConfig {
                budget: BUDGET,
                mode: Mode::Pessimistic,
                seed: 0x5E1F_0002,
            },
        )
        .dataset(
            "wide",
            wide_dataset(),
            EngineConfig {
                budget: WIDE_BUDGET,
                mode: Mode::Pessimistic,
                seed: 0x5E1F_0003,
            },
        )
}

/// Recovers all shards from `dir/shard-K` (in parallel), sharing one
/// translator cache; returns the set and the total WAL records replayed.
/// Each shard opens its tenants' paged stores under `data_root` and gets
/// a per-shard transcript-log directory (one writer per log).
fn recover(
    cfg: &SelfTestConfig,
    dir: &std::path::Path,
    data_root: &std::path::Path,
) -> Result<(ShardSet, usize), String> {
    let cache = apex_core::TranslatorCache::with_capacity(cfg.cache_cap);
    ShardSet::recover(
        dir,
        cfg.shards,
        |shard| {
            build_state(cache.clone(), data_root)
                .transcripts_under(&data_root.join("transcripts").join(format!("shard-{shard}")))
                .unwrap_or_else(|e| panic!("transcript logs must open: {e}"))
        },
        |d| PersistOptions::new(d),
    )
    .map(|(set, reports)| {
        let replayed = reports.iter().map(|r| r.replayed).sum();
        (set, replayed)
    })
    .map_err(|e: RecoverError| format!("recovery failed: {e}"))
}

/// Runs the whole self-test: recover → serve → hammer → verify → shut
/// down → **restart from disk** → re-verify ledger-vs-wire equality.
///
/// # Errors
/// A human-readable description of the first violated invariant.
pub fn run(cfg: SelfTestConfig) -> Result<SelfTestReport, String> {
    // The state dir: caller-supplied (CI reruns against it) or a fresh
    // temp dir this run owns and removes.
    let (dir, owned_dir) = match &cfg.state_dir {
        Some(dir) => (dir.clone(), false),
        None => {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            let dir =
                std::env::temp_dir().join(format!("apex-selftest-{}-{nanos}", std::process::id()));
            (dir, true)
        }
    };
    let result = run_in_dir(&cfg, &dir);
    if owned_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

fn run_in_dir(cfg: &SelfTestConfig, dir: &std::path::Path) -> Result<SelfTestReport, String> {
    // The persistence leg's data dir: caller-supplied, or colocated with
    // the state dir so a rerun against one dir reopens the stores.
    let data_root = cfg.data_dir.clone().unwrap_or_else(|| dir.join("data"));
    let mut datasets_synthesized = 0u32;
    let mut datasets_opened = 0u32;
    for name in ["adult", "taxi"] {
        if ensure_paged(&data_root, name, cfg.rows)? {
            datasets_synthesized += 1;
        } else {
            datasets_opened += 1;
        }
    }

    let (set, _) = recover(cfg, dir, &data_root)?;
    let set = Arc::new(set);

    // Persistence probe: stream every paged tenant twice through its
    // buffer pool. The scans must agree with each other (fail-stop on
    // corruption) and the rescan must be served from memory — it shows
    // up in the pool-hit counter the stats snapshot below asserts on.
    for s in set.states() {
        for (name, t) in s.tenants() {
            if t.store_stats().is_none() {
                continue;
            }
            let (cold, warm) = t
                .engine
                .with_engine(|e| (e.dataset_scan_rows(), e.dataset_scan_rows()));
            if cold != warm {
                return Err(format!(
                    "paged store {name}: first scan saw {cold} rows, pooled rescan {warm}"
                ));
            }
        }
    }
    // Per-tenant baselines are summed across shards: a tenant's charges
    // live in its owner shard's ledger, and if the shard count changed
    // since the dir was written, in a previous owner's — the sum covers
    // both.
    let baseline: Vec<(String, f64)> = set
        .state(0)
        .tenants()
        .iter()
        .map(|(name, _)| (name.clone(), set.spent(name)))
        .collect();
    let recovered_baseline = baseline.iter().any(|(_, s)| *s > 0.0);

    let handle = serve_sharded(
        "127.0.0.1:0",
        set.clone(),
        ServeConfig {
            workers_per_shard: cfg.server_threads,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("bind failed: {e}"))?;
    let addr = handle.addr();

    // Oversubscribed slices: sessions÷2 per dataset, each slice is half
    // the budget, so 3+ sessions per dataset jointly exceed B.
    let slice = BUDGET / 2.0;
    let mut observed: Vec<Result<(u64, u64, f64, String), String>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..cfg.sessions {
            handles.push(scope.spawn(move || client_script(addr, i, slice, cfg.submits)));
        }
        for h in handles {
            observed.push(h.join().unwrap_or_else(|_| Err("client panicked".into())));
        }
    });

    let mut report = SelfTestReport {
        recovered_baseline,
        datasets_synthesized,
        datasets_opened,
        ..SelfTestReport::default()
    };
    let mut spent_by_client: std::collections::HashMap<String, f64> = Default::default();
    for r in observed {
        let (answered, denied, epsilon_sum, dataset) = r?;
        report.answered += answered;
        report.denied += denied;
        *spent_by_client.entry(dataset).or_default() += epsilon_sum;
    }
    // A run on a fresh ledger must exercise both admission outcomes; a
    // recovered run starts near-exhausted, so only denials are certain.
    if report.answered == 0 && !recovered_baseline {
        return Err("no query was ever answered — the workload exercised nothing".into());
    }
    if report.denied == 0 {
        return Err(
            "no query was ever denied — oversubscription failed to stress admission".into(),
        );
    }

    // Server-side verification through the public API.
    let (status, stats) = client::request(addr, "GET", "/v1/stats", None)?;
    if status != 200 {
        return Err(format!("GET /v1/stats returned {status}"));
    }
    let shard_count = stats.get("shard_count").and_then(Json::as_u64).unwrap_or(0);
    if shard_count != cfg.shards as u64 {
        return Err(format!(
            "stats reported {shard_count} shards, configured {}",
            cfg.shards
        ));
    }
    let global = stats
        .get("cache")
        .and_then(|c| c.get("global"))
        .ok_or("stats missing cache.global")?;
    report.cache_hits = global.get("hits").and_then(Json::as_u64).unwrap_or(0);
    report.cache_misses = global.get("misses").and_then(Json::as_u64).unwrap_or(0);
    if report.cache_hits == 0 && !recovered_baseline {
        return Err("shared translator cache saw no hits across sessions".into());
    }

    for name in ["adult", "taxi"] {
        let d = stats
            .get("datasets")
            .and_then(|d| d.get(name))
            .ok_or_else(|| format!("stats missing dataset {name}"))?;
        let spent = d
            .get("budget")
            .and_then(|b| b.get("spent"))
            .and_then(Json::as_f64)
            .ok_or("stats missing budget.spent")?;
        let budget = d
            .get("budget")
            .and_then(|b| b.get("budget"))
            .and_then(Json::as_f64)
            .ok_or("stats missing budget.budget")?;
        if spent > budget + 1e-9 {
            return Err(format!(
                "BUDGET OVERSHOOT on {name}: spent {spent} > budget {budget}"
            ));
        }
        // The engine's ledger must equal the recovered baseline plus
        // what clients saw on the wire this run.
        let base = baseline
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(0.0);
        let client_sum = spent_by_client.get(name).copied().unwrap_or(0.0);
        if (base + client_sum - spent).abs() > 1e-6 {
            return Err(format!(
                "ledger mismatch on {name}: recovered baseline {base} + client-observed \
                 {client_sum} ≠ engine ledger {spent}"
            ));
        }
        // Per-dataset scopes must account for every global counter.
        let scope_hits = d
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64)
            .ok_or("stats missing per-dataset cache.hits")?;
        if scope_hits > report.cache_hits {
            return Err(format!(
                "scope accounting broken: {name} hits {scope_hits} > global {}",
                report.cache_hits
            ));
        }
        // The tenant must be served from the paged store, and its pool
        // counters must be surfaced through the public stats API.
        let store = d
            .get("store")
            .ok_or_else(|| format!("stats missing store object for {name}"))?;
        if store.get("paged").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "{name} is not paged — the data dir was bypassed at boot"
            ));
        }
        report.store_pool_hits += store
            .get("pool_hits")
            .and_then(Json::as_u64)
            .ok_or("stats missing store.pool_hits")?;
        report.budgets.push((name.to_string(), spent, budget));
    }
    if report.store_pool_hits == 0 {
        return Err(
            "buffer pool recorded no hits — paged rescans are not being served from memory".into(),
        );
    }

    // The live-mutation leg (ISSUE 10): insert rows over the wire into
    // one paged tenant (durable through its store's mutation log) and
    // the resident `wide` tenant (durable through the WAL record + the
    // snapshot's mutation journal). The ack's epoch must match the
    // owning engine, the scan must see the rows immediately, and the
    // restart leg below must reproduce all three numbers from disk.
    let mut mutation_expect: Vec<(String, u64, u64, u64)> = Vec::new();
    for name in ["adult", "wide"] {
        let engine = &set
            .owner(name)
            .tenant(name)
            .ok_or_else(|| format!("tenant {name} missing from its owner shard"))?
            .engine;
        let before_rows = engine.with_engine(|e| e.dataset_scan_rows());
        let row = engine.with_engine(|e| floor_row_json(e.schema()));
        let body = Json::obj(vec![
            ("op", Json::from("insert")),
            ("rows", Json::Arr(vec![row.clone(), row])),
        ])
        .render();
        let (status, resp) = client::request(
            addr,
            "POST",
            &format!("/v1/datasets/{name}/rows"),
            Some(&body),
        )?;
        if status != 200 {
            return Err(format!("mutation on {name} returned {status}: {resp:?}"));
        }
        if resp.get("inserted").and_then(Json::as_u64) != Some(2) {
            return Err(format!("mutation ack on {name} lost rows: {resp:?}"));
        }
        let acked_epoch = resp
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or("mutation ack missing epoch")?;
        let acked_applied = resp
            .get("mutations_applied")
            .and_then(Json::as_u64)
            .ok_or("mutation ack missing mutations_applied")?;
        let after_rows = engine.with_engine(|e| e.dataset_scan_rows());
        if after_rows != before_rows + 2 {
            return Err(format!(
                "{name}: scan sees {after_rows} rows after inserting 2 over {before_rows}"
            ));
        }
        if engine.epoch() != acked_epoch {
            return Err(format!(
                "{name}: acked epoch {acked_epoch} diverged from the engine's {}",
                engine.epoch()
            ));
        }
        report.mutations_acked += 1;
        mutation_expect.push((name.to_string(), acked_epoch, acked_applied, after_rows));
    }
    // The public stats must surface the new epoch across the shard
    // aggregation, and a query admitted now answers against it (wide's
    // budget is still ample at this point in the run).
    let (status, stats) = client::request(addr, "GET", "/v1/stats", None)?;
    if status != 200 {
        return Err(format!("post-mutation GET /v1/stats returned {status}"));
    }
    for (name, epoch, applied, _) in &mutation_expect {
        let d = stats
            .get("datasets")
            .and_then(|d| d.get(name))
            .ok_or_else(|| format!("post-mutation stats missing dataset {name}"))?;
        if d.get("epoch").and_then(Json::as_u64) != Some(*epoch)
            || d.get("mutations_applied").and_then(Json::as_u64) != Some(*applied)
        {
            return Err(format!(
                "stats report epoch {:?} / applied {:?} for {name}, acked {epoch} / {applied}",
                d.get("epoch"),
                d.get("mutations_applied")
            ));
        }
    }
    {
        let (status, created) = client::request(
            addr,
            "POST",
            "/v1/sessions",
            Some("{\"dataset\":\"wide\",\"budget\":1.0}"),
        )?;
        if status != 201 {
            return Err(format!("post-mutation session creation returned {status}"));
        }
        let id = created
            .get("session")
            .and_then(Json::as_u64)
            .ok_or("post-mutation session id missing")?;
        let q = "BIN wide ON COUNT(*) WHERE W = { v IN [0, 16) } ERROR 200 CONFIDENCE 0.99;";
        let (status, resp) = client::request(
            addr,
            "POST",
            &format!("/v1/sessions/{id}/query"),
            Some(&format!("{{\"query\":{}}}", Json::from(q).render())),
        )?;
        if status != 200 {
            return Err(format!(
                "post-mutation query returned {status} (must answer at the new epoch): {resp:?}"
            ));
        }
    }

    report.prepare_ms = prepare_timings(cfg);

    // The compaction-pause scenario: force WAL rotations against a slow
    // in-flight query — rotation must not wait on the evaluate phase.
    let probe = compaction_pause_scenario(set.owner("wide"), addr, cfg.slow_query_prefixes)?;
    report.compaction_pause_millis = probe.pause_millis;
    report.slow_query_millis = probe.query_millis;
    report.rotations_in_flight = probe.rotations_in_flight;
    // The scenario spent on the wide tenant after the stats snapshot
    // above; record its ledger now so the restart leg verifies it too.
    report
        .budgets
        .push(("wide".to_string(), set.spent("wide"), WIDE_BUDGET));
    // The forced rotations may have folded every record this run
    // appended into the snapshot; open one more (budget-neutral)
    // session so the restart leg always has WAL to replay — keeping the
    // `recovery_replayed > 0` check meaningful on every machine speed.
    let (status, _) = client::request(
        addr,
        "POST",
        "/v1/sessions",
        Some("{\"dataset\":\"wide\",\"budget\":0.001}"),
    )?;
    if status != 201 {
        return Err(format!("post-scenario session creation returned {status}"));
    }

    // Graceful shutdown through the API; join must then return.
    let (status, _) = client::request(addr, "POST", "/v1/admin/shutdown", Some("{}"))?;
    if status != 202 {
        return Err(format!("shutdown returned {status}"));
    }
    handle.join();

    // Every response this run produced must be accounted for in the
    // transcript logs (recorded, or counted as dropped); flush them so
    // the replay check below reads everything back from disk.
    let mut transcript_dropped = 0u64;
    for s in set.states() {
        s.flush_transcripts();
        for (_, t) in s.tenants() {
            report.transcript_records += t.transcript_records();
            transcript_dropped += t.transcript_dropped();
        }
    }
    if report.transcript_records + transcript_dropped < report.answered + report.denied {
        return Err(format!(
            "transcript logs hold {} records (+{transcript_dropped} dropped) for {} responses",
            report.transcript_records,
            report.answered + report.denied
        ));
    }
    drop(set);

    // The flushed transcripts must replay from disk, record for record.
    let mut replayed_transcripts = 0u64;
    let troot = data_root.join("transcripts");
    for shard in 0..cfg.shards {
        for name in ["adult", "taxi", "wide"] {
            let d = troot.join(format!("shard-{shard}")).join(name);
            if Manifest::exists(&d) {
                replayed_transcripts += PageLog::replay(&d, |_| {}).map_err(|e| {
                    format!("transcript replay failed for shard {shard}/{name}: {e}")
                })?;
            }
        }
    }
    if replayed_transcripts != report.transcript_records {
        return Err(format!(
            "TRANSCRIPT DIVERGENCE: {} records at shutdown, \
             {replayed_transcripts} replayed from disk",
            report.transcript_records
        ));
    }

    // The durability leg: restart from disk (replaying every shard's
    // WAL) and re-verify that the recovered ledger equals what the wire
    // saw — per tenant, summed across the shards that charged it.
    let (restarted, replayed) = recover(cfg, dir, &data_root)?;
    report.recovery_replayed = replayed;
    for (name, spent, _) in &report.budgets {
        if restarted.state(0).tenant(name).is_none() {
            return Err(format!("restart lost dataset {name}"));
        }
        let recovered = restarted.spent(name);
        if (recovered - spent).abs() > 1e-9 {
            return Err(format!(
                "RECOVERY DIVERGENCE on {name}: ledger was {spent} before shutdown, \
                 {recovered} after restart"
            ));
        }
    }
    let live = cfg.sessions;
    if restarted.session_count() < live {
        return Err(format!(
            "restart lost sessions: {} live before shutdown, {} after",
            live,
            restarted.session_count()
        ));
    }
    // The mutation leg's restart half: the replayed epoch, mutation
    // count, and row count must equal what was acked before shutdown —
    // for the paged tenant via its store, for the resident one via the
    // WAL/journal replay.
    for (name, epoch, applied, rows) in &mutation_expect {
        let engine = &restarted
            .owner(name)
            .tenant(name)
            .ok_or_else(|| format!("restart lost mutated tenant {name}"))?
            .engine;
        if engine.epoch() != *epoch || engine.mutations_applied() != *applied {
            return Err(format!(
                "MUTATION DIVERGENCE on {name}: epoch {} / applied {} after restart, \
                 acked {epoch} / {applied} before shutdown",
                engine.epoch(),
                engine.mutations_applied()
            ));
        }
        let scan = engine.with_engine(|e| e.dataset_scan_rows());
        if scan != *rows {
            return Err(format!(
                "MUTATION DIVERGENCE on {name}: {scan} rows after restart, {rows} before"
            ));
        }
    }
    Ok(report)
}

/// Times one cold `PreparedTranslator::prepare` per tenant on a workload
/// representative of what the scripted clients submit (the wide tenant
/// uses the compaction scenario's prefix shape). Pure observability: the
/// printed numbers make prepare-path regressions visible in CI logs
/// without turning machine speed into an assertion.
fn prepare_timings(cfg: &SelfTestConfig) -> Vec<(String, f64)> {
    let wide_prefixes = cfg
        .slow_query_prefixes
        .clamp(2, WIDE_DOMAIN as usize / WIDE_STEP);
    let probes: Vec<(&str, Schema, Vec<Predicate>)> = vec![
        (
            "adult",
            adult_dataset(1, 7).schema().clone(),
            vec![
                Predicate::range("age", 17.0, 40.0),
                Predicate::range("age", 40.0, 60.0),
                Predicate::range("age", 60.0, 91.0),
            ],
        ),
        (
            "taxi",
            nytaxi_dataset(1, 9).schema().clone(),
            vec![
                Predicate::range("passenger_count", 1.0, 3.0),
                Predicate::range("passenger_count", 3.0, 11.0),
            ],
        ),
        (
            "wide",
            wide_dataset().schema().clone(),
            (1..=wide_prefixes)
                .map(|i| Predicate::range("v", 0.0, (i * WIDE_STEP) as f64))
                .collect(),
        ),
    ];
    let mut timings = Vec::new();
    for (name, schema, workload) in probes {
        let Ok(q) = PreparedQuery::prepare(&schema, &ExplorationQuery::wcq(workload)) else {
            continue; // a broken probe workload is not a service invariant
        };
        let t0 = Instant::now();
        let prepared =
            PreparedTranslator::prepare(q.compiled(), Strategy::H2, McConfig::default(), None);
        if prepared.is_ok() {
            timings.push((name.to_string(), t0.elapsed().as_secs_f64() * 1e3));
        }
    }
    timings
}

/// What the compaction-pause scenario measured.
struct PauseProbe {
    pause_millis: u64,
    query_millis: u64,
    rotations_in_flight: u32,
}

/// Puts one slow (cold-translator) query in flight on the `wide` tenant
/// and forces WAL rotations against it, timing each. Fails when the
/// query was genuinely slow yet no rotation completed while it was
/// evaluating — that means the ledger gate is back to spanning whole
/// mechanism runs instead of just the commit+append pair.
fn compaction_pause_scenario(
    state: &Arc<ServerState>,
    addr: std::net::SocketAddr,
    prefixes: usize,
) -> Result<PauseProbe, String> {
    let body = format!("{{\"dataset\":\"wide\",\"budget\":{WIDE_BUDGET}}}");
    let (status, created) = client::request(addr, "POST", "/v1/sessions", Some(&body))?;
    if status != 201 {
        return Err(format!("wide session creation returned {status}"));
    }
    let id = created
        .get("session")
        .and_then(Json::as_u64)
        .ok_or("wide session id missing")?;

    let done = AtomicBool::new(false);
    let t0 = Instant::now();
    let (query_status, query_millis, pauses) = std::thread::scope(|scope| {
        let done = &done;
        let slow = scope.spawn(move || {
            let body = format!(
                "{{\"query\":{}}}",
                Json::from(slow_wide_query(prefixes)).render()
            );
            let resp = client::request(
                addr,
                "POST",
                &format!("/v1/sessions/{id}/query"),
                Some(&body),
            );
            let elapsed = t0.elapsed();
            done.store(true, Ordering::SeqCst);
            (resp, elapsed)
        });
        // Let the evaluate get in flight, then rotate until the query
        // lands; `true` marks rotations that finished mid-evaluate.
        std::thread::sleep(Duration::from_millis(30));
        let mut pauses: Vec<(Duration, bool)> = Vec::new();
        while !done.load(Ordering::SeqCst) && pauses.len() < 1_000 {
            let c0 = Instant::now();
            let rotated = state.compact();
            let dt = c0.elapsed();
            let in_flight = !done.load(Ordering::SeqCst);
            if let Err(e) = rotated {
                return Err(format!("forced compaction failed mid-scenario: {e}"));
            }
            pauses.push((dt, in_flight));
            std::thread::sleep(Duration::from_millis(10));
        }
        let (resp, elapsed) = slow
            .join()
            .map_err(|_| "slow-query client panicked".to_string())?;
        let (status, _) = resp?;
        Ok((status, elapsed, pauses))
    })?;
    if query_status != 200 && query_status != 409 {
        return Err(format!(
            "PROTOCOL VIOLATION: slow query returned {query_status}"
        ));
    }
    let rotations_in_flight = pauses.iter().filter(|(_, in_flight)| *in_flight).count() as u32;
    let pause_millis = pauses
        .iter()
        .map(|(d, _)| d.as_millis() as u64)
        .max()
        .unwrap_or(0);
    let query_millis = query_millis.as_millis() as u64;
    // Conclusive only when the query was actually slow: on a fast warm
    // machine it can land before the first forced rotation gets in.
    if query_millis >= 250 && rotations_in_flight == 0 {
        return Err(format!(
            "COMPACTION STALL: no WAL rotation completed during a {query_millis} ms in-flight \
             query — the ledger gate is spanning mechanism runs again"
        ));
    }
    Ok(PauseProbe {
        pause_millis,
        query_millis,
        rotations_in_flight,
    })
}

/// One analyst: open a session, submit `submits` queries, watch budgets.
/// Returns `(answered, denied, Σε, dataset)`.
fn client_script(
    addr: std::net::SocketAddr,
    index: usize,
    slice: f64,
    submits: usize,
) -> Result<(u64, u64, f64, String), String> {
    let dataset = if index % 2 == 0 { "adult" } else { "taxi" };
    let body = format!("{{\"dataset\":\"{dataset}\",\"budget\":{slice}}}");
    let (status, created) = client::request(addr, "POST", "/v1/sessions", Some(&body))?;
    if status != 201 {
        return Err(format!("session creation returned {status}: {created:?}"));
    }
    let id = created
        .get("session")
        .and_then(Json::as_u64)
        .ok_or("session id missing")?;

    let (mut answered, mut denied, mut epsilon_sum) = (0u64, 0u64, 0.0f64);
    for submit in 0..submits {
        let body = format!(
            "{{\"query\":{}}}",
            Json::from(query_for(dataset, submit)).render()
        );
        let (status, resp) = client::request(
            addr,
            "POST",
            &format!("/v1/sessions/{id}/query"),
            Some(&body),
        )?;
        match status {
            200 => {
                answered += 1;
                epsilon_sum += resp
                    .get("epsilon")
                    .and_then(Json::as_f64)
                    .ok_or("answered response missing epsilon")?;
            }
            409 => denied += 1,
            other => {
                return Err(format!(
                    "PROTOCOL VIOLATION: submit returned {other}: {resp:?}"
                ))
            }
        }

        // Interleave budget reads: the slice must never be overdrawn
        // mid-flight, whatever the other sessions are doing.
        let (status, budget) =
            client::request(addr, "GET", &format!("/v1/sessions/{id}/budget"), None)?;
        if status != 200 {
            return Err(format!("budget read returned {status}"));
        }
        let spent = budget
            .get("spent")
            .and_then(Json::as_f64)
            .ok_or("budget response missing spent")?;
        let allowance = budget
            .get("allowance")
            .and_then(Json::as_f64)
            .ok_or("budget response missing allowance")?;
        if spent > allowance + 1e-9 {
            return Err(format!(
                "SLICE OVERSHOOT: session {id} spent {spent} > allowance {allowance}"
            ));
        }
        let engine = budget
            .get("engine")
            .ok_or("budget response missing engine")?;
        let engine_spent = engine.get("spent").and_then(Json::as_f64).unwrap_or(0.0);
        let engine_budget = engine
            .get("budget")
            .and_then(Json::as_f64)
            .unwrap_or(f64::INFINITY);
        if engine_spent > engine_budget + 1e-9 {
            return Err(format!(
                "BUDGET OVERSHOOT mid-flight on {dataset}: {engine_spent} > {engine_budget}"
            ));
        }
    }
    Ok((answered, denied, epsilon_sum, dataset.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes_with_a_small_workload() {
        let report = run(SelfTestConfig {
            server_threads: 2,
            shards: 1,
            sessions: 4,
            submits: 4,
            rows: 400,
            cache_cap: 16,
            state_dir: None,
            data_dir: None,
            // Debug builds are ~15× slower; a modest workload still puts
            // a few-hundred-ms evaluate in flight for the pause scenario.
            slow_query_prefixes: 64,
        })
        .expect("self-test must pass");
        assert!(report.answered > 0);
        assert!(report.denied > 0, "oversubscription must force denials");
        assert!(report.cache_hits > 0, "sessions must share warm artifacts");
        assert!(!report.recovered_baseline, "a temp dir starts fresh");
        assert_eq!(report.datasets_synthesized, 2, "fresh data dir ingests");
        assert_eq!(report.datasets_opened, 0);
        assert!(report.store_pool_hits > 0, "rescans come from the pool");
        assert!(
            report.transcript_records >= report.answered + report.denied,
            "every response must reach a transcript log"
        );
        assert!(
            report.recovery_replayed > 0,
            "the restart leg must replay this run's WAL"
        );
        assert_eq!(
            report.mutations_acked, 2,
            "the mutation leg must cover one paged and one resident tenant"
        );
        assert!(
            report.slow_query_millis > 0,
            "the compaction-pause scenario must have run"
        );
        for (name, spent, budget) in &report.budgets {
            assert!(spent <= &(budget + 1e-9), "{name}: {spent} > {budget}");
        }
        assert!(
            report.budgets.iter().any(|(n, _, _)| n == "wide"),
            "the wide tenant's ledger must be restart-verified too"
        );
    }

    #[test]
    fn self_test_passes_with_multiple_shards() {
        // The same invariants must hold when tenants are spread over
        // shards: per-shard ledgers sum to what the wire acked, and the
        // restart leg recovers every shard's WAL in parallel.
        let report = run(SelfTestConfig {
            server_threads: 2,
            shards: 2,
            sessions: 4,
            submits: 4,
            rows: 400,
            cache_cap: 16,
            state_dir: None,
            data_dir: None,
            slow_query_prefixes: 64,
        })
        .expect("sharded self-test must pass");
        assert!(report.answered > 0);
        assert!(report.denied > 0, "oversubscription must force denials");
        assert!(
            report.recovery_replayed > 0,
            "the restart leg must replay per-shard WAL"
        );
        for (name, spent, budget) in &report.budgets {
            assert!(spent <= &(budget + 1e-9), "{name}: {spent} > {budget}");
        }
    }

    #[test]
    fn self_test_reruns_against_the_same_state_dir() {
        // The CI shape: two passes over one directory — the second runs
        // in recovered mode and re-verifies the combined ledger.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let dir = std::env::temp_dir().join(format!(
            "apex-selftest-rerun-{}-{nanos}",
            std::process::id()
        ));
        let cfg = || SelfTestConfig {
            server_threads: 2,
            shards: 1,
            sessions: 4,
            submits: 3,
            rows: 300,
            cache_cap: 16,
            state_dir: Some(dir.clone()),
            data_dir: None,
            slow_query_prefixes: 64,
        };
        let first = run(cfg()).expect("fresh pass must hold");
        assert!(!first.recovered_baseline);
        assert_eq!(first.datasets_synthesized, 2, "first pass ingests");
        let second = run(cfg()).expect("recovered pass must hold");
        assert!(second.recovered_baseline, "second pass starts from disk");
        // The persistence leg: the second pass must open the paged
        // stores from disk — zero re-synthesis — and serve rescans from
        // the buffer pool.
        assert_eq!(second.datasets_synthesized, 0, "no tenant re-synthesized");
        assert_eq!(second.datasets_opened, 2, "both tenants opened from disk");
        assert!(second.store_pool_hits > 0, "pool must serve the rescans");
        assert!(
            second.transcript_records > first.transcript_records,
            "transcript logs accumulate across restarts"
        );
        // The combined ledger kept growing monotonically (or stayed put).
        for ((name, s1, _), (_, s2, _)) in first.budgets.iter().zip(&second.budgets) {
            assert!(s2 + 1e-9 >= *s1, "{name} ledger shrank across restarts");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
