//! The hierarchical strategy `H_b` as a matrix-free operator with a
//! near-linear normal-equations solve.
//!
//! # Structure
//!
//! `H_b` over `n` cells has one 0/1 row per node of a `b`-ary interval
//! tree (root `[0, n)`, children splitting their parent into `b` nearly
//! equal parts, singleton leaves included). Its normal matrix is a sum of
//! all-ones blocks, one per tree node `v` with interval `I_v`:
//!
//! ```text
//! M = HᵀH = Σ_v 1_{I_v} 1_{I_v}ᵀ
//! ```
//!
//! Restricted to a subtree, `M_v = blockdiag(M_c for children c) +
//! 1 1ᵀ` — a block-diagonal matrix plus a rank-one all-ones update. That
//! is exactly the shape the Sherman–Morrison identity collapses:
//!
//! ```text
//! (D + uuᵀ)⁻¹ b  =  D⁻¹b − D⁻¹u · (uᵀD⁻¹b) / (1 + uᵀD⁻¹u)
//! ```
//!
//! with `u = 1_{I_v}`. Two observations make the recursion linear instead
//! of exponential:
//!
//! * `D⁻¹u` restricted to child `c` is `t_c = M_c⁻¹ 1`, whose **sum**
//!   `s_c = Σ t_c` obeys the scalar recurrence `s_leaf = 1`,
//!   `γ_v = Σ_c s_c`, `s_v = γ_v / (1 + γ_v)` — precomputed bottom-up
//!   once per operator, one f64 per node;
//! * the rank-one corrections applied by every ancestor of a leaf
//!   telescope into a single scalar per node, accumulated in one
//!   top-down sweep (`A_child = (A_v + c_v) · f_child` below).
//!
//! A solve is therefore one bottom-up sweep (subtree sums `Σ M_c⁻¹ b`)
//! and one top-down sweep (correction coefficients), `O(#nodes) = O(n)`
//! per right-hand side after the `O(n)` precompute — against `O(n³)` for
//! the dense QR pseudoinverse the operator replaces. `apply` and
//! `apply_transpose` walk the `O(n log_b n)` stored interval lengths.
//!
//! Row order matches `Strategy::build_csr` exactly (intervals ascending
//! by `(lo, hi)`), and the per-row summation order matches the CSR
//! matvec, so operator and CSR paths agree bit for bit — property-tested
//! in `tests/properties.rs`.

use crate::operator::{check_panel, OpScratch, SharedOperator, StrategyOperator};
use crate::{LinalgError, Result};
use std::sync::Arc;

/// Lane width of the blocked multi-RHS kernels. Panels are processed in
/// tiles of `LANES` columns stored lane-interleaved (`buf[i * LANES + l]`
/// is element `i` of lane `l`), so the innermost loops are fixed-width
/// independent f64 operations that LLVM autovectorizes and that break the
/// loop-carried FP addition chains of the single-RHS sweeps. Eight lanes
/// cover one AVX-512 vector, two AVX2 vectors, or four SSE2 vectors.
const LANES: usize = 8;

/// Rows per chunk of the lane transposes below: the interleaved slab a
/// chunk touches is `1024 × LANES × 8 B = 64 KiB`, small enough to stay
/// cached across the per-lane passes. Without chunking, every one of the
/// `LANES` passes walks the full tile and touches every cache line of it,
/// multiplying the transpose traffic by `LANES` on tiles past cache size.
const XPOSE_CHUNK: usize = 1024;

/// Packs `LANES` column-major columns of length `len` into one
/// lane-interleaved tile (`tile[i * LANES + l] = cols[l * len + i]`).
fn pack_lanes(cols: &[f64], len: usize, tile: &mut [f64]) {
    let mut i0 = 0;
    while i0 < len {
        let i1 = (i0 + XPOSE_CHUNK).min(len);
        for (l, col) in cols.chunks_exact(len).enumerate() {
            for i in i0..i1 {
                tile[i * LANES + l] = col[i];
            }
        }
        i0 = i1;
    }
}

/// Inverse of [`pack_lanes`]: spreads a lane-interleaved tile back into
/// `LANES` column-major columns of length `len`.
fn unpack_lanes(tile: &[f64], len: usize, cols: &mut [f64]) {
    let mut i0 = 0;
    while i0 < len {
        let i1 = (i0 + XPOSE_CHUNK).min(len);
        for (l, col) in cols.chunks_exact_mut(len).enumerate() {
            for i in i0..i1 {
                col[i] = tile[i * LANES + l];
            }
        }
        i0 = i1;
    }
}

/// One node of the interval tree, in BFS order (children contiguous).
#[derive(Debug, Clone)]
struct Node {
    lo: usize,
    hi: usize,
    /// Index of the first child in the BFS `nodes` vec (0 ⇒ leaf, since
    /// node 0 is always the root and never anyone's child).
    child_start: usize,
    /// Number of children (0 for leaves).
    child_count: usize,
    /// `γ_v = Σ_c s_c` (0 for leaves, unused there).
    gamma: f64,
    /// `s_v = Σ (M_v⁻¹ 1)`: 1 for leaves, `γ/(1+γ)` for internal nodes.
    s: f64,
}

/// The hierarchical strategy `H_b` over `n` cells as a matrix-free
/// [`StrategyOperator`]. Construction is `O(n log_b n)` time and memory
/// (the interval lists); `solve_normal` is `O(n)` per right-hand side.
#[derive(Debug, Clone)]
pub struct HierarchicalOperator {
    n: usize,
    branching: usize,
    /// Tree nodes in BFS order; `nodes[0]` is the root.
    nodes: Vec<Node>,
    /// Row intervals sorted ascending by `(lo, hi)` — the exact row order
    /// of `Strategy::build_csr`.
    rows: Vec<(usize, usize)>,
    /// Per-cell scatter plan for the blocked transpose:
    /// `cover_rows[cover_off[c]..cover_off[c + 1]]` lists the rows
    /// covering cell `c`, ascending. `O(n log_b n)` entries. `u32` is
    /// ample: a domain near `u32::MAX` would need hundreds of GiB of
    /// panel memory long before the plan overflows.
    cover_rows: Vec<u32>,
    /// Offsets into [`Self::cover_rows`], length `n + 1`.
    cover_off: Vec<u32>,
    /// `‖H_b‖₁`: the maximum number of tree nodes covering one cell.
    l1_norm: f64,
}

impl HierarchicalOperator {
    /// Builds `H_b` over `n` cells with fan-out `branching`.
    ///
    /// # Errors
    /// * [`LinalgError::Empty`] when `n == 0`.
    /// * [`LinalgError::ShapeMismatch`] is never returned here; a
    ///   branching factor below 2 is rejected by the caller
    ///   (`Strategy::operator`) — this constructor clamps defensively.
    pub fn new(n: usize, branching: usize) -> Result<Self> {
        Self::build(n, branching, &mut std::collections::HashMap::new())
    }

    /// Grows the operator to `n_new ≥ n` cells after a domain extension.
    ///
    /// The tree over `[0, n_new)` is re-laid out (interval bounds shift
    /// when the root interval grows), but the expensive part of the
    /// precompute — the Sherman–Morrison scalars `(γ, s)` — is a **pure
    /// function of a node's width** given the branching factor: children
    /// split a width-`w` node the same way wherever it sits. Seeding the
    /// width memo from this operator's nodes means the γ/s pass of the
    /// extension only computes scalars for widths this tree has never
    /// seen, and reuses everything else verbatim — which also makes the
    /// result **bit-identical** to a fresh build (the fresh build computes
    /// the same pure function in the same order; property-tested).
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `n_new < n` — domains grow,
    /// they never shrink.
    pub fn extended(&self, n_new: usize) -> Result<Self> {
        if n_new < self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "hier extend_to",
                lhs: (self.rows.len(), self.n),
                rhs: (n_new, n_new),
            });
        }
        let mut memo: std::collections::HashMap<usize, (f64, f64)> = self
            .nodes
            .iter()
            .map(|v| (v.hi - v.lo, (v.gamma, v.s)))
            .collect();
        Self::build(n_new, self.branching, &mut memo)
    }

    /// Shared constructor: `memo` maps node width → `(γ, s)`. An empty
    /// memo is a fresh build; [`Self::extended`] seeds it from an existing
    /// operator. Entries must come from this same pure recurrence (leaf
    /// `s = 1`; internal `γ = Σ child s`, `s = γ/(1+γ)`) over the same
    /// branching factor.
    fn build(
        n: usize,
        branching: usize,
        memo: &mut std::collections::HashMap<usize, (f64, f64)>,
    ) -> Result<Self> {
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let b = branching.max(2);

        // BFS construction: the same splitting rule as the CSR builder
        // (b nearly equal children, wider ones first, zero-width skipped).
        let mut nodes: Vec<Node> = vec![Node {
            lo: 0,
            hi: n,
            child_start: 0,
            child_count: 0,
            gamma: 0.0,
            s: 0.0,
        }];
        let mut next = 0;
        while next < nodes.len() {
            let (lo, hi) = (nodes[next].lo, nodes[next].hi);
            let len = hi - lo;
            if len > 1 {
                let base = len / b;
                let extra = len % b;
                let child_start = nodes.len();
                let mut start = lo;
                for i in 0..b {
                    let width = base + usize::from(i < extra);
                    if width == 0 {
                        continue;
                    }
                    nodes.push(Node {
                        lo: start,
                        hi: start + width,
                        child_start: 0,
                        child_count: 0,
                        gamma: 0.0,
                        s: 0.0,
                    });
                    start += width;
                }
                nodes[next].child_start = child_start;
                nodes[next].child_count = nodes.len() - child_start;
            }
            next += 1;
        }

        // Bottom-up γ/s precompute (reverse BFS order: children before
        // parents). `(γ, s)` is a pure function of node width given the
        // branching factor, so the memo short-circuits every width already
        // solved — either earlier in this pass or by the seed operator in
        // [`Self::extended`]. Memoised and freshly computed values are
        // bitwise interchangeable: both run this exact recurrence.
        for v in (0..nodes.len()).rev() {
            let width = nodes[v].hi - nodes[v].lo;
            if let Some(&(gamma, s)) = memo.get(&width) {
                nodes[v].gamma = gamma;
                nodes[v].s = s;
            } else {
                if nodes[v].child_count == 0 {
                    nodes[v].s = 1.0;
                } else {
                    let (cs, cc) = (nodes[v].child_start, nodes[v].child_count);
                    let gamma: f64 = nodes[cs..cs + cc].iter().map(|c| c.s).sum();
                    nodes[v].gamma = gamma;
                    nodes[v].s = gamma / (1.0 + gamma);
                }
                memo.insert(width, (nodes[v].gamma, nodes[v].s));
            }
        }

        // Row order: the CSR builder sorts intervals ascending (and dedups,
        // which only matters for n == 1 where root == leaf).
        let mut rows: Vec<(usize, usize)> = nodes.iter().map(|v| (v.lo, v.hi)).collect();
        rows.sort_unstable();
        rows.dedup();

        // ‖H_b‖₁ = max cell cover count, via a difference array.
        let mut cover = vec![0i64; n + 1];
        for &(lo, hi) in &rows {
            cover[lo] += 1;
            cover[hi] -= 1;
        }
        let mut running = 0i64;
        let mut max_cover = 0i64;
        for d in &cover[..n] {
            running += d;
            max_cover = max_cover.max(running);
        }

        // Scatter plan: counting sort of the covering rows per cell,
        // stable in row order (rows visited ascending both passes), so the
        // per-cell fold order matches the serial reference exactly.
        let mut cover_off = vec![0u32; n + 1];
        let mut running_cov = 0i64;
        for c in 0..n {
            running_cov += cover[c];
            cover_off[c + 1] = cover_off[c] + running_cov as u32;
        }
        let mut cover_rows = vec![0u32; cover_off[n] as usize];
        let mut cursor: Vec<u32> = cover_off[..n].to_vec();
        for (r, &(lo, hi)) in rows.iter().enumerate() {
            for c in lo..hi {
                cover_rows[cursor[c] as usize] = r as u32;
                cursor[c] += 1;
            }
        }

        Ok(Self {
            n,
            branching: b,
            nodes,
            rows,
            cover_rows,
            cover_off,
            l1_norm: max_cover as f64,
        })
    }

    /// The tree fan-out `b`.
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// The two sweeps of the Sherman–Morrison solve, writing into
    /// caller-owned buffers. Every entry that is ever read is written
    /// first (`sx` fully in the bottom-up sweep; `coeff` for internal
    /// nodes only, which are the only ones read; `acc` for every non-root
    /// node by its parent, with the root seeded explicitly; `x` once per
    /// leaf, and every cell is exactly one leaf), so dirty buffers produce
    /// bit-identical results to fresh ones.
    fn solve_sweeps(
        &self,
        b: &[f64],
        sx: &mut [f64],
        coeff: &mut [f64],
        acc: &mut [f64],
        x: &mut [f64],
    ) {
        let nodes = &self.nodes;
        let m = nodes.len();

        // Bottom-up: per node, the entry sum of its subtree solution
        // `Σ (M_v⁻¹ b_v)` (`sx`) and the Sherman–Morrison coefficient
        // `c_v = (uᵀD⁻¹b) / (1 + γ_v)`.
        for v in (0..m).rev() {
            let node = &nodes[v];
            if node.child_count == 0 {
                sx[v] = b[node.lo];
            } else {
                let (cs, cc) = (node.child_start, node.child_count);
                let alpha: f64 = sx[cs..cs + cc].iter().sum();
                let c = alpha / (1.0 + node.gamma);
                coeff[v] = c;
                sx[v] = alpha - c * node.gamma;
            }
        }

        // Top-down: accumulate the telescoped correction coefficient
        // `A_child = (A_v + c_v) · f_child`, `f = 1/(1+γ)` for internal
        // children and 1 for leaves; at a leaf, x = b − A.
        acc[0] = 0.0;
        for v in 0..m {
            let node = &nodes[v];
            if node.child_count == 0 {
                x[node.lo] = b[node.lo] - acc[v];
            } else {
                let down = acc[v] + coeff[v];
                let (cs, cc) = (node.child_start, node.child_count);
                for c in cs..cs + cc {
                    acc[c] = if nodes[c].child_count == 0 {
                        down
                    } else {
                        down / (1.0 + nodes[c].gamma)
                    };
                }
            }
        }
    }

    /// `Aᵀ` of `LANES` lane-interleaved columns at once: each cell gathers
    /// a whole lane-vector of row weights per covering row.
    ///
    /// Walks the precomputed per-cell cover lists, so each output cell is
    /// accumulated in registers and written exactly once — the naive
    /// row-major sweep read-modify-writes every cell once per covering row
    /// (≈ depth × the panel) and is L2-bandwidth-bound on large domains.
    /// The row-weight loads stay cache-hot because adjacent cells share
    /// all but their deepest covering rows. Per lane, each cell still
    /// accumulates its covering rows in ascending row order (the lists
    /// are built row-ascending), starting from zero — the exact
    /// floating-point sequence of the single-RHS scatter, bit for bit.
    fn scatter_lanes(&self, yt: &[f64], bt: &mut [f64]) {
        for (c, cell) in bt.chunks_exact_mut(LANES).enumerate() {
            let lo = self.cover_off[c] as usize;
            let hi = self.cover_off[c + 1] as usize;
            let mut acc = [0.0f64; LANES];
            for &r in &self.cover_rows[lo..hi] {
                let w = &yt[r as usize * LANES..(r as usize + 1) * LANES];
                for (a, &wl) in acc.iter_mut().zip(w) {
                    *a += wl;
                }
            }
            cell.copy_from_slice(&acc);
        }
    }

    /// [`HierarchicalOperator::solve_sweeps`] over `LANES` lane-interleaved
    /// right-hand sides: one interval-tree walk amortized across the whole
    /// tile, with every scalar recurrence replicated per lane in the same
    /// order (children summed ascending, identical correction telescoping),
    /// so each lane is bit-identical to the scalar sweeps. The same
    /// write-before-read discipline as the scalar version keeps dirty
    /// buffers safe.
    ///
    /// Unlike the scalar sweeps, the top-down correction accumulator
    /// reuses `sx`: the subtree sums are dead once the bottom-up pass
    /// finishes (only `coeff` carries over), and every `acc` slot is
    /// written by the parent before its node reads it, so the aliasing is
    /// value-invisible — it just avoids streaming a third
    /// `nodes × LANES` buffer through the cache per tile.
    fn solve_sweeps_lanes(&self, b: &[f64], sx: &mut [f64], coeff: &mut [f64], x: &mut [f64]) {
        let nodes = &self.nodes;
        let m = nodes.len();

        for v in (0..m).rev() {
            let node = &nodes[v];
            if node.child_count == 0 {
                let src = &b[node.lo * LANES..(node.lo + 1) * LANES];
                sx[v * LANES..(v + 1) * LANES].copy_from_slice(src);
            } else {
                let (cs, cc) = (node.child_start, node.child_count);
                let mut alpha = [0.0f64; LANES];
                for c in cs..cs + cc {
                    let child = &sx[c * LANES..(c + 1) * LANES];
                    for (a, &s) in alpha.iter_mut().zip(child) {
                        *a += s;
                    }
                }
                for (l, &a) in alpha.iter().enumerate() {
                    let c = a / (1.0 + node.gamma);
                    coeff[v * LANES + l] = c;
                    sx[v * LANES + l] = a - c * node.gamma;
                }
            }
        }

        let acc = sx;
        acc[..LANES].fill(0.0);
        for v in 0..m {
            let node = &nodes[v];
            if node.child_count == 0 {
                let lo = node.lo;
                for l in 0..LANES {
                    x[lo * LANES + l] = b[lo * LANES + l] - acc[v * LANES + l];
                }
            } else {
                let mut down = [0.0f64; LANES];
                for (l, d) in down.iter_mut().enumerate() {
                    *d = acc[v * LANES + l] + coeff[v * LANES + l];
                }
                let (cs, cc) = (node.child_start, node.child_count);
                for c in cs..cs + cc {
                    if nodes[c].child_count == 0 {
                        acc[c * LANES..(c + 1) * LANES].copy_from_slice(&down);
                    } else {
                        let inv = 1.0 + nodes[c].gamma;
                        for (l, &d) in down.iter().enumerate() {
                            acc[c * LANES + l] = d / inv;
                        }
                    }
                }
            }
        }
    }
}

impl StrategyOperator for HierarchicalOperator {
    fn shape(&self) -> (usize, usize) {
        (self.rows.len(), self.n)
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "hier apply",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        // Row i sums x over its interval, left to right — the same
        // floating-point sequence as the CSR matvec over a 0/1 row.
        Ok(self
            .rows
            .iter()
            .map(|&(lo, hi)| x[lo..hi].iter().sum())
            .collect())
    }

    fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.rows.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "hier apply_transpose",
                lhs: (self.n, self.rows.len()),
                rhs: (y.len(), 1),
            });
        }
        // Scatter row values over their intervals in ascending row order:
        // each output cell accumulates exactly the covering rows,
        // ascending — the same sequence as the transposed-CSR matvec.
        let mut out = vec![0.0; self.n];
        for (&(lo, hi), &w) in self.rows.iter().zip(y) {
            for o in &mut out[lo..hi] {
                *o += w;
            }
        }
        Ok(out)
    }

    fn solve_normal(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "hier solve_normal",
                lhs: (self.n, self.n),
                rhs: (b.len(), 1),
            });
        }
        let m = self.nodes.len();
        let mut sx = vec![0.0f64; m];
        let mut coeff = vec![0.0f64; m];
        let mut acc = vec![0.0f64; m];
        let mut x = vec![0.0f64; self.n];
        self.solve_sweeps(b, &mut sx, &mut coeff, &mut acc, &mut x);
        Ok(x)
    }

    fn l1_operator_norm(&self) -> f64 {
        self.l1_norm
    }

    fn extend_to(&self, n_new: usize) -> Option<SharedOperator> {
        self.extended(n_new)
            .ok()
            .map(|op| Arc::new(op) as SharedOperator)
    }

    fn apply_transpose_into(&self, y: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if y.len() != self.rows.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "hier apply_transpose",
                lhs: (self.n, self.rows.len()),
                rhs: (y.len(), 1),
            });
        }
        // Zero + scatter, exactly like the allocating path.
        out.clear();
        out.resize(self.n, 0.0);
        for (&(lo, hi), &w) in self.rows.iter().zip(y) {
            for o in &mut out[lo..hi] {
                *o += w;
            }
        }
        Ok(())
    }

    fn solve_normal_into(
        &self,
        b: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        if b.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "hier solve_normal",
                lhs: (self.n, self.n),
                rhs: (b.len(), 1),
            });
        }
        let m = self.nodes.len();
        scratch.sweep_a.resize(m, 0.0);
        scratch.sweep_b.resize(m, 0.0);
        scratch.sweep_c.resize(m, 0.0);
        out.resize(self.n, 0.0);
        self.solve_sweeps(
            b,
            &mut scratch.sweep_a,
            &mut scratch.sweep_b,
            &mut scratch.sweep_c,
            out,
        );
        Ok(())
    }

    fn pinv_apply_into(
        &self,
        y: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        let mut t = scratch.take_transpose();
        let r = self
            .apply_transpose_into(y, &mut t)
            .and_then(|()| self.solve_normal_into(&t, out, scratch));
        scratch.put_transpose(t);
        r
    }

    /// Blocked override: full tiles of [`LANES`] columns go through
    /// [`HierarchicalOperator::scatter_lanes`]; the ragged tail falls back
    /// to the per-column single-RHS path (bit-identical by definition).
    fn apply_transpose_multi(
        &self,
        ys: &[f64],
        k: usize,
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        let m = self.rows.len();
        let n = self.n;
        check_panel(ys.len(), m, k, "hier apply_transpose_multi")?;
        out.resize(k * n, 0.0);
        let tiles = k / LANES;
        for t in 0..tiles {
            scratch.panel_a.resize(m * LANES, 0.0);
            pack_lanes(
                &ys[t * LANES * m..(t + 1) * LANES * m],
                m,
                &mut scratch.panel_a,
            );
            scratch.panel_b.resize(n * LANES, 0.0);
            self.scatter_lanes(&scratch.panel_a, &mut scratch.panel_b);
            unpack_lanes(
                &scratch.panel_b,
                n,
                &mut out[t * LANES * n..(t + 1) * LANES * n],
            );
        }
        let mut col = scratch.take_col();
        let mut result = Ok(());
        for j in tiles * LANES..k {
            if let Err(e) = self.apply_transpose_into(&ys[j * m..(j + 1) * m], &mut col) {
                result = Err(e);
                break;
            }
            out[j * n..(j + 1) * n].copy_from_slice(&col);
        }
        scratch.put_col(col);
        result
    }

    /// Blocked override: one lane-parallel pair of sweeps per tile of
    /// [`LANES`] right-hand sides, amortizing the interval-tree walk.
    fn solve_normal_multi(
        &self,
        bs: &[f64],
        k: usize,
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        let n = self.n;
        check_panel(bs.len(), n, k, "hier solve_normal_multi")?;
        out.resize(k * n, 0.0);
        let m = self.nodes.len();
        let tiles = k / LANES;
        for t in 0..tiles {
            scratch.panel_a.resize(n * LANES, 0.0);
            pack_lanes(
                &bs[t * LANES * n..(t + 1) * LANES * n],
                n,
                &mut scratch.panel_a,
            );
            scratch.sweep_a.resize(m * LANES, 0.0);
            scratch.sweep_b.resize(m * LANES, 0.0);
            scratch.panel_c.resize(n * LANES, 0.0);
            self.solve_sweeps_lanes(
                &scratch.panel_a,
                &mut scratch.sweep_a,
                &mut scratch.sweep_b,
                &mut scratch.panel_c,
            );
            unpack_lanes(
                &scratch.panel_c,
                n,
                &mut out[t * LANES * n..(t + 1) * LANES * n],
            );
        }
        let mut col = scratch.take_col();
        let mut result = Ok(());
        for j in tiles * LANES..k {
            if let Err(e) = self.solve_normal_into(&bs[j * n..(j + 1) * n], &mut col, scratch) {
                result = Err(e);
                break;
            }
            out[j * n..(j + 1) * n].copy_from_slice(&col);
        }
        scratch.put_col(col);
        result
    }

    /// Blocked override chaining [`HierarchicalOperator::scatter_lanes`]
    /// and [`HierarchicalOperator::solve_sweeps_lanes`] per tile — the
    /// panel entry point of the blocked Monte-Carlo prepare.
    fn pinv_apply_multi(
        &self,
        ys: &[f64],
        k: usize,
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        let m = self.rows.len();
        let n = self.n;
        check_panel(ys.len(), m, k, "hier pinv_apply_multi")?;
        out.resize(k * n, 0.0);
        let nodes = self.nodes.len();
        let tiles = k / LANES;
        for t in 0..tiles {
            scratch.panel_a.resize(m * LANES, 0.0);
            pack_lanes(
                &ys[t * LANES * m..(t + 1) * LANES * m],
                m,
                &mut scratch.panel_a,
            );
            scratch.panel_b.resize(n * LANES, 0.0);
            self.scatter_lanes(&scratch.panel_a, &mut scratch.panel_b);
            scratch.sweep_a.resize(nodes * LANES, 0.0);
            scratch.sweep_b.resize(nodes * LANES, 0.0);
            scratch.panel_c.resize(n * LANES, 0.0);
            self.solve_sweeps_lanes(
                &scratch.panel_b,
                &mut scratch.sweep_a,
                &mut scratch.sweep_b,
                &mut scratch.panel_c,
            );
            unpack_lanes(
                &scratch.panel_c,
                n,
                &mut out[t * LANES * n..(t + 1) * LANES * n],
            );
        }
        let mut col = scratch.take_col();
        let mut result = Ok(());
        for j in tiles * LANES..k {
            if let Err(e) = self.pinv_apply_into(&ys[j * m..(j + 1) * m], &mut col, scratch) {
                result = Err(e);
                break;
            }
            out[j * n..(j + 1) * n].copy_from_slice(&col);
        }
        scratch.put_col(col);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pinv, Matrix};

    /// Dense H_b for cross-checking, via the operator's own row list
    /// (the row-order property vs `Strategy::build_csr` is pinned in the
    /// cross-crate property tests, which can see both).
    fn dense(op: &HierarchicalOperator) -> Matrix {
        let (m, n) = op.shape();
        let mut a = Matrix::zeros(m, n);
        for (i, &(lo, hi)) in op.rows.iter().enumerate() {
            for j in lo..hi {
                a[(i, j)] = 1.0;
            }
        }
        a
    }

    fn vec_close(a: &[f64], b: &[f64], tol: f64) -> bool {
        let scale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol * scale)
    }

    #[test]
    fn solve_normal_matches_dense_inverse_small() {
        // Hand-checked 3-cell H2 case: M = [[3,2,1],[2,3,1],[1,1,2]],
        // M⁻¹ e₁ = (5, −3, −1)/8.
        let op = HierarchicalOperator::new(3, 2).unwrap();
        let x = op.solve_normal(&[1.0, 0.0, 0.0]).unwrap();
        assert!(vec_close(&x, &[5.0 / 8.0, -3.0 / 8.0, -1.0 / 8.0], 1e-12));
    }

    #[test]
    fn solve_normal_matches_pinv_across_sizes_and_branchings() {
        for b in [2usize, 3, 5] {
            for n in [1usize, 2, 3, 4, 5, 7, 9, 16, 27, 31, 33, 50] {
                let op = HierarchicalOperator::new(n, b).unwrap();
                let a = dense(&op);
                let ap = pinv(&a).unwrap();
                // A⁺y via the operator vs the dense pseudoinverse.
                let y: Vec<f64> = (0..op.rows())
                    .map(|i| ((i * 7 % 13) as f64) - 6.0)
                    .collect();
                let via_op = op.pinv_apply(&y).unwrap();
                let via_dense = ap.matvec(&y).unwrap();
                assert!(
                    vec_close(&via_op, &via_dense, 1e-10),
                    "b={b} n={n}: {via_op:?} vs {via_dense:?}"
                );
            }
        }
    }

    #[test]
    fn solve_normal_is_an_inverse_of_the_normal_matrix() {
        for (n, b) in [(6usize, 2usize), (10, 3), (17, 4)] {
            let op = HierarchicalOperator::new(n, b).unwrap();
            let x0: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            // b = (AᵀA) x0, then solve must recover x0.
            let ax = op.apply(&x0).unwrap();
            let atax = op.apply_transpose(&ax).unwrap();
            let back = op.solve_normal(&atax).unwrap();
            assert!(vec_close(&back, &x0, 1e-10), "n={n} b={b}");
        }
    }

    #[test]
    fn apply_matches_dense() {
        for (n, b) in [(1usize, 2usize), (8, 2), (13, 3), (25, 5)] {
            let op = HierarchicalOperator::new(n, b).unwrap();
            let a = dense(&op);
            let x: Vec<f64> = (0..n).map(|i| 0.5 * i as f64 - 1.0).collect();
            assert_eq!(op.apply(&x).unwrap(), a.matvec(&x).unwrap());
            let y: Vec<f64> = (0..op.rows()).map(|i| (i % 5) as f64 - 2.0).collect();
            let at = a.transpose().matvec(&y).unwrap();
            let got = op.apply_transpose(&y).unwrap();
            assert!(vec_close(&got, &at, 1e-12));
        }
    }

    #[test]
    fn l1_norm_matches_dense() {
        for (n, b) in [(1usize, 2usize), (2, 2), (8, 2), (9, 3), (50, 2), (64, 4)] {
            let op = HierarchicalOperator::new(n, b).unwrap();
            let a = dense(&op);
            assert_eq!(
                op.l1_operator_norm(),
                crate::l1_operator_norm(&a),
                "n={n} b={b}"
            );
        }
    }

    #[test]
    fn single_cell_domain() {
        let op = HierarchicalOperator::new(1, 2).unwrap();
        assert_eq!(op.shape(), (1, 1));
        assert_eq!(op.solve_normal(&[3.0]).unwrap(), vec![3.0]);
        assert_eq!(op.l1_operator_norm(), 1.0);
    }

    #[test]
    fn empty_domain_is_rejected() {
        assert!(matches!(
            HierarchicalOperator::new(0, 2),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn shape_mismatches_error() {
        let op = HierarchicalOperator::new(4, 2).unwrap();
        assert!(op.apply(&[1.0]).is_err());
        assert!(op.apply_transpose(&[1.0]).is_err());
        assert!(op.solve_normal(&[1.0]).is_err());
    }

    #[test]
    fn into_paths_are_bit_identical_even_with_dirty_scratch() {
        // The _into entry points must reproduce the allocating paths bit
        // for bit, regardless of what a reused scratch carries from a
        // previous (differently-sized) call.
        let mut scratch = OpScratch::new();
        let mut out = vec![f64::NAN; 3];
        for (n, b) in [(17usize, 3usize), (4, 2), (33, 2), (9, 5), (1, 2)] {
            let op = HierarchicalOperator::new(n, b).unwrap();
            let y: Vec<f64> = (0..op.rows())
                .map(|i| ((i * 5 % 11) as f64) - 4.0)
                .collect();
            let fresh = op.pinv_apply(&y).unwrap();
            op.pinv_apply_into(&y, &mut out, &mut scratch).unwrap();
            assert_eq!(out, fresh, "pinv n={n} b={b}");

            let rhs: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let fresh = op.solve_normal(&rhs).unwrap();
            op.solve_normal_into(&rhs, &mut out, &mut scratch).unwrap();
            assert_eq!(out, fresh, "solve n={n} b={b}");

            let fresh = op.apply_transpose(&y).unwrap();
            op.apply_transpose_into(&y, &mut out).unwrap();
            assert_eq!(out, fresh, "transpose n={n} b={b}");
        }
    }

    #[test]
    fn into_paths_check_shapes() {
        let op = HierarchicalOperator::new(4, 2).unwrap();
        let mut out = Vec::new();
        let mut scratch = OpScratch::new();
        assert!(op.apply_transpose_into(&[1.0], &mut out).is_err());
        assert!(op
            .solve_normal_into(&[1.0], &mut out, &mut scratch)
            .is_err());
        assert!(op.pinv_apply_into(&[1.0], &mut out, &mut scratch).is_err());
    }

    /// Deterministic pseudo-noise panel: `k` column-major columns.
    fn panel(col_len: usize, k: usize, salt: u64) -> Vec<f64> {
        (0..col_len * k)
            .map(|i| {
                let mut z = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                z ^= z >> 29;
                (z % 2_000) as f64 / 100.0 - 10.0
            })
            .collect()
    }

    #[test]
    fn multi_rhs_is_bit_identical_to_single_rhs_per_column() {
        // The blocked kernels must reproduce the single-RHS loop bit for
        // bit across branchings, non-power domains, and panel widths that
        // exercise empty/partial/multiple tiles plus ragged tails. The
        // scratch is reused across every iteration (so dirty,
        // differently-sized buffers are part of the test).
        let mut scratch = OpScratch::new();
        let mut got = Vec::new();
        let mut want_col = Vec::new();
        for b in [2usize, 3, 5] {
            for n in [1usize, 3, 7, 9, 33, 100] {
                let op = HierarchicalOperator::new(n, b).unwrap();
                let m = op.rows();
                for k in [1usize, 7, 8, 9, 16, 17] {
                    let ys = panel(m, k, (b * 1000 + n) as u64);
                    op.apply_transpose_multi(&ys, k, &mut got, &mut scratch)
                        .unwrap();
                    for j in 0..k {
                        op.apply_transpose_into(&ys[j * m..(j + 1) * m], &mut want_col)
                            .unwrap();
                        assert_eq!(
                            &got[j * n..(j + 1) * n],
                            &want_col[..],
                            "apply_transpose_multi b={b} n={n} k={k} col={j}"
                        );
                    }

                    let bs = panel(n, k, (b * 77 + n) as u64);
                    op.solve_normal_multi(&bs, k, &mut got, &mut scratch)
                        .unwrap();
                    for j in 0..k {
                        op.solve_normal_into(&bs[j * n..(j + 1) * n], &mut want_col, &mut scratch)
                            .unwrap();
                        assert_eq!(
                            &got[j * n..(j + 1) * n],
                            &want_col[..],
                            "solve_normal_multi b={b} n={n} k={k} col={j}"
                        );
                    }

                    op.pinv_apply_multi(&ys, k, &mut got, &mut scratch).unwrap();
                    for j in 0..k {
                        op.pinv_apply_into(&ys[j * m..(j + 1) * m], &mut want_col, &mut scratch)
                            .unwrap();
                        assert_eq!(
                            &got[j * n..(j + 1) * n],
                            &want_col[..],
                            "pinv_apply_multi b={b} n={n} k={k} col={j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn multi_rhs_matches_the_default_per_column_implementation() {
        // The trait's default multi-RHS implementation is the reference;
        // the blocked override must agree with it bit for bit. Route the
        // default through a thin wrapper that does not override the multi
        // methods.
        #[derive(Debug)]
        struct Unblocked<'a>(&'a HierarchicalOperator);
        impl StrategyOperator for Unblocked<'_> {
            fn shape(&self) -> (usize, usize) {
                self.0.shape()
            }
            fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
                self.0.apply(x)
            }
            fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>> {
                self.0.apply_transpose(y)
            }
            fn solve_normal(&self, b: &[f64]) -> Result<Vec<f64>> {
                self.0.solve_normal(b)
            }
            fn l1_operator_norm(&self) -> f64 {
                self.0.l1_operator_norm()
            }
            fn apply_transpose_into(&self, y: &[f64], out: &mut Vec<f64>) -> Result<()> {
                self.0.apply_transpose_into(y, out)
            }
            fn solve_normal_into(
                &self,
                b: &[f64],
                out: &mut Vec<f64>,
                scratch: &mut OpScratch,
            ) -> Result<()> {
                self.0.solve_normal_into(b, out, scratch)
            }
            fn pinv_apply_into(
                &self,
                y: &[f64],
                out: &mut Vec<f64>,
                scratch: &mut OpScratch,
            ) -> Result<()> {
                self.0.pinv_apply_into(y, out, scratch)
            }
        }

        let mut s1 = OpScratch::new();
        let mut s2 = OpScratch::new();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        for (n, b, k) in [(33usize, 2usize, 17usize), (27, 3, 8), (50, 5, 9)] {
            let op = HierarchicalOperator::new(n, b).unwrap();
            let reference = Unblocked(&op);
            let ys = panel(op.rows(), k, 0xDEAD ^ n as u64);
            op.pinv_apply_multi(&ys, k, &mut got, &mut s1).unwrap();
            reference
                .pinv_apply_multi(&ys, k, &mut want, &mut s2)
                .unwrap();
            assert_eq!(got, want, "n={n} b={b} k={k}");
        }
    }

    #[test]
    fn multi_rhs_checks_panel_shapes() {
        let op = HierarchicalOperator::new(4, 2).unwrap();
        let mut out = Vec::new();
        let mut scratch = OpScratch::new();
        // One element short of two full columns.
        let bad = vec![0.0; 2 * op.rows() - 1];
        assert!(op
            .apply_transpose_multi(&bad, 2, &mut out, &mut scratch)
            .is_err());
        assert!(op
            .pinv_apply_multi(&bad, 2, &mut out, &mut scratch)
            .is_err());
        let bad_n = vec![0.0; 2 * 4 - 1];
        assert!(op
            .solve_normal_multi(&bad_n, 2, &mut out, &mut scratch)
            .is_err());
    }

    #[test]
    fn extended_is_bit_identical_to_fresh_build() {
        // The whole point of `extended` is that the incremental path is
        // indistinguishable from a from-scratch rebuild — not just "close",
        // but bitwise. Compare every precomputed field and a solve.
        for &b in &[2usize, 3, 5] {
            for &(n_old, n_new) in &[
                (1usize, 2usize),
                (4, 4),
                (4, 7),
                (16, 17),
                (16, 64),
                (100, 257),
            ] {
                let old = HierarchicalOperator::new(n_old, b).unwrap();
                let ext = old.extended(n_new).unwrap();
                let fresh = HierarchicalOperator::new(n_new, b).unwrap();

                assert_eq!(ext.n, fresh.n, "b={b} {n_old}->{n_new}");
                assert_eq!(ext.branching, fresh.branching);
                assert_eq!(ext.rows, fresh.rows, "b={b} {n_old}->{n_new}");
                assert_eq!(ext.cover_off, fresh.cover_off);
                assert_eq!(ext.cover_rows, fresh.cover_rows);
                assert_eq!(ext.l1_norm.to_bits(), fresh.l1_norm.to_bits());
                assert_eq!(ext.nodes.len(), fresh.nodes.len());
                for (e, f) in ext.nodes.iter().zip(fresh.nodes.iter()) {
                    assert_eq!((e.lo, e.hi), (f.lo, f.hi));
                    assert_eq!(
                        (e.child_start, e.child_count),
                        (f.child_start, f.child_count)
                    );
                    assert_eq!(
                        e.gamma.to_bits(),
                        f.gamma.to_bits(),
                        "b={b} {n_old}->{n_new}"
                    );
                    assert_eq!(e.s.to_bits(), f.s.to_bits(), "b={b} {n_old}->{n_new}");
                }

                let rhs: Vec<f64> = (0..n_new).map(|i| (i as f64).sin()).collect();
                let xe = ext.solve_normal(&rhs).unwrap();
                let xf = fresh.solve_normal(&rhs).unwrap();
                for (a, c) in xe.iter().zip(xf.iter()) {
                    assert_eq!(a.to_bits(), c.to_bits());
                }
            }
        }
    }

    #[test]
    fn extend_to_rejects_shrinking() {
        let op = HierarchicalOperator::new(8, 2).unwrap();
        assert!(matches!(
            op.extended(7),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(op.extend_to(7).is_none());
        // Equal size is a valid (trivial) extension.
        assert!(op.extend_to(8).is_some());
    }

    #[test]
    fn large_domain_solve_is_fast_and_accurate() {
        // 100k cells: a dense pinv would be ~10¹⁵ flops; the operator
        // solves in milliseconds. Accuracy is checked via the residual.
        let n = 100_000;
        let op = HierarchicalOperator::new(n, 2).unwrap();
        let x0: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) / 97.0 - 0.5).collect();
        let rhs = op.apply_transpose(&op.apply(&x0).unwrap()).unwrap();
        let back = op.solve_normal(&rhs).unwrap();
        assert!(vec_close(&back, &x0, 1e-9));
    }
}
