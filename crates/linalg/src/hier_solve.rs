//! The hierarchical strategy `H_b` as a matrix-free operator with a
//! near-linear normal-equations solve.
//!
//! # Structure
//!
//! `H_b` over `n` cells has one 0/1 row per node of a `b`-ary interval
//! tree (root `[0, n)`, children splitting their parent into `b` nearly
//! equal parts, singleton leaves included). Its normal matrix is a sum of
//! all-ones blocks, one per tree node `v` with interval `I_v`:
//!
//! ```text
//! M = HᵀH = Σ_v 1_{I_v} 1_{I_v}ᵀ
//! ```
//!
//! Restricted to a subtree, `M_v = blockdiag(M_c for children c) +
//! 1 1ᵀ` — a block-diagonal matrix plus a rank-one all-ones update. That
//! is exactly the shape the Sherman–Morrison identity collapses:
//!
//! ```text
//! (D + uuᵀ)⁻¹ b  =  D⁻¹b − D⁻¹u · (uᵀD⁻¹b) / (1 + uᵀD⁻¹u)
//! ```
//!
//! with `u = 1_{I_v}`. Two observations make the recursion linear instead
//! of exponential:
//!
//! * `D⁻¹u` restricted to child `c` is `t_c = M_c⁻¹ 1`, whose **sum**
//!   `s_c = Σ t_c` obeys the scalar recurrence `s_leaf = 1`,
//!   `γ_v = Σ_c s_c`, `s_v = γ_v / (1 + γ_v)` — precomputed bottom-up
//!   once per operator, one f64 per node;
//! * the rank-one corrections applied by every ancestor of a leaf
//!   telescope into a single scalar per node, accumulated in one
//!   top-down sweep (`A_child = (A_v + c_v) · f_child` below).
//!
//! A solve is therefore one bottom-up sweep (subtree sums `Σ M_c⁻¹ b`)
//! and one top-down sweep (correction coefficients), `O(#nodes) = O(n)`
//! per right-hand side after the `O(n)` precompute — against `O(n³)` for
//! the dense QR pseudoinverse the operator replaces. `apply` and
//! `apply_transpose` walk the `O(n log_b n)` stored interval lengths.
//!
//! Row order matches `Strategy::build_csr` exactly (intervals ascending
//! by `(lo, hi)`), and the per-row summation order matches the CSR
//! matvec, so operator and CSR paths agree bit for bit — property-tested
//! in `tests/properties.rs`.

use crate::operator::{OpScratch, StrategyOperator};
use crate::{LinalgError, Result};

/// One node of the interval tree, in BFS order (children contiguous).
#[derive(Debug, Clone)]
struct Node {
    lo: usize,
    hi: usize,
    /// Index of the first child in the BFS `nodes` vec (0 ⇒ leaf, since
    /// node 0 is always the root and never anyone's child).
    child_start: usize,
    /// Number of children (0 for leaves).
    child_count: usize,
    /// `γ_v = Σ_c s_c` (0 for leaves, unused there).
    gamma: f64,
    /// `s_v = Σ (M_v⁻¹ 1)`: 1 for leaves, `γ/(1+γ)` for internal nodes.
    s: f64,
}

/// The hierarchical strategy `H_b` over `n` cells as a matrix-free
/// [`StrategyOperator`]. Construction is `O(n log_b n)` time and memory
/// (the interval lists); `solve_normal` is `O(n)` per right-hand side.
#[derive(Debug, Clone)]
pub struct HierarchicalOperator {
    n: usize,
    branching: usize,
    /// Tree nodes in BFS order; `nodes[0]` is the root.
    nodes: Vec<Node>,
    /// Row intervals sorted ascending by `(lo, hi)` — the exact row order
    /// of `Strategy::build_csr`.
    rows: Vec<(usize, usize)>,
    /// `‖H_b‖₁`: the maximum number of tree nodes covering one cell.
    l1_norm: f64,
}

impl HierarchicalOperator {
    /// Builds `H_b` over `n` cells with fan-out `branching`.
    ///
    /// # Errors
    /// * [`LinalgError::Empty`] when `n == 0`.
    /// * [`LinalgError::ShapeMismatch`] is never returned here; a
    ///   branching factor below 2 is rejected by the caller
    ///   (`Strategy::operator`) — this constructor clamps defensively.
    pub fn new(n: usize, branching: usize) -> Result<Self> {
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let b = branching.max(2);

        // BFS construction: the same splitting rule as the CSR builder
        // (b nearly equal children, wider ones first, zero-width skipped).
        let mut nodes: Vec<Node> = vec![Node {
            lo: 0,
            hi: n,
            child_start: 0,
            child_count: 0,
            gamma: 0.0,
            s: 0.0,
        }];
        let mut next = 0;
        while next < nodes.len() {
            let (lo, hi) = (nodes[next].lo, nodes[next].hi);
            let len = hi - lo;
            if len > 1 {
                let base = len / b;
                let extra = len % b;
                let child_start = nodes.len();
                let mut start = lo;
                for i in 0..b {
                    let width = base + usize::from(i < extra);
                    if width == 0 {
                        continue;
                    }
                    nodes.push(Node {
                        lo: start,
                        hi: start + width,
                        child_start: 0,
                        child_count: 0,
                        gamma: 0.0,
                        s: 0.0,
                    });
                    start += width;
                }
                nodes[next].child_start = child_start;
                nodes[next].child_count = nodes.len() - child_start;
            }
            next += 1;
        }

        // Bottom-up γ/s precompute (reverse BFS order: children before
        // parents).
        for v in (0..nodes.len()).rev() {
            if nodes[v].child_count == 0 {
                nodes[v].s = 1.0;
            } else {
                let (cs, cc) = (nodes[v].child_start, nodes[v].child_count);
                let gamma: f64 = nodes[cs..cs + cc].iter().map(|c| c.s).sum();
                nodes[v].gamma = gamma;
                nodes[v].s = gamma / (1.0 + gamma);
            }
        }

        // Row order: the CSR builder sorts intervals ascending (and dedups,
        // which only matters for n == 1 where root == leaf).
        let mut rows: Vec<(usize, usize)> = nodes.iter().map(|v| (v.lo, v.hi)).collect();
        rows.sort_unstable();
        rows.dedup();

        // ‖H_b‖₁ = max cell cover count, via a difference array.
        let mut cover = vec![0i64; n + 1];
        for &(lo, hi) in &rows {
            cover[lo] += 1;
            cover[hi] -= 1;
        }
        let mut running = 0i64;
        let mut max_cover = 0i64;
        for d in &cover[..n] {
            running += d;
            max_cover = max_cover.max(running);
        }

        Ok(Self {
            n,
            branching: b,
            nodes,
            rows,
            l1_norm: max_cover as f64,
        })
    }

    /// The tree fan-out `b`.
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// The two sweeps of the Sherman–Morrison solve, writing into
    /// caller-owned buffers. Every entry that is ever read is written
    /// first (`sx` fully in the bottom-up sweep; `coeff` for internal
    /// nodes only, which are the only ones read; `acc` for every non-root
    /// node by its parent, with the root seeded explicitly; `x` once per
    /// leaf, and every cell is exactly one leaf), so dirty buffers produce
    /// bit-identical results to fresh ones.
    fn solve_sweeps(
        &self,
        b: &[f64],
        sx: &mut [f64],
        coeff: &mut [f64],
        acc: &mut [f64],
        x: &mut [f64],
    ) {
        let nodes = &self.nodes;
        let m = nodes.len();

        // Bottom-up: per node, the entry sum of its subtree solution
        // `Σ (M_v⁻¹ b_v)` (`sx`) and the Sherman–Morrison coefficient
        // `c_v = (uᵀD⁻¹b) / (1 + γ_v)`.
        for v in (0..m).rev() {
            let node = &nodes[v];
            if node.child_count == 0 {
                sx[v] = b[node.lo];
            } else {
                let (cs, cc) = (node.child_start, node.child_count);
                let alpha: f64 = sx[cs..cs + cc].iter().sum();
                let c = alpha / (1.0 + node.gamma);
                coeff[v] = c;
                sx[v] = alpha - c * node.gamma;
            }
        }

        // Top-down: accumulate the telescoped correction coefficient
        // `A_child = (A_v + c_v) · f_child`, `f = 1/(1+γ)` for internal
        // children and 1 for leaves; at a leaf, x = b − A.
        acc[0] = 0.0;
        for v in 0..m {
            let node = &nodes[v];
            if node.child_count == 0 {
                x[node.lo] = b[node.lo] - acc[v];
            } else {
                let down = acc[v] + coeff[v];
                let (cs, cc) = (node.child_start, node.child_count);
                for c in cs..cs + cc {
                    acc[c] = if nodes[c].child_count == 0 {
                        down
                    } else {
                        down / (1.0 + nodes[c].gamma)
                    };
                }
            }
        }
    }
}

impl StrategyOperator for HierarchicalOperator {
    fn shape(&self) -> (usize, usize) {
        (self.rows.len(), self.n)
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "hier apply",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        // Row i sums x over its interval, left to right — the same
        // floating-point sequence as the CSR matvec over a 0/1 row.
        Ok(self
            .rows
            .iter()
            .map(|&(lo, hi)| x[lo..hi].iter().sum())
            .collect())
    }

    fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.rows.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "hier apply_transpose",
                lhs: (self.n, self.rows.len()),
                rhs: (y.len(), 1),
            });
        }
        // Scatter row values over their intervals in ascending row order:
        // each output cell accumulates exactly the covering rows,
        // ascending — the same sequence as the transposed-CSR matvec.
        let mut out = vec![0.0; self.n];
        for (&(lo, hi), &w) in self.rows.iter().zip(y) {
            for o in &mut out[lo..hi] {
                *o += w;
            }
        }
        Ok(out)
    }

    fn solve_normal(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "hier solve_normal",
                lhs: (self.n, self.n),
                rhs: (b.len(), 1),
            });
        }
        let m = self.nodes.len();
        let mut sx = vec![0.0f64; m];
        let mut coeff = vec![0.0f64; m];
        let mut acc = vec![0.0f64; m];
        let mut x = vec![0.0f64; self.n];
        self.solve_sweeps(b, &mut sx, &mut coeff, &mut acc, &mut x);
        Ok(x)
    }

    fn l1_operator_norm(&self) -> f64 {
        self.l1_norm
    }

    fn apply_transpose_into(&self, y: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if y.len() != self.rows.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "hier apply_transpose",
                lhs: (self.n, self.rows.len()),
                rhs: (y.len(), 1),
            });
        }
        // Zero + scatter, exactly like the allocating path.
        out.clear();
        out.resize(self.n, 0.0);
        for (&(lo, hi), &w) in self.rows.iter().zip(y) {
            for o in &mut out[lo..hi] {
                *o += w;
            }
        }
        Ok(())
    }

    fn solve_normal_into(
        &self,
        b: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        if b.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "hier solve_normal",
                lhs: (self.n, self.n),
                rhs: (b.len(), 1),
            });
        }
        let m = self.nodes.len();
        scratch.sweep_a.resize(m, 0.0);
        scratch.sweep_b.resize(m, 0.0);
        scratch.sweep_c.resize(m, 0.0);
        out.resize(self.n, 0.0);
        self.solve_sweeps(
            b,
            &mut scratch.sweep_a,
            &mut scratch.sweep_b,
            &mut scratch.sweep_c,
            out,
        );
        Ok(())
    }

    fn pinv_apply_into(
        &self,
        y: &[f64],
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        let mut t = scratch.take_transpose();
        let r = self
            .apply_transpose_into(y, &mut t)
            .and_then(|()| self.solve_normal_into(&t, out, scratch));
        scratch.put_transpose(t);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pinv, Matrix};

    /// Dense H_b for cross-checking, via the operator's own row list
    /// (the row-order property vs `Strategy::build_csr` is pinned in the
    /// cross-crate property tests, which can see both).
    fn dense(op: &HierarchicalOperator) -> Matrix {
        let (m, n) = op.shape();
        let mut a = Matrix::zeros(m, n);
        for (i, &(lo, hi)) in op.rows.iter().enumerate() {
            for j in lo..hi {
                a[(i, j)] = 1.0;
            }
        }
        a
    }

    fn vec_close(a: &[f64], b: &[f64], tol: f64) -> bool {
        let scale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol * scale)
    }

    #[test]
    fn solve_normal_matches_dense_inverse_small() {
        // Hand-checked 3-cell H2 case: M = [[3,2,1],[2,3,1],[1,1,2]],
        // M⁻¹ e₁ = (5, −3, −1)/8.
        let op = HierarchicalOperator::new(3, 2).unwrap();
        let x = op.solve_normal(&[1.0, 0.0, 0.0]).unwrap();
        assert!(vec_close(&x, &[5.0 / 8.0, -3.0 / 8.0, -1.0 / 8.0], 1e-12));
    }

    #[test]
    fn solve_normal_matches_pinv_across_sizes_and_branchings() {
        for b in [2usize, 3, 5] {
            for n in [1usize, 2, 3, 4, 5, 7, 9, 16, 27, 31, 33, 50] {
                let op = HierarchicalOperator::new(n, b).unwrap();
                let a = dense(&op);
                let ap = pinv(&a).unwrap();
                // A⁺y via the operator vs the dense pseudoinverse.
                let y: Vec<f64> = (0..op.rows())
                    .map(|i| ((i * 7 % 13) as f64) - 6.0)
                    .collect();
                let via_op = op.pinv_apply(&y).unwrap();
                let via_dense = ap.matvec(&y).unwrap();
                assert!(
                    vec_close(&via_op, &via_dense, 1e-10),
                    "b={b} n={n}: {via_op:?} vs {via_dense:?}"
                );
            }
        }
    }

    #[test]
    fn solve_normal_is_an_inverse_of_the_normal_matrix() {
        for (n, b) in [(6usize, 2usize), (10, 3), (17, 4)] {
            let op = HierarchicalOperator::new(n, b).unwrap();
            let x0: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            // b = (AᵀA) x0, then solve must recover x0.
            let ax = op.apply(&x0).unwrap();
            let atax = op.apply_transpose(&ax).unwrap();
            let back = op.solve_normal(&atax).unwrap();
            assert!(vec_close(&back, &x0, 1e-10), "n={n} b={b}");
        }
    }

    #[test]
    fn apply_matches_dense() {
        for (n, b) in [(1usize, 2usize), (8, 2), (13, 3), (25, 5)] {
            let op = HierarchicalOperator::new(n, b).unwrap();
            let a = dense(&op);
            let x: Vec<f64> = (0..n).map(|i| 0.5 * i as f64 - 1.0).collect();
            assert_eq!(op.apply(&x).unwrap(), a.matvec(&x).unwrap());
            let y: Vec<f64> = (0..op.rows()).map(|i| (i % 5) as f64 - 2.0).collect();
            let at = a.transpose().matvec(&y).unwrap();
            let got = op.apply_transpose(&y).unwrap();
            assert!(vec_close(&got, &at, 1e-12));
        }
    }

    #[test]
    fn l1_norm_matches_dense() {
        for (n, b) in [(1usize, 2usize), (2, 2), (8, 2), (9, 3), (50, 2), (64, 4)] {
            let op = HierarchicalOperator::new(n, b).unwrap();
            let a = dense(&op);
            assert_eq!(
                op.l1_operator_norm(),
                crate::l1_operator_norm(&a),
                "n={n} b={b}"
            );
        }
    }

    #[test]
    fn single_cell_domain() {
        let op = HierarchicalOperator::new(1, 2).unwrap();
        assert_eq!(op.shape(), (1, 1));
        assert_eq!(op.solve_normal(&[3.0]).unwrap(), vec![3.0]);
        assert_eq!(op.l1_operator_norm(), 1.0);
    }

    #[test]
    fn empty_domain_is_rejected() {
        assert!(matches!(
            HierarchicalOperator::new(0, 2),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn shape_mismatches_error() {
        let op = HierarchicalOperator::new(4, 2).unwrap();
        assert!(op.apply(&[1.0]).is_err());
        assert!(op.apply_transpose(&[1.0]).is_err());
        assert!(op.solve_normal(&[1.0]).is_err());
    }

    #[test]
    fn into_paths_are_bit_identical_even_with_dirty_scratch() {
        // The _into entry points must reproduce the allocating paths bit
        // for bit, regardless of what a reused scratch carries from a
        // previous (differently-sized) call.
        let mut scratch = OpScratch::new();
        let mut out = vec![f64::NAN; 3];
        for (n, b) in [(17usize, 3usize), (4, 2), (33, 2), (9, 5), (1, 2)] {
            let op = HierarchicalOperator::new(n, b).unwrap();
            let y: Vec<f64> = (0..op.rows())
                .map(|i| ((i * 5 % 11) as f64) - 4.0)
                .collect();
            let fresh = op.pinv_apply(&y).unwrap();
            op.pinv_apply_into(&y, &mut out, &mut scratch).unwrap();
            assert_eq!(out, fresh, "pinv n={n} b={b}");

            let rhs: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let fresh = op.solve_normal(&rhs).unwrap();
            op.solve_normal_into(&rhs, &mut out, &mut scratch).unwrap();
            assert_eq!(out, fresh, "solve n={n} b={b}");

            let fresh = op.apply_transpose(&y).unwrap();
            op.apply_transpose_into(&y, &mut out).unwrap();
            assert_eq!(out, fresh, "transpose n={n} b={b}");
        }
    }

    #[test]
    fn into_paths_check_shapes() {
        let op = HierarchicalOperator::new(4, 2).unwrap();
        let mut out = Vec::new();
        let mut scratch = OpScratch::new();
        assert!(op.apply_transpose_into(&[1.0], &mut out).is_err());
        assert!(op
            .solve_normal_into(&[1.0], &mut out, &mut scratch)
            .is_err());
        assert!(op.pinv_apply_into(&[1.0], &mut out, &mut scratch).is_err());
    }

    #[test]
    fn large_domain_solve_is_fast_and_accurate() {
        // 100k cells: a dense pinv would be ~10¹⁵ flops; the operator
        // solves in milliseconds. Accuracy is checked via the residual.
        let n = 100_000;
        let op = HierarchicalOperator::new(n, 2).unwrap();
        let x0: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) / 97.0 - 0.5).collect();
        let rhs = op.apply_transpose(&op.apply(&x0).unwrap()).unwrap();
        let back = op.solve_normal(&rhs).unwrap();
        assert!(vec_close(&back, &x0, 1e-9));
    }
}
