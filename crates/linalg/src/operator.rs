//! Matrix-free strategy operators.
//!
//! The strategy mechanism never needs the strategy matrix `A` — or its
//! pseudoinverse — as an array of numbers. Every quantity it consumes is
//! the *action* of `A` on a vector:
//!
//! * `ŷ = A x + η` — one [`StrategyOperator::apply`];
//! * `A⁺ ŷ = (AᵀA)⁻¹ Aᵀ ŷ` — one [`StrategyOperator::apply_transpose`]
//!   followed by one [`StrategyOperator::solve_normal`] (for full column
//!   rank, which every APEx strategy has);
//! * the sensitivity `‖A‖₁` — a scalar the operator knows structurally.
//!
//! Expressing strategies as operators replaces the `O(n³)` dense QR
//! pseudoinverse — the dominant prepare-time cost at large domains — with
//! structure-exploiting solves: the hierarchical family solves its normal
//! equations in `O(n)` per right-hand side
//! (see [`crate::hier_solve::HierarchicalOperator`]), and the identity is
//! free. The dense path survives as [`DenseOperator`], the
//! reference/fallback implementation for property tests and benchmarks:
//! it materializes `A⁺` once via [`crate::pinv`] and implements the same
//! trait, so agreement between the two is a one-line property test.

use std::sync::Arc;

use crate::{pinv, LinalgError, Matrix, Result};

/// The action of a full-column-rank strategy matrix `A ∈ ℝ^{m × n}`,
/// `m ≥ n`, without committing to a representation.
///
/// Implementations must be consistent: `apply_transpose` must be the exact
/// adjoint of `apply`, and `solve_normal` must solve `(AᵀA) x = b` for the
/// same `A`. The provided [`StrategyOperator::pinv_apply`] then computes
/// `A⁺ y` for any `y`, which is all the matrix mechanism needs to
/// reconstruct workload answers as `W (A⁺ ŷ)`.
pub trait StrategyOperator: std::fmt::Debug + Send + Sync {
    /// `(rows, cols)` of the underlying `A` — rows are strategy queries,
    /// cols are domain cells.
    fn shape(&self) -> (usize, usize);

    /// `A x` — the strategy's answer vector on a histogram `x`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `x.len() != cols`.
    fn apply(&self, x: &[f64]) -> Result<Vec<f64>>;

    /// `Aᵀ y`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `y.len() != rows`.
    fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>>;

    /// Solves the normal equations `(AᵀA) x = b`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `b.len() != cols`.
    fn solve_normal(&self, b: &[f64]) -> Result<Vec<f64>>;

    /// The L1 operator norm `‖A‖₁` (maximum column absolute sum) — the
    /// strategy's sensitivity.
    fn l1_operator_norm(&self) -> f64;

    /// Number of strategy rows `m`.
    fn rows(&self) -> usize {
        self.shape().0
    }

    /// Number of domain cells `n`.
    fn cols(&self) -> usize {
        self.shape().1
    }

    /// `A⁺ y = (AᵀA)⁻¹ Aᵀ y` — the pseudoinverse action for full column
    /// rank, composed from the two primitives.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `y.len() != rows`.
    fn pinv_apply(&self, y: &[f64]) -> Result<Vec<f64>> {
        self.solve_normal(&self.apply_transpose(y)?)
    }

    /// [`StrategyOperator::apply_transpose`] writing into a caller-owned
    /// buffer. The default delegates to the allocating method (so every
    /// implementation is automatically correct); structured operators
    /// override it to reuse `out`. `out` is resized and fully overwritten.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `y.len() != rows`.
    fn apply_transpose_into(&self, y: &[f64], out: &mut Vec<f64>) -> Result<()> {
        *out = self.apply_transpose(y)?;
        Ok(())
    }

    /// [`StrategyOperator::solve_normal`] writing into a caller-owned
    /// buffer, with `scratch` available for the solver's intermediates.
    /// The default delegates to the allocating method; structured
    /// operators override it to make the solve allocation-free. Results
    /// are bit-identical to `solve_normal` regardless of scratch contents.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `b.len() != cols`.
    fn solve_normal_into(
        &self,
        b: &[f64],
        out: &mut Vec<f64>,
        _scratch: &mut OpScratch,
    ) -> Result<()> {
        *out = self.solve_normal(b)?;
        Ok(())
    }

    /// [`StrategyOperator::pinv_apply`] writing into a caller-owned
    /// buffer — the per-sample hot call of the Monte-Carlo prepare. The
    /// default delegates to `pinv_apply` (preserving each implementation's
    /// exact numerics, e.g. the dense operator's direct `A⁺` matvec);
    /// structured operators override it to chain the `_into` primitives
    /// through `scratch` with zero allocations in steady state.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `y.len() != rows`.
    fn pinv_apply_into(
        &self,
        y: &[f64],
        out: &mut Vec<f64>,
        _scratch: &mut OpScratch,
    ) -> Result<()> {
        *out = self.pinv_apply(y)?;
        Ok(())
    }

    /// Multi-RHS [`StrategyOperator::apply_transpose`]: `ys` holds `k`
    /// right-hand-side columns of length `rows` each, stored column-major
    /// (`ys[j*rows..(j+1)*rows]` is column `j`); `out` is resized to
    /// `k * cols` and column `j` of it receives `Aᵀ ysⱼ`.
    ///
    /// The default processes the panel one column at a time through
    /// [`StrategyOperator::apply_transpose_into`], so every column of the
    /// result is **bit-identical** to the single-RHS path by construction —
    /// that makes the default the correctness reference every blocked
    /// override is property-tested against. Structured operators override
    /// it to amortize their structural walk across the panel.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `ys.len() != k * rows`.
    fn apply_transpose_multi(
        &self,
        ys: &[f64],
        k: usize,
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        let (m, n) = self.shape();
        check_panel(ys.len(), m, k, "apply_transpose_multi")?;
        out.resize(k * n, 0.0);
        let mut col = scratch.take_col();
        let mut result = Ok(());
        for j in 0..k {
            if let Err(e) = self.apply_transpose_into(&ys[j * m..(j + 1) * m], &mut col) {
                result = Err(e);
                break;
            }
            out[j * n..(j + 1) * n].copy_from_slice(&col);
        }
        scratch.put_col(col);
        result
    }

    /// Multi-RHS [`StrategyOperator::solve_normal`]: `bs` holds `k`
    /// column-major right-hand sides of length `cols`; column `j` of `out`
    /// receives `(AᵀA)⁻¹ bsⱼ`. Same per-column bit-identity contract (and
    /// default implementation shape) as
    /// [`StrategyOperator::apply_transpose_multi`].
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `bs.len() != k * cols`.
    fn solve_normal_multi(
        &self,
        bs: &[f64],
        k: usize,
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        let n = self.cols();
        check_panel(bs.len(), n, k, "solve_normal_multi")?;
        out.resize(k * n, 0.0);
        let mut col = scratch.take_col();
        let mut result = Ok(());
        for j in 0..k {
            if let Err(e) = self.solve_normal_into(&bs[j * n..(j + 1) * n], &mut col, scratch) {
                result = Err(e);
                break;
            }
            out[j * n..(j + 1) * n].copy_from_slice(&col);
        }
        scratch.put_col(col);
        result
    }

    /// Multi-RHS [`StrategyOperator::pinv_apply`]: `ys` holds `k`
    /// column-major noise columns of length `rows`; column `j` of `out`
    /// receives `A⁺ ysⱼ`. This is the panel entry point of the blocked
    /// Monte-Carlo prepare. Same per-column bit-identity contract (and
    /// default implementation shape) as
    /// [`StrategyOperator::apply_transpose_multi`].
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `ys.len() != k * rows`.
    fn pinv_apply_multi(
        &self,
        ys: &[f64],
        k: usize,
        out: &mut Vec<f64>,
        scratch: &mut OpScratch,
    ) -> Result<()> {
        let (m, n) = self.shape();
        check_panel(ys.len(), m, k, "pinv_apply_multi")?;
        out.resize(k * n, 0.0);
        let mut col = scratch.take_col();
        let mut result = Ok(());
        for j in 0..k {
            if let Err(e) = self.pinv_apply_into(&ys[j * m..(j + 1) * m], &mut col, scratch) {
                result = Err(e);
                break;
            }
            out[j * n..(j + 1) * n].copy_from_slice(&col);
        }
        scratch.put_col(col);
        result
    }

    /// Grows the operator to `n_new` domain cells after a domain
    /// extension, reusing this operator's precompute where the structure
    /// allows. Returns `None` when the operator has no incremental path
    /// (the caller falls back to a fresh build); implementations that
    /// return `Some` guarantee the result is **bit-identical** to a fresh
    /// build over `n_new` cells (property-tested for the hierarchical
    /// family).
    fn extend_to(&self, _n_new: usize) -> Option<SharedOperator> {
        None
    }
}

/// Shared handle to a strategy operator — the shape caches and mechanism
/// state want (operators are immutable once built).
pub type SharedOperator = Arc<dyn StrategyOperator>;

/// Reusable scratch space for the `_into` entry points of
/// [`StrategyOperator`].
///
/// The operator-path Monte-Carlo prepare performs one `pinv_apply` per
/// sample; with fresh allocations that is five vectors per sample (the
/// `Aᵀy` intermediate plus the four sweep buffers of the hierarchical
/// solve). Holding one `OpScratch` per worker thread and calling
/// [`StrategyOperator::pinv_apply_into`] makes the steady-state loop
/// allocation-free: buffers grow to the operator's dimensions once and are
/// fully overwritten on every call, so results are bit-identical to the
/// allocating paths.
///
/// The buffers carry no values between calls — a dirty scratch is as good
/// as a fresh one (property-tested).
#[derive(Debug, Clone, Default)]
pub struct OpScratch {
    /// Node-sized sweep buffer (hierarchical solve: subtree sums `sx`).
    pub(crate) sweep_a: Vec<f64>,
    /// Node-sized sweep buffer (Sherman–Morrison coefficients).
    pub(crate) sweep_b: Vec<f64>,
    /// Node-sized sweep buffer (top-down accumulated corrections).
    pub(crate) sweep_c: Vec<f64>,
    /// Domain-sized intermediate (`Aᵀ y` inside `pinv_apply_into`).
    transpose: Vec<f64>,
    /// Single-column staging buffer for the per-column multi-RHS defaults
    /// and blocked-kernel ragged tails.
    col: Vec<f64>,
    /// Lane-interleaved packed input panel of the blocked kernels.
    pub(crate) panel_a: Vec<f64>,
    /// Lane-interleaved intermediate panel (`Aᵀ` of a noise panel).
    pub(crate) panel_b: Vec<f64>,
    /// Lane-interleaved output panel of the blocked kernels.
    pub(crate) panel_c: Vec<f64>,
}

impl OpScratch {
    /// A fresh (empty) scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the `Aᵀy` buffer out of the scratch so an implementation can
    /// use it while still passing `&mut self` to `solve_normal_into`
    /// (returned via [`OpScratch::put_transpose`]).
    pub fn take_transpose(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.transpose)
    }

    /// Returns the buffer taken by [`OpScratch::take_transpose`].
    pub fn put_transpose(&mut self, buf: Vec<f64>) {
        self.transpose = buf;
    }

    /// Takes the single-column staging buffer (same ownership dance as
    /// [`OpScratch::take_transpose`], for the multi-RHS per-column paths).
    pub fn take_col(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.col)
    }

    /// Returns the buffer taken by [`OpScratch::take_col`].
    pub fn put_col(&mut self, buf: Vec<f64>) {
        self.col = buf;
    }
}

fn check_len(len: usize, expect: usize, op: &'static str) -> Result<()> {
    if len != expect {
        return Err(LinalgError::ShapeMismatch {
            op,
            lhs: (expect, 1),
            rhs: (len, 1),
        });
    }
    Ok(())
}

/// Validates a column-major panel: `len` must be exactly `k` columns of
/// `col_len` elements each.
pub(crate) fn check_panel(len: usize, col_len: usize, k: usize, op: &'static str) -> Result<()> {
    if len != col_len.saturating_mul(k) {
        return Err(LinalgError::ShapeMismatch {
            op,
            lhs: (col_len, k),
            rhs: (len, 1),
        });
    }
    Ok(())
}

/// The identity strategy `A = I_n`: every operation is a copy.
#[derive(Debug, Clone)]
pub struct IdentityOperator {
    n: usize,
}

impl IdentityOperator {
    /// The identity over `n` domain cells.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl StrategyOperator for IdentityOperator {
    fn shape(&self) -> (usize, usize) {
        (self.n, self.n)
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        check_len(x.len(), self.n, "identity apply")?;
        Ok(x.to_vec())
    }

    fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>> {
        check_len(y.len(), self.n, "identity apply_transpose")?;
        Ok(y.to_vec())
    }

    fn solve_normal(&self, b: &[f64]) -> Result<Vec<f64>> {
        check_len(b.len(), self.n, "identity solve_normal")?;
        Ok(b.to_vec())
    }

    fn l1_operator_norm(&self) -> f64 {
        1.0
    }

    fn extend_to(&self, n_new: usize) -> Option<SharedOperator> {
        // The identity has no precompute; "extension" is just a bigger
        // identity, trivially bit-identical to a fresh build.
        (n_new >= self.n).then(|| Arc::new(IdentityOperator::new(n_new)) as SharedOperator)
    }
}

/// The dense reference operator: materializes `A` and its QR-based
/// pseudoinverse `A⁺` up front.
///
/// This is the `O(n³)`-prepare path the structured operators replace. It
/// stays because (a) property tests pin the structured solves against it,
/// (b) benchmarks need the baseline, and (c) it accepts *any* full-rank
/// matrix, so ad-hoc strategies without structure still work.
#[derive(Debug, Clone)]
pub struct DenseOperator {
    a: Matrix,
    /// `A⁺` (`n × m`), from QR.
    a_pinv: Matrix,
    /// `A⁺ᵀ` (`m × n`), kept so `solve_normal` is two row-major matvecs.
    a_pinv_t: Matrix,
    l1_norm: f64,
}

impl DenseOperator {
    /// Builds the operator from a full-column-rank dense `A`, paying one
    /// `O(m n²)` QR pseudoinverse.
    ///
    /// # Errors
    /// * [`LinalgError::Empty`] for an empty matrix.
    /// * [`LinalgError::RankDeficient`] when `A` lacks full rank.
    pub fn new(a: Matrix) -> Result<Self> {
        let a_pinv = pinv(&a)?;
        let a_pinv_t = a_pinv.transpose();
        let l1_norm = crate::l1_operator_norm(&a);
        Ok(Self {
            a,
            a_pinv,
            a_pinv_t,
            l1_norm,
        })
    }

    /// The materialized pseudoinverse `A⁺` (`n × m`).
    pub fn pinv_matrix(&self) -> &Matrix {
        &self.a_pinv
    }
}

impl StrategyOperator for DenseOperator {
    fn shape(&self) -> (usize, usize) {
        self.a.shape()
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.a.matvec(x)
    }

    fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>> {
        check_len(y.len(), self.a.rows(), "dense apply_transpose")?;
        // Aᵀy without materializing Aᵀ: accumulate rows of A scaled by yᵢ.
        let mut out = vec![0.0; self.a.cols()];
        for (i, &w) in y.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            for (o, &v) in out.iter_mut().zip(self.a.row(i)) {
                *o += w * v;
            }
        }
        Ok(out)
    }

    fn solve_normal(&self, b: &[f64]) -> Result<Vec<f64>> {
        // (AᵀA)⁻¹ = A⁺ A⁺ᵀ for full column rank.
        self.a_pinv.matvec(&self.a_pinv_t.matvec(b)?)
    }

    fn l1_operator_norm(&self) -> f64 {
        self.l1_norm
    }

    fn pinv_apply(&self, y: &[f64]) -> Result<Vec<f64>> {
        // One matvec against the materialized A⁺ — more accurate than the
        // default solve_normal ∘ apply_transpose composition.
        self.a_pinv.matvec(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_operator_is_a_no_op() {
        let op = IdentityOperator::new(3);
        assert_eq!(op.shape(), (3, 3));
        assert_eq!(op.rows(), 3);
        assert_eq!(op.cols(), 3);
        assert_eq!(op.l1_operator_norm(), 1.0);
        let x = [1.0, -2.0, 0.5];
        assert_eq!(op.apply(&x).unwrap(), x.to_vec());
        assert_eq!(op.apply_transpose(&x).unwrap(), x.to_vec());
        assert_eq!(op.solve_normal(&x).unwrap(), x.to_vec());
        assert_eq!(op.pinv_apply(&x).unwrap(), x.to_vec());
        assert!(op.apply(&[1.0]).is_err());
    }

    #[test]
    fn dense_operator_matches_pinv() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, -1.0],
        ]);
        let op = DenseOperator::new(a.clone()).unwrap();
        assert_eq!(op.shape(), (4, 2));

        let y = [1.0, 2.0, -1.0, 0.5];
        let expect = pinv(&a).unwrap().matvec(&y).unwrap();
        let got = op.pinv_apply(&y).unwrap();
        let composed = op.solve_normal(&op.apply_transpose(&y).unwrap()).unwrap();
        for i in 0..2 {
            assert!((got[i] - expect[i]).abs() < 1e-12);
            assert!((composed[i] - expect[i]).abs() < 1e-10);
        }

        // apply / apply_transpose against the dense forms.
        let x = [3.0, -1.0];
        assert_eq!(op.apply(&x).unwrap(), a.matvec(&x).unwrap());
        let att = a.transpose().matvec(&y).unwrap();
        let aot = op.apply_transpose(&y).unwrap();
        for i in 0..2 {
            assert!((att[i] - aot[i]).abs() < 1e-12);
        }
        assert_eq!(op.l1_operator_norm(), crate::l1_operator_norm(&a));
    }

    #[test]
    fn dense_operator_rejects_rank_deficient() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        assert!(DenseOperator::new(a).is_err());
    }

    #[test]
    fn default_into_paths_match_allocating_paths() {
        // Identity and dense operators keep the default `_into` impls,
        // which must preserve each operator's exact numerics (notably the
        // dense operator's direct `A⁺` matvec inside `pinv_apply`).
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let dense = DenseOperator::new(a).unwrap();
        let ident = IdentityOperator::new(3);
        let mut scratch = OpScratch::new();
        let mut out = Vec::new();

        let y3 = [1.0, -2.0, 0.5];
        dense.pinv_apply_into(&y3, &mut out, &mut scratch).unwrap();
        assert_eq!(out, dense.pinv_apply(&y3).unwrap());
        dense.apply_transpose_into(&y3, &mut out).unwrap();
        assert_eq!(out, dense.apply_transpose(&y3).unwrap());
        let b2 = [0.25, -4.0];
        dense
            .solve_normal_into(&b2, &mut out, &mut scratch)
            .unwrap();
        assert_eq!(out, dense.solve_normal(&b2).unwrap());

        ident.pinv_apply_into(&y3, &mut out, &mut scratch).unwrap();
        assert_eq!(out, y3.to_vec());
        assert!(ident.pinv_apply_into(&b2, &mut out, &mut scratch).is_err());
    }

    #[test]
    fn solve_normal_solves_the_normal_equations() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let op = DenseOperator::new(a.clone()).unwrap();
        let b = [1.0, 4.0];
        let x = op.solve_normal(&b).unwrap();
        // Check AᵀA x = b.
        let ata = a.transpose().matmul(&a).unwrap();
        let back = ata.matvec(&x).unwrap();
        for i in 0..2 {
            assert!((back[i] - b[i]).abs() < 1e-10, "{back:?}");
        }
    }
}
