//! Dense + sparse linear algebra substrate for the APEx reproduction.
//!
//! APEx represents counting-query workloads as matrices (`W`), answers them
//! through *strategy* matrices (`A`), and reconstructs workload answers via
//! the Moore–Penrose pseudoinverse (`W A⁺`, Section 5.2 of the paper). None
//! of the allowed offline crates provide linear algebra, so this crate
//! implements the small, numerically careful subset APEx needs:
//!
//! * a dense row-major [`Matrix`] with the usual arithmetic,
//! * a compressed-sparse-row [`CsrMatrix`] for the 0/1 incidence structures
//!   (workloads, hierarchical strategies) whose products should scale with
//!   *nonzeros*, not *cells* — see the [`sparse`] module docs for when each
//!   representation wins,
//! * [`matmul_batched`] — a blocked, optionally thread-parallel dense
//!   product (feature `par`) whose results are bit-identical to serial
//!   per-column `matvec`, used to batch the Monte-Carlo translation,
//! * the [`StrategyOperator`] abstraction — matrix-free `apply` /
//!   `apply_transpose` / `solve_normal` actions of a strategy matrix —
//!   with the `O(n)`-per-solve [`HierarchicalOperator`] (recursive
//!   Sherman–Morrison over the `H_b` interval tree, see [`hier_solve`]),
//!   the trivial [`IdentityOperator`], and the dense [`DenseOperator`]
//!   reference that wraps [`pinv`],
//! * Householder [`qr_decompose`] decomposition,
//! * least-squares solving and matrix inversion built on QR,
//! * [`pinv`] — the Moore–Penrose pseudoinverse for full-rank matrices,
//! * the norms used by the paper: the **L1 operator norm** (`‖·‖₁`, maximum
//!   column absolute sum — the *sensitivity* of a workload), the Frobenius
//!   norm, and the `ℓ∞` vector norm.
//!
//! Everything is `f64`. Dense stays the right choice for anything derived
//! from a pseudoinverse (those matrices are numerically dense); sparse wins
//! for the incidence structures, whose density drops as `O(log n / n)` for
//! hierarchical strategies.

pub mod hier_solve;
mod matrix;
mod norms;
pub mod operator;
pub mod par;
mod pinv;
mod qr;
mod solve;
pub mod sparse;

pub use hier_solve::HierarchicalOperator;
pub use matrix::Matrix;
pub use norms::{frobenius_norm, l1_operator_norm, linf_norm};
pub use operator::{DenseOperator, IdentityOperator, OpScratch, SharedOperator, StrategyOperator};
pub use par::{
    matmul_batched, matmul_batched_bt, matmul_batched_bt_with_threads, matmul_batched_with_threads,
    max_threads,
};
pub use pinv::pinv;
pub use qr::{qr_decompose, QrDecomposition};
pub use solve::{invert, solve_least_squares, solve_upper_triangular};
pub use sparse::{CsrBuilder, CsrMatrix, PanelPlan};

/// Errors surfaced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// The matrix is (numerically) rank deficient, so the requested
    /// decomposition or inverse does not exist.
    RankDeficient {
        /// Index of the pivot that collapsed.
        pivot: usize,
        /// Magnitude of the collapsed pivot.
        magnitude: f64,
    },
    /// An empty matrix was supplied where a non-empty one is required.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::RankDeficient { pivot, magnitude } => write!(
                f,
                "matrix is numerically rank deficient (pivot {pivot} has magnitude {magnitude:.3e})"
            ),
            LinalgError::Empty => write!(f, "operation requires a non-empty matrix"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
