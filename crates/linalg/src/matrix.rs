//! Dense row-major matrix type.

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// This is deliberately a small, predictable type: storage is one contiguous
/// `Vec<f64>`, `(i, j)` indexing is `i * cols + j`, and all arithmetic
/// returns fresh matrices (workloads in APEx are small, so clarity beats
/// in-place cleverness everywhere except the inner loops of QR).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {}, expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A single row as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A single row as a mutable slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of the underlying row-major buffer.
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A single column, copied out.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through `rhs` rows contiguously.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *o = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scalar multiple `self * s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Largest absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Whether every element of `self - rhs` has magnitude below `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            let row = self.row(i);
            let cells: Vec<String> = row.iter().map(|v| format!("{v:9.4}")).collect();
            writeln!(f, "[ {} ]", cells.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trips_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]);
        let y = a.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn matvec_rejects_wrong_length() {
        let a = Matrix::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 4.0]]);
        let b = a.scale(2.0);
        let sum = a.add(&a).unwrap();
        assert_eq!(sum, b);
        let diff = b.sub(&a).unwrap();
        assert_eq!(diff, a);
    }

    #[test]
    fn col_extraction() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn max_abs_and_approx_eq() {
        let a = Matrix::from_rows(&[vec![1.0, -3.5], vec![2.0, 0.0]]);
        assert_eq!(a.max_abs(), 3.5);
        let b = a.scale(1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
    }

    #[test]
    fn empty_matrix_is_empty() {
        let m = Matrix::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.max_abs(), 0.0);
    }
}
