//! Blocked, optionally thread-parallel dense matrix multiplication.
//!
//! The Monte-Carlo translation multiplies the dense reconstruction matrix
//! `W A⁺` against a *batch* of noise vectors. Done one vector at a time
//! (`matvec` per sample), each output element is a strict left-to-right
//! dot product — a loop-carried floating-point dependency the compiler
//! cannot vectorize without reassociating. The batched kernel here keeps
//! the **same accumulation order per output element** (ascending `k`) but
//! iterates columns innermost, so every lane is independent and the loop
//! vectorizes; column blocking keeps the working set in L1.
//!
//! Determinism contract: for every element, the sequence of floating-point
//! operations is identical to `Matrix::matvec` on the corresponding column
//! — results are **bit-for-bit equal** to the serial per-vector path, for
//! any thread count and any block size (threads split *output rows*, never
//! the reduction dimension). Property tests in `tests/properties.rs` pin
//! this down.
//!
//! The `par` feature (default on) enables `std::thread::scope`-based
//! row-parallelism sized by `available_parallelism`; without it the same
//! blocked kernel runs on the calling thread. There is deliberately no
//! external thread-pool dependency — scoped std threads are enough for
//! coarse row blocks and keep the crate offline-buildable.

use crate::{LinalgError, Matrix, Result};

/// Register-tile shape: `MR × NR` output elements are accumulated in
/// registers at a time. `NR = 8` doubles is one AVX-512 register (two
/// AVX2); `MR = 8` rows gives 64 independent accumulation chains — enough
/// to hide floating-point latency without spilling on any x86-64 with 16+
/// vector registers.
const MR: usize = 8;
/// Columns per register tile (see [`MR`]).
const NR: usize = 8;

/// Maximum worker threads the `par` feature will use.
#[cfg(feature = "par")]
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maximum worker threads with the `par` feature disabled: one.
#[cfg(not(feature = "par"))]
pub fn max_threads() -> usize {
    1
}

/// Blocked dense product `a * b`, parallel over output rows when the `par`
/// feature is enabled. Bit-identical to `a.matvec(column)` per column.
///
/// # Errors
/// [`LinalgError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_batched(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    matmul_batched_with_threads(a, b, max_threads())
}

/// [`matmul_batched`] with an explicit thread count (clamped to ≥ 1).
/// The result does not depend on `threads` — only wall-clock does.
///
/// # Errors
/// [`LinalgError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_batched_with_threads(a: &Matrix, b: &Matrix, threads: usize) -> Result<Matrix> {
    let k = a.cols();
    if k != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_batched",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    run_tiled(a, b.as_slice(), b.cols(), threads, Layout::RowMajor)
}

/// Blocked dense product `a * bᵀ` where the right-hand side is handed over
/// in **transposed storage**: `b_t` is `n × k` and the result is the
/// `m × n` product of `a` with `b_tᵀ`.
///
/// This is the natural orientation for batched Monte-Carlo noise: sample
/// `j`'s noise vector is row `j` of `b_t`, written contiguously. Results
/// are bit-identical to [`matmul_batched`] on the equivalent row-major
/// matrix (the kernel and the per-element operation order are shared; only
/// the panel packing reads a different layout).
///
/// # Errors
/// [`LinalgError::ShapeMismatch`] when `a.cols() != b_t.cols()`.
pub fn matmul_batched_bt(a: &Matrix, b_t: &Matrix) -> Result<Matrix> {
    matmul_batched_bt_with_threads(a, b_t, max_threads())
}

/// [`matmul_batched_bt`] with an explicit thread count (clamped to ≥ 1).
///
/// # Errors
/// [`LinalgError::ShapeMismatch`] when `a.cols() != b_t.cols()`.
pub fn matmul_batched_bt_with_threads(a: &Matrix, b_t: &Matrix, threads: usize) -> Result<Matrix> {
    let k = a.cols();
    if k != b_t.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_batched_bt",
            lhs: a.shape(),
            rhs: b_t.shape(),
        });
    }
    run_tiled(a, b_t.as_slice(), b_t.rows(), threads, Layout::Transposed)
}

/// Storage layout of the right-hand side handed to the kernel.
#[derive(Clone, Copy)]
enum Layout {
    /// `b` is `k × n` row-major.
    RowMajor,
    /// `b` is `n × k` row-major (i.e. the transpose of the operand).
    Transposed,
}

fn run_tiled(a: &Matrix, b: &[f64], n: usize, threads: usize, layout: Layout) -> Result<Matrix> {
    let (m, k) = a.shape();
    let mut out = Matrix::zeros(m, n);
    // k == 0: every element is an empty sum — already the zero matrix
    // (and `chunks(rows_per_chunk * k)` below would be `chunks(0)`).
    if m == 0 || n == 0 || k == 0 {
        return Ok(out);
    }
    let threads = threads.clamp(1, m);
    let rows_per_chunk = m.div_ceil(threads);
    let a_data = a.as_slice();

    if threads == 1 {
        kernel(a_data, b, out.data_mut(), k, n, layout);
    } else {
        let a_chunks = a_data.chunks(rows_per_chunk * k);
        let out_chunks = out.data_mut().chunks_mut(rows_per_chunk * n);
        std::thread::scope(|s| {
            for (a_chunk, out_chunk) in a_chunks.zip(out_chunks) {
                s.spawn(move || kernel(a_chunk, b, out_chunk, k, n, layout));
            }
        });
    }
    Ok(out)
}

/// Packs column-tile `jt..jt+NR` of row-major `b` (`k × n`) into a
/// contiguous `k × NR` panel, zero-padding ragged lanes. The kernel then
/// streams the panel strictly sequentially — no strided access, so the
/// cache/TLB behavior is independent of `n` (a power-of-two `n` would
/// otherwise alias a handful of cache sets). The zero lanes are discarded
/// on write-back, so padding never touches a real output element.
fn pack_panel(b: &[f64], k: usize, n: usize, jt: usize, panel: &mut [f64]) {
    let w = NR.min(n - jt);
    for kk in 0..k {
        let src = &b[kk * n + jt..kk * n + jt + w];
        let dst = &mut panel[kk * NR..kk * NR + NR];
        dst[..w].copy_from_slice(src);
        dst[w..].fill(0.0);
    }
}

/// [`pack_panel`] for a transposed right-hand side: `b_t` is `n × k`, and
/// panel lane `t` at step `kk` is `b_t[jt + t][kk]`. Reads `w` contiguous
/// rows of `b_t` in an interleaved sweep (each a sequential stream).
fn pack_panel_bt(b_t: &[f64], k: usize, n: usize, jt: usize, panel: &mut [f64]) {
    let w = NR.min(n - jt);
    for kk in 0..k {
        panel[kk * NR..(kk + 1) * NR].fill(0.0);
    }
    for t in 0..w {
        let row = &b_t[(jt + t) * k..(jt + t + 1) * k];
        for (kk, &v) in row.iter().enumerate() {
            panel[kk * NR + t] = v;
        }
    }
}

/// The register-tiled kernel over a contiguous chunk of output rows.
///
/// For each output element `(i, j)` the accumulation runs over `kk`
/// ascending with no skipping, no reassociation, and no mul/add fusion —
/// the exact operation sequence of a serial dot product. Only
/// *independent* elements are interleaved: an `MR × NR` accumulator tile
/// lives in registers across the whole `kk` loop, so the naive
/// 2-loads-+-1-store per multiply-add becomes ~1/MR streaming loads, and
/// the `MR · NR` independent chains keep the vector units saturated
/// instead of waiting on a single addition's latency. This — not thread
/// count — is what makes the batched Monte-Carlo path several times
/// faster than the per-sample `matvec` loop on a single core.
fn kernel(a_chunk: &[f64], b: &[f64], out_chunk: &mut [f64], k: usize, n: usize, layout: Layout) {
    let rows = out_chunk.len() / n;
    let mut panel = vec![0.0_f64; k * NR];
    let mut jt = 0;
    while jt < n {
        let w = NR.min(n - jt);
        match layout {
            Layout::RowMajor => pack_panel(b, k, n, jt, &mut panel),
            Layout::Transposed => pack_panel_bt(b, k, n, jt, &mut panel),
        }

        // Full MR-row tiles.
        let mut i = 0;
        while i + MR <= rows {
            let mut acc = [[0.0_f64; NR]; MR];
            // Pre-slice the MR rows of `a` so every inner access is a
            // bounds-hoistable `arows[r][kk]`.
            let arows: [&[f64]; MR] =
                std::array::from_fn(|r| &a_chunk[(i + r) * k..(i + r + 1) * k]);
            for (kk, bv) in panel.chunks_exact(NR).enumerate() {
                for (accr, arow) in acc.iter_mut().zip(&arows) {
                    let aik = arow[kk];
                    for t in 0..NR {
                        accr[t] += aik * bv[t];
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out_chunk[(i + r) * n + jt..(i + r) * n + jt + w].copy_from_slice(&accr[..w]);
            }
            i += MR;
        }

        // Ragged rows: one row at a time, same NR-wide lanes.
        while i < rows {
            let mut acc = [0.0_f64; NR];
            let arow = &a_chunk[i * k..(i + 1) * k];
            for (kk, &aik) in arow.iter().enumerate() {
                let bv = &panel[kk * NR..(kk + 1) * NR];
                for t in 0..NR {
                    acc[t] += aik * bv[t];
                }
            }
            out_chunk[i * n + jt..i * n + jt + w].copy_from_slice(&acc[..w]);
            i += 1;
        }

        jt += NR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random matrix (no RNG dependency in this crate).
    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    #[test]
    fn matches_naive_matmul_numerically() {
        let a = pseudo_random(17, 23, 1);
        let b = pseudo_random(23, 31, 2);
        let got = matmul_batched(&a, &b).unwrap();
        let want = a.matmul(&b).unwrap();
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn bit_identical_to_per_column_matvec() {
        let a = pseudo_random(13, 37, 3);
        let b = pseudo_random(37, 29, 4);
        let got = matmul_batched(&a, &b).unwrap();
        for j in 0..b.cols() {
            let col = b.col(j);
            let want = a.matvec(&col).unwrap();
            for i in 0..a.rows() {
                assert_eq!(
                    got[(i, j)].to_bits(),
                    want[i].to_bits(),
                    "element ({i},{j}) differs from serial matvec"
                );
            }
        }
    }

    #[test]
    fn independent_of_thread_count() {
        let a = pseudo_random(40, 19, 5);
        let b = pseudo_random(19, 300, 6);
        let one = matmul_batched_with_threads(&a, &b, 1).unwrap();
        for threads in [2, 3, 7, 64] {
            let t = matmul_batched_with_threads(&a, &b, threads).unwrap();
            assert_eq!(one, t, "threads = {threads}");
        }
    }

    #[test]
    fn transposed_rhs_is_bit_identical_to_row_major() {
        for (m, k, n) in [(13, 29, 37), (8, 64, 500), (3, 5, 7)] {
            let a = pseudo_random(m, k, 10);
            let b = pseudo_random(k, n, 11);
            let bt = b.transpose();
            let via_rows = matmul_batched(&a, &b).unwrap();
            let via_bt = matmul_batched_bt(&a, &bt).unwrap();
            assert_eq!(via_rows, via_bt, "{m}x{k}x{n}");
            for threads in [2, 5] {
                assert_eq!(
                    matmul_batched_bt_with_threads(&a, &bt, threads).unwrap(),
                    via_rows,
                    "{m}x{k}x{n} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn transposed_rhs_shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let bt = Matrix::zeros(4, 2); // cols = 2 != a.cols() = 3
        assert!(matches!(
            matmul_batched_bt(&a, &bt),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            matmul_batched(&a, &b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_shapes() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(matmul_batched(&a, &b).unwrap().shape(), (0, 4));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        assert_eq!(matmul_batched(&a, &b).unwrap(), Matrix::zeros(2, 4));
        // Regression: k == 0 with an explicit multi-thread request must not
        // panic (`chunks(0)`), regardless of the host's core count.
        assert_eq!(
            matmul_batched_with_threads(&a, &b, 4).unwrap(),
            Matrix::zeros(2, 4)
        );
        assert_eq!(
            matmul_batched_bt_with_threads(&a, &Matrix::zeros(4, 0), 4).unwrap(),
            Matrix::zeros(2, 4)
        );
    }
}
