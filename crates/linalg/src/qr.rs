//! Householder QR decomposition.
//!
//! The strategy matrices APEx uses (identity, hierarchical `H2`/`Hb`,
//! prefix) all have full column rank, so QR is sufficient for every
//! pseudoinverse and least-squares problem in the system, and is far more
//! numerically stable than forming normal equations `AᵀA`.

use crate::{LinalgError, Matrix, Result};

/// The result of a thin Householder QR decomposition of an `m × n` matrix
/// (`m ≥ n`): `A = Q R` with `Q` an `m × n` matrix with orthonormal columns
/// and `R` an `n × n` upper-triangular matrix.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// `m × n` factor with orthonormal columns.
    pub q: Matrix,
    /// `n × n` upper-triangular factor.
    pub r: Matrix,
}

/// Relative pivot tolerance used to declare rank deficiency: a diagonal of
/// `R` smaller than `tol * max_abs(A) * max(m, n)` counts as zero.
const RANK_TOL: f64 = 1e-12;

/// Computes the thin QR decomposition of `a` via Householder reflections.
///
/// # Errors
/// * [`LinalgError::Empty`] if `a` has no elements.
/// * [`LinalgError::ShapeMismatch`] if `a` has more columns than rows (the
///   thin factorization requires `m ≥ n`; transpose first for wide inputs).
/// * [`LinalgError::RankDeficient`] if a pivot collapses, i.e. the columns
///   of `a` are (numerically) linearly dependent.
pub fn qr_decompose(a: &Matrix) -> Result<QrDecomposition> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if m < n {
        return Err(LinalgError::ShapeMismatch {
            op: "qr (requires m >= n)",
            lhs: (m, n),
            rhs: (m, n),
        });
    }

    // Work on a full copy of A; accumulate the reflections into an m×m
    // identity lazily represented by its first n columns at the end.
    let mut r = a.clone();
    // Householder vectors, stored per step (v has length m - k).
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

    let scale = a.max_abs().max(1.0);
    let tol = RANK_TOL * scale * (m.max(n) as f64);

    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut norm2 = 0.0;
        for i in k..m {
            let v = r[(i, k)];
            norm2 += v * v;
        }
        let norm = norm2.sqrt();
        if norm <= tol {
            return Err(LinalgError::RankDeficient {
                pivot: k,
                magnitude: norm,
            });
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 <= tol * tol {
            // Column already lies along e_k; no reflection needed.
            vs.push(vec![0.0; m - k]);
            r[(k, k)] = alpha;
            continue;
        }

        // Apply H = I - 2 v vᵀ / (vᵀv) to the trailing submatrix of R.
        for j in k..n {
            let mut dot = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                dot += vi * r[(k + idx, j)];
            }
            let coef = 2.0 * dot / vnorm2;
            for (idx, &vi) in v.iter().enumerate() {
                r[(k + idx, j)] -= coef * vi;
            }
        }
        r[(k, k)] = alpha;
        for i in (k + 1)..m {
            r[(i, k)] = 0.0;
        }
        vs.push(v);
    }

    // Check the pivots once more (paranoia: tiny alphas can slip through).
    for k in 0..n {
        let p = r[(k, k)].abs();
        if p <= tol {
            return Err(LinalgError::RankDeficient {
                pivot: k,
                magnitude: p,
            });
        }
    }

    // Form thin Q = H_0 H_1 ... H_{n-1} * [I_n; 0] by applying the
    // reflections in reverse order to the first n columns of the identity.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut dot = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                dot += vi * q[(k + idx, j)];
            }
            let coef = 2.0 * dot / vnorm2;
            for (idx, &vi) in v.iter().enumerate() {
                q[(k + idx, j)] -= coef * vi;
            }
        }
    }

    // Truncate R to its upper n×n block.
    let mut rn = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            rn[(i, j)] = r[(i, j)];
        }
    }

    Ok(QrDecomposition { q, r: rn })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(q: &Matrix, tol: f64) {
        let qtq = q.transpose().matmul(q).unwrap();
        assert!(
            qtq.approx_eq(&Matrix::identity(q.cols()), tol),
            "QᵀQ != I:\n{qtq}"
        );
    }

    #[test]
    fn qr_reconstructs_square_matrix() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 2.0],
            vec![2.0, 3.0, -1.0],
            vec![0.0, 1.0, 5.0],
        ]);
        let QrDecomposition { q, r } = qr_decompose(&a).unwrap();
        assert_orthonormal_cols(&q, 1e-10);
        let back = q.matmul(&r).unwrap();
        assert!(back.approx_eq(&a, 1e-10), "QR != A:\n{back}");
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![2.0, -1.0],
        ]);
        let QrDecomposition { q, r } = qr_decompose(&a).unwrap();
        assert_eq!(q.shape(), (4, 2));
        assert_eq!(r.shape(), (2, 2));
        assert_orthonormal_cols(&q, 1e-10);
        assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 10.0],
        ]);
        let QrDecomposition { r, .. } = qr_decompose(&a).unwrap();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        // Third column = first + second.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 1.0, 2.0],
        ]);
        assert!(matches!(
            qr_decompose(&a),
            Err(LinalgError::RankDeficient { .. })
        ));
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            qr_decompose(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn qr_rejects_empty() {
        assert!(matches!(
            qr_decompose(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn qr_of_identity_is_identity() {
        let QrDecomposition { q, r } = qr_decompose(&Matrix::identity(4)).unwrap();
        // Q and R may differ from I by signs; Q*R must equal I exactly-ish.
        assert!(q.matmul(&r).unwrap().approx_eq(&Matrix::identity(4), 1e-12));
    }
}
