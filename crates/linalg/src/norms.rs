//! Norms used by the accuracy-to-privacy translation.
//!
//! The central quantity is the **L1 operator norm** `‖W‖₁` — the maximum
//! absolute column sum. For a 0/1 workload matrix over disjoint domain
//! partitions this equals the *sensitivity* of the query set: the largest
//! change in the workload answer caused by adding or removing a single
//! tuple (Section 5.1 of the paper).

use crate::Matrix;

/// The L1 operator norm `‖M‖₁`: the maximum over columns of the column's
/// absolute sum. For workload matrices this is the query-set sensitivity.
///
/// Returns `0.0` for an empty matrix.
pub fn l1_operator_norm(m: &Matrix) -> f64 {
    let (rows, cols) = m.shape();
    let mut best = 0.0_f64;
    for j in 0..cols {
        let mut s = 0.0;
        for i in 0..rows {
            s += m[(i, j)].abs();
        }
        best = best.max(s);
    }
    best
}

/// The Frobenius norm `‖M‖_F = sqrt(Σ m_ij²)`, used in the closed-form upper
/// bound on the strategy mechanism's privacy cost (Theorem A.1).
pub fn frobenius_norm(m: &Matrix) -> f64 {
    m.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// The `ℓ∞` norm of a vector: `max |x_i|`. This is the error functional the
/// paper's `(α, β)`-WCQ accuracy bounds (Definition 3.1).
pub fn linf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn l1_norm_of_identity_is_one() {
        assert_eq!(l1_operator_norm(&Matrix::identity(7)), 1.0);
    }

    #[test]
    fn l1_norm_of_prefix_workload_is_workload_size() {
        // Prefix (CDF) workload over 4 cells: row i sums cells 0..=i. The
        // first column appears in every row, so sensitivity = L = 4.
        let w = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0],
        ]);
        assert_eq!(l1_operator_norm(&w), 4.0);
    }

    #[test]
    fn l1_norm_uses_absolute_values() {
        let m = Matrix::from_rows(&[vec![-1.0, 2.0], vec![-3.0, 0.5]]);
        assert_eq!(l1_operator_norm(&m), 4.0);
    }

    #[test]
    fn l1_norm_of_empty_is_zero() {
        assert_eq!(l1_operator_norm(&Matrix::zeros(0, 0)), 0.0);
    }

    #[test]
    fn frobenius_matches_hand_computation() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((frobenius_norm(&m) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn linf_norm_basics() {
        assert_eq!(linf_norm(&[]), 0.0);
        assert_eq!(linf_norm(&[1.0, -5.0, 3.0]), 5.0);
    }
}
