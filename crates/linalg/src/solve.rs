//! Triangular solves, least squares, and inversion — all built on QR.

use crate::{qr_decompose, LinalgError, Matrix, Result};

/// Solves `R x = b` for upper-triangular `R` by back substitution.
///
/// # Errors
/// * [`LinalgError::ShapeMismatch`] if `R` is not square or `b` has the
///   wrong length.
/// * [`LinalgError::RankDeficient`] if a diagonal entry is exactly zero.
pub fn solve_upper_triangular(r: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let (m, n) = r.shape();
    if m != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_upper_triangular",
            lhs: (m, n),
            rhs: (b.len(), 1),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_upper_triangular",
            lhs: (m, n),
            rhs: (b.len(), 1),
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::RankDeficient {
                pivot: i,
                magnitude: 0.0,
            });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves the least-squares problem `min ‖A x − b‖₂` for a full-column-rank
/// `A` via thin QR: `x = R⁻¹ Qᵀ b`.
///
/// # Errors
/// Propagates QR errors (empty / wide / rank-deficient inputs) and shape
/// mismatches between `A` and `b`.
pub fn solve_least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_least_squares",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let qr = qr_decompose(a)?;
    let qtb = qr.q.transpose().matvec(b)?;
    solve_upper_triangular(&qr.r, &qtb)
}

/// Inverts a square, full-rank matrix via QR (`A⁻¹ = R⁻¹ Qᵀ`).
///
/// # Errors
/// * [`LinalgError::ShapeMismatch`] if `a` is not square.
/// * QR errors for empty or singular inputs.
pub fn invert(a: &Matrix) -> Result<Matrix> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::ShapeMismatch {
            op: "invert",
            lhs: (m, n),
            rhs: (m, n),
        });
    }
    let qr = qr_decompose(a)?;
    let qt = qr.q.transpose();
    let mut inv = Matrix::zeros(n, n);
    // Solve R x = Qᵀ e_j column by column.
    for j in 0..n {
        let col = qt.col(j);
        let x = solve_upper_triangular(&qr.r, &col)?;
        for i in 0..n {
            inv[(i, j)] = x[i];
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_substitution_known_system() {
        let r = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]);
        let x = solve_upper_triangular(&r, &[5.0, 6.0]).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn back_substitution_rejects_singular() {
        let r = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 0.0]]);
        assert!(matches!(
            solve_upper_triangular(&r, &[1.0, 1.0]),
            Err(LinalgError::RankDeficient { .. })
        ));
    }

    #[test]
    fn least_squares_exact_system() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]);
        let x = solve_least_squares(&a, &[3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_projects() {
        // Fit y = c to observations [1, 2, 3]; the LS answer is the mean.
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let x = solve_least_squares(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn invert_times_original_is_identity() {
        let a = Matrix::from_rows(&[
            vec![4.0, 7.0, 1.0],
            vec![2.0, 6.0, 0.0],
            vec![1.0, 0.0, 3.0],
        ]);
        let inv = invert(&a).unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-10));
        assert!(inv
            .matmul(&a)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn invert_rejects_non_square() {
        assert!(invert(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn invert_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(invert(&a), Err(LinalgError::RankDeficient { .. })));
    }
}
