//! Compressed-sparse-row matrices.
//!
//! Workload matrices `W` and hierarchical strategy matrices `H_b` in APEx
//! are 0/1 and overwhelmingly sparse at realistic domain sizes: a histogram
//! workload has exactly one nonzero per row, and `H_b` over `n` cells has
//! `O(n log n)` nonzeros in an `O(n) × n` matrix (>95% zeros for `n ≥ 64`).
//! Storing them densely makes every product scale with *cells* instead of
//! *nonzeros*.
//!
//! # When each representation wins
//!
//! * **[`CsrMatrix`]** — 0/1 incidence structures (workloads, strategies):
//!   `matvec` and `matmul` cost `O(nnz)` / `O(nnz · k)` instead of
//!   `O(rows · cols)` / `O(rows · cols · k)`. At a 1024-cell domain the H₂
//!   strategy is ~99.5% sparse, so sparse products are ~200× less work.
//! * **[`Matrix`]** (dense) — anything built from a pseudoinverse: `A⁺` and
//!   the reconstruction `W A⁺` are numerically dense (nearly every entry is
//!   nonzero), so CSR would only add indirection. The Monte-Carlo
//!   translation keeps `W A⁺` dense and batches its products instead (see
//!   [`crate::matmul_batched`]).
//!
//! Conversions are **numerically lossless**: `Matrix → CsrMatrix → Matrix`
//! reproduces every nonzero value bit-for-bit; exact zeros are dropped and
//! restored as `+0.0` (so a stored `-0.0` normalizes — the one value the
//! round trip does not preserve at the bit level).

use crate::{LinalgError, Matrix, Result};

/// A compressed-sparse-row `f64` matrix.
///
/// Storage is the classic three-array CSR layout: row `i`'s entries live at
/// positions `indptr[i]..indptr[i+1]` of `indices` (column ids, strictly
/// ascending within a row) and `values` (the nonzero values).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

/// Row classification for [`CsrMatrix::matvec_panel_with_plan`], built by
/// [`CsrMatrix::panel_plan`]: which rows are prefix-sum-shaped (answered
/// by one shared running-sum sweep per tile) and which need the generic
/// per-row kernel. Valid only for the matrix it was built from.
#[derive(Debug, Clone)]
pub struct PanelPlan {
    /// Prefix rows as `(hi, row)`, sorted ascending by `hi`.
    prefix: Vec<(usize, usize)>,
    /// All other rows, ascending.
    general: Vec<usize>,
    /// Largest prefix `hi`: how far the shared sweep must run.
    sweep_hi: usize,
}

impl CsrMatrix {
    /// An all-zero sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let mut b = CsrBuilder::new(cols);
        for i in 0..rows {
            b.push_row(
                m.row(i)
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(j, &v)| (j, v)),
            );
        }
        b.finish()
    }

    /// Builds a 0/1 incidence matrix from per-row sorted support lists
    /// (`support[i]` = ascending column ids where row `i` is 1).
    ///
    /// # Panics
    /// Panics if a support list is unsorted, has duplicates, or references a
    /// column `>= cols`.
    pub fn from_row_support(cols: usize, support: &[Vec<usize>]) -> Self {
        let mut b = CsrBuilder::new(cols);
        for row in support {
            b.push_row(row.iter().map(|&c| (c, 1.0)));
        }
        b.finish()
    }

    /// Materializes the dense equivalent.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of cells that are stored, in `[0, 1]` (0 for empty shapes).
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Row `i` as parallel `(column ids, values)` slices.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(
            i < self.rows,
            "row index {i} out of bounds ({} rows)",
            self.rows
        );
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// The entry at `(i, j)` (0.0 when not stored).
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({} cols)",
            self.cols
        );
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `self * x`, `O(nnz)`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "csr matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        self.matvec_fill(x, &mut out);
        Ok(out)
    }

    /// [`CsrMatrix::matvec`] writing into a caller-owned buffer — the
    /// allocation-free entry point for hot loops that perform one product
    /// per Monte-Carlo sample. `out` is resized to `rows` and fully
    /// overwritten; the arithmetic (and hence the result, bit for bit) is
    /// identical to [`CsrMatrix::matvec`].
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `x.len() != cols`.
    pub fn matvec_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "csr matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        out.resize(self.rows, 0.0);
        self.matvec_fill(x, out);
        Ok(())
    }

    /// Shared kernel of [`CsrMatrix::matvec`] / [`CsrMatrix::matvec_into`]:
    /// every output element is overwritten with the row dot product, `k`
    /// ascending.
    fn matvec_fill(&self, x: &[f64], out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            *o = cols.iter().zip(vals).map(|(&j, &v)| v * x[j]).sum();
        }
    }

    /// Multi-RHS matvec: `xs` holds `k` column-major input columns of
    /// length `cols` each (`xs[c * cols..(c + 1) * cols]` is column `c`);
    /// `out` is resized to `k * rows` and column `c` of it receives
    /// `self * xsᶜ`.
    ///
    /// Full tiles of eight columns are processed lane-interleaved, so one
    /// walk over the sparsity pattern serves the whole tile with
    /// independent per-lane accumulators (autovectorizable, and free of
    /// the loop-carried FP add chain of the single-column dot product).
    /// Rows shaped like prefix/CDF queries (contiguous unit weights from
    /// column 0) are all answered by one shared prefix-sum sweep per tile
    /// instead of independent dot products. Per lane, each row still
    /// accumulates its nonzeros in the same ascending-k order starting
    /// from 0.0 as [`CsrMatrix::matvec`], so every column is
    /// **bit-identical** to the single-RHS product; the ragged tail
    /// (< 8 columns) goes through the single-RHS kernel directly.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `xs.len() != k * cols`.
    pub fn matvec_panel(&self, xs: &[f64], k: usize, out: &mut Vec<f64>) -> Result<()> {
        self.matvec_panel_with_plan(&self.panel_plan(), xs, k, out)
    }

    /// Classifies this matrix's rows for [`CsrMatrix::matvec_panel_with_plan`].
    ///
    /// A "prefix row" reads columns `0..hi` contiguously with unit
    /// weights — the shape of every range/CDF workload row over the
    /// leading cells — so its dot product is a prefix sum of `x`. The
    /// classification walks every stored nonzero (`O(nnz)`), so callers
    /// issuing many panel products against the same matrix should build
    /// the plan once and reuse it.
    pub fn panel_plan(&self) -> PanelPlan {
        let mut prefix: Vec<(usize, usize)> = Vec::new(); // (hi, row)
        let mut general: Vec<usize> = Vec::new();
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let is_prefix =
                cols.iter().enumerate().all(|(p, &j)| j == p) && vals.iter().all(|&v| v == 1.0);
            if is_prefix {
                prefix.push((cols.len(), i));
            } else {
                general.push(i);
            }
        }
        prefix.sort_unstable();
        let sweep_hi = prefix.last().map_or(0, |&(hi, _)| hi);
        PanelPlan {
            prefix,
            general,
            sweep_hi,
        }
    }

    /// [`CsrMatrix::matvec_panel`] with a precomputed [`PanelPlan`],
    /// skipping the per-call `O(nnz)` row classification. The plan must
    /// come from [`CsrMatrix::panel_plan`] on this same matrix.
    ///
    /// One shared running accumulator per lane serves all prefix rows at
    /// once: after `hi` additions it holds exactly the ascending-k fold
    /// of [`CsrMatrix::matvec`] (IEEE `1.0 * x == x`, additions in the
    /// same order from the same 0.0), so emitting it at each row's
    /// boundary is bit-identical while doing `O(max hi)` work per tile
    /// instead of `O(Σ hi)`. Other rows keep the generic per-row lane
    /// kernel.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `xs.len() != k * cols`.
    pub fn matvec_panel_with_plan(
        &self,
        plan: &PanelPlan,
        xs: &[f64],
        k: usize,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        const LANES: usize = 8;
        if xs.len() != self.cols.saturating_mul(k) {
            return Err(LinalgError::ShapeMismatch {
                op: "csr matvec_panel",
                lhs: (self.cols, k),
                rhs: (xs.len(), 1),
            });
        }
        out.resize(k * self.rows, 0.0);
        let tiles = k / LANES;
        if tiles > 0 {
            let PanelPlan {
                prefix,
                general,
                sweep_hi,
            } = plan;
            let sweep_hi = *sweep_hi;

            // Lane-interleaved staging buffers, reused across the tiles of
            // this call.
            let mut xt = vec![0.0f64; self.cols * LANES];
            let mut yt = vec![0.0f64; self.rows * LANES];
            for t in 0..tiles {
                // Chunked lane transpose: the 64 KiB interleaved slab a
                // chunk touches stays cached across the per-lane passes
                // (a full-tile pass per lane would re-stream the whole
                // buffer LANES times on large domains).
                const XPOSE_CHUNK: usize = 1024;
                let x_tile = &xs[t * LANES * self.cols..(t + 1) * LANES * self.cols];
                let mut i0 = 0;
                while i0 < self.cols {
                    let i1 = (i0 + XPOSE_CHUNK).min(self.cols);
                    for (l, col) in x_tile.chunks_exact(self.cols).enumerate() {
                        for i in i0..i1 {
                            xt[i * LANES + l] = col[i];
                        }
                    }
                    i0 = i1;
                }
                let mut acc = [0.0f64; LANES];
                let mut next = 0usize;
                while next < prefix.len() && prefix[next].0 == 0 {
                    let r = prefix[next].1;
                    yt[r * LANES..(r + 1) * LANES].copy_from_slice(&acc);
                    next += 1;
                }
                for j in 0..sweep_hi {
                    let x_lanes = &xt[j * LANES..(j + 1) * LANES];
                    for (a, &xv) in acc.iter_mut().zip(x_lanes) {
                        *a += xv;
                    }
                    while next < prefix.len() && prefix[next].0 == j + 1 {
                        let r = prefix[next].1;
                        yt[r * LANES..(r + 1) * LANES].copy_from_slice(&acc);
                        next += 1;
                    }
                }
                for &i in general {
                    let (cols, vals) = self.row(i);
                    let mut acc = [0.0f64; LANES];
                    for (&j, &v) in cols.iter().zip(vals) {
                        let x_lanes = &xt[j * LANES..(j + 1) * LANES];
                        for (a, &xv) in acc.iter_mut().zip(x_lanes) {
                            *a += v * xv;
                        }
                    }
                    yt[i * LANES..(i + 1) * LANES].copy_from_slice(&acc);
                }
                let out_tile = &mut out[t * LANES * self.rows..(t + 1) * LANES * self.rows];
                for (l, col) in out_tile.chunks_exact_mut(self.rows).enumerate() {
                    for (i, o) in col.iter_mut().enumerate() {
                        *o = yt[i * LANES + l];
                    }
                }
            }
        }
        for c in tiles * LANES..k {
            let x = &xs[c * self.cols..(c + 1) * self.cols];
            self.matvec_fill(x, &mut out[c * self.rows..(c + 1) * self.rows]);
        }
        Ok(())
    }

    /// Sparse × dense product `self * rhs`, returning a dense matrix in
    /// `O(nnz(self) · rhs.cols())`.
    ///
    /// # Errors
    /// [`LinalgError::ShapeMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "csr matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.cols();
        let mut out = Matrix::zeros(self.rows, n);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let orow = out.row_mut(i);
            for (&k, &a) in cols.iter().zip(vals) {
                let rrow = rhs.row(k);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// The transpose, `O(nnz + rows + cols)` by counting sort.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let p = cursor[j];
                indices[p] = i;
                values[p] = v;
                cursor[j] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// The L1 operator norm `‖·‖₁` (maximum column absolute sum) — the
    /// sensitivity of a 0/1 workload/strategy matrix — in `O(nnz)`.
    pub fn l1_operator_norm(&self) -> f64 {
        let mut col_sums = vec![0.0_f64; self.cols];
        for (&j, &v) in self.indices.iter().zip(&self.values) {
            col_sums[j] += v.abs();
        }
        col_sums.into_iter().fold(0.0, f64::max)
    }

    /// The Frobenius norm `sqrt(Σ v²)` in `O(nnz)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// A stable 64-bit structural signature: FNV-1a over shape, row
    /// pointers, column ids and value bits. Equal matrices always produce
    /// equal signatures; the converse holds only up to 64-bit hash
    /// collisions (FNV-1a is not collision-resistant against adversarial
    /// input), so cache lookups keyed by this signature must verify the
    /// hit against the actual structure — see the verify-on-hit check in
    /// `apex-mech`'s strategy-mechanism cache.
    pub fn signature(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.rows as u64);
        eat(self.cols as u64);
        for &p in &self.indptr {
            eat(p as u64);
        }
        for (&j, &v) in self.indices.iter().zip(&self.values) {
            eat(j as u64);
            eat(v.to_bits());
        }
        h
    }
}

/// Incremental row-by-row CSR constructor.
#[derive(Debug)]
pub struct CsrBuilder {
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// A builder for matrices with `cols` columns and no rows yet.
    pub fn new(cols: usize) -> Self {
        Self {
            cols,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one row given `(column, value)` pairs in strictly ascending
    /// column order. Zero values are dropped.
    ///
    /// # Panics
    /// Panics on out-of-range or non-ascending columns.
    pub fn push_row(&mut self, entries: impl IntoIterator<Item = (usize, f64)>) {
        let mut last: Option<usize> = None;
        for (j, v) in entries {
            assert!(
                j < self.cols,
                "column {j} out of bounds ({} cols)",
                self.cols
            );
            assert!(
                last.is_none_or(|l| l < j),
                "columns must be strictly ascending within a row"
            );
            last = Some(j);
            if v != 0.0 {
                self.indices.push(j);
                self.values.push(v);
            }
        }
        self.indptr.push(self.indices.len());
    }

    /// Appends one 0/1 row that is a contiguous run of ones on `lo..hi`
    /// (the shape of every hierarchical-strategy row) without intermediate
    /// allocation.
    ///
    /// # Panics
    /// Panics if `hi > cols` or `lo > hi`.
    pub fn push_interval_row(&mut self, lo: usize, hi: usize) {
        assert!(
            lo <= hi && hi <= self.cols,
            "bad interval [{lo}, {hi}) for {} cols",
            self.cols
        );
        self.indices.extend(lo..hi);
        self.values.extend(std::iter::repeat_n(1.0, hi - lo));
        self.indptr.push(self.indices.len());
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Finalizes the matrix.
    pub fn finish(self) -> CsrMatrix {
        CsrMatrix {
            rows: self.indptr.len() - 1,
            cols: self.cols,
            indptr: self.indptr,
            indices: self.indices,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_dense() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, -3.0, 0.0, 0.5],
        ])
    }

    #[test]
    fn round_trip_is_lossless() {
        let d = example_dense();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn get_and_row_access() {
        let s = CsrMatrix::from_dense(&example_dense());
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(2, 3), 0.5);
        let (cols, vals) = s.row(2);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[-3.0, 0.5]);
        let (cols, _) = s.row(1);
        assert!(cols.is_empty());
    }

    #[test]
    fn matvec_matches_dense() {
        let d = example_dense();
        let s = CsrMatrix::from_dense(&d);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(s.matvec(&x).unwrap(), d.matvec(&x).unwrap());
        assert!(s.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matvec_into_matches_matvec_and_reuses_buffers() {
        let d = example_dense();
        let s = CsrMatrix::from_dense(&d);
        let x = [1.0, 2.0, 3.0, 4.0];
        // A dirty, wrongly-sized buffer must be resized and overwritten.
        let mut out = vec![f64::NAN; 7];
        s.matvec_into(&x, &mut out).unwrap();
        assert_eq!(out, s.matvec(&x).unwrap());
        // Reuse without reallocation (same length on the second call).
        let ptr = out.as_ptr();
        s.matvec_into(&x, &mut out).unwrap();
        assert_eq!(ptr, out.as_ptr());
        assert!(s.matvec_into(&[1.0], &mut out).is_err());
    }

    #[test]
    fn matvec_panel_is_bit_identical_to_per_column_matvec() {
        // Panels exercising no tiles (k < 8), exactly one tile, and
        // tiles + ragged tail, over an interval workload and the sparse
        // example (which has an all-zero row).
        let mut mats = vec![CsrMatrix::from_dense(&example_dense())];
        let mut b = CsrBuilder::new(33);
        for i in 0..20 {
            b.push_interval_row(i, (i * 3 + 5).min(33));
        }
        mats.push(b.finish());
        let mut out = vec![f64::NAN; 3];
        for s in &mats {
            for k in [1usize, 7, 8, 9, 16, 17] {
                let xs: Vec<f64> = (0..k * s.cols())
                    .map(|i| ((i * 31 % 19) as f64) / 3.0 - 3.0)
                    .collect();
                s.matvec_panel(&xs, k, &mut out).unwrap();
                assert_eq!(out.len(), k * s.rows());
                for c in 0..k {
                    let want = s.matvec(&xs[c * s.cols()..(c + 1) * s.cols()]).unwrap();
                    assert_eq!(
                        &out[c * s.rows()..(c + 1) * s.rows()],
                        &want[..],
                        "k={k} c={c}"
                    );
                }
            }
            // Shape check: one element short of k columns.
            assert!(s
                .matvec_panel(&vec![0.0; 2 * s.cols() - 1], 2, &mut out)
                .is_err());
        }
    }

    #[test]
    fn matmul_matches_dense() {
        let d = example_dense();
        let s = CsrMatrix::from_dense(&d);
        let rhs = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![0.5, -1.0],
            vec![3.0, 0.0],
            vec![0.0, 1.0],
        ]);
        assert_eq!(s.matmul(&rhs).unwrap(), d.matmul(&rhs).unwrap());
        assert!(s.matmul(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn transpose_matches_dense() {
        let d = example_dense();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.transpose().to_dense(), d.transpose());
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn l1_and_frobenius_match_dense() {
        let d = example_dense();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.l1_operator_norm(), crate::l1_operator_norm(&d));
        assert!((s.frobenius_norm() - crate::frobenius_norm(&d)).abs() < 1e-15);
    }

    #[test]
    fn identity_and_zeros() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.to_dense(), Matrix::identity(4));
        assert_eq!(i.l1_operator_norm(), 1.0);
        let z = CsrMatrix::zeros(2, 3);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn builder_interval_rows() {
        let mut b = CsrBuilder::new(5);
        b.push_interval_row(0, 5);
        b.push_interval_row(2, 4);
        b.push_interval_row(3, 3); // empty interval = zero row
        let m = b.finish();
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.get(0, 4), 1.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(1, 2), 1.0);
        assert_eq!(m.row(2).0.len(), 0);
    }

    #[test]
    fn from_row_support() {
        let m = CsrMatrix::from_row_support(4, &[vec![0, 2], vec![], vec![3]]);
        assert_eq!(
            m.to_dense(),
            Matrix::from_rows(&[
                vec![1.0, 0.0, 1.0, 0.0],
                vec![0.0, 0.0, 0.0, 0.0],
                vec![0.0, 0.0, 0.0, 1.0],
            ])
        );
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn builder_rejects_unsorted() {
        let mut b = CsrBuilder::new(4);
        b.push_row([(2, 1.0), (1, 1.0)]);
    }

    #[test]
    fn density_and_signature() {
        let d = example_dense();
        let s = CsrMatrix::from_dense(&d);
        assert!((s.density() - 4.0 / 12.0).abs() < 1e-15);
        let s2 = CsrMatrix::from_dense(&d);
        assert_eq!(s.signature(), s2.signature());
        let other = CsrMatrix::from_dense(&d.scale(2.0));
        assert_ne!(s.signature(), other.signature());
        // Same values, different shape must differ.
        assert_ne!(
            CsrMatrix::zeros(2, 3).signature(),
            CsrMatrix::zeros(3, 2).signature()
        );
    }
}
