//! Moore–Penrose pseudoinverse for full-rank matrices.
//!
//! Section 5.2 of the paper reconstructs workload answers from strategy
//! answers as `(W A⁺) ŷ`, where `A⁺` is the Moore–Penrose pseudoinverse of
//! the strategy matrix `A`. Every strategy APEx ships (identity,
//! hierarchical, prefix) has full *row* rank when expressed as an
//! `l × |dom|` matrix, and full *column* rank after transposition, so the
//! closed forms below cover all of them:
//!
//! * full column rank (`m ≥ n`): `A⁺ = (AᵀA)⁻¹Aᵀ`, computed stably as
//!   `R⁻¹Qᵀ` from a thin QR of `A`;
//! * full row rank (`m < n`): `A⁺ = Aᵀ(AAᵀ)⁻¹ = (Aᵀ)⁺ᵀ`, reduced to the
//!   first case by transposition.

use crate::{qr_decompose, solve_upper_triangular, LinalgError, Matrix, Result};

/// Computes the Moore–Penrose pseudoinverse of a full-rank matrix.
///
/// For an `m × n` input the result is `n × m` and satisfies the
/// Moore–Penrose identities `A A⁺ A = A` and `A⁺ A A⁺ = A⁺` (verified by
/// property tests in `tests/`).
///
/// # Errors
/// * [`LinalgError::Empty`] for empty input.
/// * [`LinalgError::RankDeficient`] if the matrix does not have full rank
///   (neither full column nor full row rank). Strategies used in APEx are
///   constructed to be full rank, so this indicates a malformed strategy.
pub fn pinv(a: &Matrix) -> Result<Matrix> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if m >= n {
        pinv_full_column_rank(a)
    } else {
        // Full row rank: A⁺ = (Aᵀ⁺)ᵀ where Aᵀ is tall.
        let t = a.transpose();
        Ok(pinv_full_column_rank(&t)?.transpose())
    }
}

/// `A⁺ = R⁻¹ Qᵀ` for a tall full-column-rank `A = QR`.
fn pinv_full_column_rank(a: &Matrix) -> Result<Matrix> {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    let qr = qr_decompose(a)?;
    let qt = qr.q.transpose(); // n × m
    let mut out = Matrix::zeros(n, m);
    for j in 0..m {
        let col = qt.col(j);
        let x = solve_upper_triangular(&qr.r, &col)?;
        for i in 0..n {
            out[(i, j)] = x[i];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_mp_identities(a: &Matrix, ap: &Matrix, tol: f64) {
        let aapa = a.matmul(ap).unwrap().matmul(a).unwrap();
        assert!(aapa.approx_eq(a, tol), "A A+ A != A");
        let apaap = ap.matmul(a).unwrap().matmul(ap).unwrap();
        assert!(apaap.approx_eq(ap, tol), "A+ A A+ != A+");
        // Symmetry of the projectors.
        let p = a.matmul(ap).unwrap();
        assert!(p.approx_eq(&p.transpose(), tol), "A A+ not symmetric");
        let q = ap.matmul(a).unwrap();
        assert!(q.approx_eq(&q.transpose(), tol), "A+ A not symmetric");
    }

    #[test]
    fn pinv_of_identity_is_identity() {
        let i = Matrix::identity(5);
        assert!(pinv(&i).unwrap().approx_eq(&i, 1e-12));
    }

    #[test]
    fn pinv_of_square_invertible_is_inverse() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let ap = pinv(&a).unwrap();
        assert!(a
            .matmul(&ap)
            .unwrap()
            .approx_eq(&Matrix::identity(2), 1e-10));
        check_mp_identities(&a, &ap, 1e-10);
    }

    #[test]
    fn pinv_tall_full_column_rank() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let ap = pinv(&a).unwrap();
        assert_eq!(ap.shape(), (2, 3));
        check_mp_identities(&a, &ap, 1e-10);
        // A+ A = I for full column rank.
        assert!(ap
            .matmul(&a)
            .unwrap()
            .approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn pinv_wide_full_row_rank() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]]);
        let ap = pinv(&a).unwrap();
        assert_eq!(ap.shape(), (3, 2));
        check_mp_identities(&a, &ap, 1e-10);
        // A A+ = I for full row rank.
        assert!(a
            .matmul(&ap)
            .unwrap()
            .approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn pinv_hierarchical_strategy_reconstructs_workload() {
        // A tiny H2 strategy over 4 cells: root, two internal, four leaves.
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
        ]);
        // Prefix workload over the same 4 cells.
        let w = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0],
        ]);
        let ap = pinv(&a).unwrap();
        // W A⁺ A = W — the reconstruction condition Algorithm 3 needs
        // (the paper writes it loosely as "WAA⁺ = W" in Section 5.2).
        let wapa = w.matmul(&ap).unwrap().matmul(&a).unwrap();
        assert!(wapa.approx_eq(&w, 1e-10));
    }

    #[test]
    fn pinv_rejects_empty() {
        assert!(matches!(
            pinv(&Matrix::zeros(0, 3)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn pinv_rejects_rank_deficient() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        assert!(matches!(pinv(&a), Err(LinalgError::RankDeficient { .. })));
    }
}
