//! Gradual release of Laplace noise — the `RelaxPrivacy` subroutine of
//! the multi-poking mechanism (Algorithm 4, Line 15).
//!
//! Koufogiannis, Han and Pappas ("Gradual release of sensitive data under
//! differential privacy", [22] in the paper) show that a Laplace release
//! can be *refined*: given a published noisy value at privacy level `ε₁`,
//! one can publish a second, less noisy value at level `ε₂ > ε₁` whose
//! **total** privacy loss is `ε₂` — not `ε₁ + ε₂` — by correlating the
//! new noise with the old.
//!
//! The construction: if `v' ~ Lap(1/ε₂)` and `v = v' + w` with the
//! increment `w` equal to `0` with probability `(ε₁/ε₂)²` and `~Lap(1/ε₁)`
//! otherwise, then `v ~ Lap(1/ε₁)` exactly (check the characteristic
//! functions: `ε₁²/(ε₁²+t²) = (ε₁/ε₂)² · ε₂²/(ε₂²+t²) + (1−(ε₁/ε₂)²) ·
//! ε₂²/(ε₂²+t²) · ε₁²/(ε₁²+t²)` … rearranged). Refinement samples the
//! *conditional* `v' | v`:
//!
//! * with probability `(ε₁/ε₂) · e^{−(ε₂−ε₁)|v|}` keep `v' = v`;
//! * otherwise draw `v'` from the residual density
//!   `g(v') ∝ e^{−ε₂|v'|} · e^{−ε₁|v−v'|}`, a three-piece exponential
//!   sampled here in closed form.

use rand::Rng;

/// Refines a Laplace noise value from privacy level `eps_old` to the
/// higher level `eps_new`, conditioned on the already-released value.
///
/// `noise` must be distributed `Lap(1/eps_old)` (in *normalized* units —
/// divide by the query sensitivity before calling, multiply after). The
/// return value is distributed `Lap(1/eps_new)` marginally, and the pair
/// `(noise, result)` satisfies the gradual-release guarantee: publishing
/// both costs only `eps_new`.
///
/// # Panics
/// Panics if `eps_new <= eps_old` or either is non-positive — refinement
/// only goes toward less noise.
pub fn relax_laplace<R: Rng + ?Sized>(noise: f64, eps_old: f64, eps_new: f64, rng: &mut R) -> f64 {
    assert!(
        eps_old > 0.0 && eps_new > eps_old,
        "relax_laplace requires 0 < eps_old < eps_new, got {eps_old} -> {eps_new}"
    );
    let v = noise;
    let keep_prob = (eps_old / eps_new) * (-(eps_new - eps_old) * v.abs()).exp();
    if rng.gen::<f64>() < keep_prob {
        return v;
    }
    sample_residual(v, eps_old, eps_new, rng)
}

/// Samples from `g(v') ∝ e^{−ε₂|v'|} e^{−ε₁|v−v'|}` for `v' ≠ v`.
///
/// By symmetry assume `v ≥ 0` (negate on the way out otherwise). The
/// density splits into three exponential pieces:
///
/// * `A = (−∞, 0)`:   `∝ e^{(ε₁+ε₂) v'}` with mass `e^{−ε₁ v}/(ε₁+ε₂)`
/// * `B = [0, v]`:    `∝ e^{(ε₁−ε₂) v'}` with mass
///   `e^{−ε₁ v}(1 − e^{(ε₁−ε₂) v})/(ε₂−ε₁)`
/// * `C = (v, ∞)`:    `∝ e^{−(ε₁+ε₂) v'}` with mass `e^{−ε₂ v}/(ε₁+ε₂)`
fn sample_residual<R: Rng + ?Sized>(v: f64, e1: f64, e2: f64, rng: &mut R) -> f64 {
    let (v_abs, flip) = if v < 0.0 { (-v, true) } else { (v, false) };

    let mass_a = (-e1 * v_abs).exp() / (e1 + e2);
    let mass_b = if v_abs > 0.0 {
        (-e1 * v_abs).exp() * (1.0 - ((e1 - e2) * v_abs).exp()) / (e2 - e1)
    } else {
        0.0
    };
    let mass_c = (-e2 * v_abs).exp() / (e1 + e2);
    let total = mass_a + mass_b + mass_c;

    let u: f64 = rng.gen_range(0.0..total);
    let out = if u < mass_a {
        // Region A: density ∝ e^{(e1+e2) t} on (−∞, 0); inverse CDF.
        let w: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        w.ln() / (e1 + e2)
    } else if u < mass_a + mass_b {
        // Region B: density ∝ e^{−(e2−e1) t} on [0, v]; truncated
        // exponential with rate (e2−e1).
        let rate = e2 - e1;
        let w: f64 = rng.gen();
        // F(t) = (1 − e^{−rate·t}) / (1 − e^{−rate·v})
        let denom = 1.0 - (-rate * v_abs).exp();
        -((1.0 - w * denom).ln()) / rate
    } else {
        // Region C: density ∝ e^{−(e1+e2)(t−v)} on (v, ∞).
        let w: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        v_abs - w.ln() / (e1 + e2)
    };

    if flip {
        -out
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Laplace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Kolmogorov–Smirnov distance between samples and Lap(1/eps).
    fn ks_against_laplace(mut xs: Vec<f64>, eps: f64) -> f64 {
        let d = Laplace::new(1.0 / eps);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = xs.len() as f64;
        let mut ks: f64 = 0.0;
        for (i, x) in xs.iter().enumerate() {
            let emp_hi = (i + 1) as f64 / n;
            let emp_lo = i as f64 / n;
            let f = d.cdf(*x);
            ks = ks.max((emp_hi - f).abs()).max((f - emp_lo).abs());
        }
        ks
    }

    #[test]
    fn relaxed_noise_has_the_target_marginal() {
        let mut rng = StdRng::seed_from_u64(21);
        let (e1, e2) = (0.5, 2.0);
        let src = Laplace::new(1.0 / e1);
        let n = 60_000;
        let relaxed: Vec<f64> = (0..n)
            .map(|_| relax_laplace(src.sample(&mut rng), e1, e2, &mut rng))
            .collect();
        let ks = ks_against_laplace(relaxed, e2);
        // 99.9% KS critical ≈ 1.95/sqrt(60000) ≈ 0.008.
        assert!(ks < 0.009, "KS = {ks}");
    }

    #[test]
    fn chained_relaxation_preserves_marginals() {
        // ε: 0.2 → 0.6 → 1.8; the final samples must be Lap(1/1.8).
        let mut rng = StdRng::seed_from_u64(5);
        let eps = [0.2, 0.6, 1.8];
        let src = Laplace::new(1.0 / eps[0]);
        let n = 60_000;
        let mut xs = src.sample_vec(n, &mut rng);
        for w in eps.windows(2) {
            xs = xs
                .into_iter()
                .map(|x| relax_laplace(x, w[0], w[1], &mut rng))
                .collect();
        }
        let ks = ks_against_laplace(xs, eps[2]);
        assert!(ks < 0.009, "KS = {ks}");
    }

    #[test]
    fn relaxation_shrinks_noise_on_average() {
        let mut rng = StdRng::seed_from_u64(17);
        let (e1, e2) = (0.1, 1.0);
        let src = Laplace::new(1.0 / e1);
        let n = 20_000;
        let mut before = 0.0;
        let mut after = 0.0;
        for _ in 0..n {
            let x = src.sample(&mut rng);
            let y = relax_laplace(x, e1, e2, &mut rng);
            before += x.abs();
            after += y.abs();
        }
        assert!(
            after < before * 0.25,
            "mean |noise| {} -> {}",
            before / n as f64,
            after / n as f64
        );
    }

    #[test]
    fn correlation_is_positive() {
        // The refined noise must be correlated with the original — that is
        // the whole point (independent redraws would compose additively).
        let mut rng = StdRng::seed_from_u64(3);
        let (e1, e2) = (1.0, 1.3);
        let src = Laplace::new(1.0 / e1);
        let n = 30_000;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for _ in 0..n {
            let x = src.sample(&mut rng);
            let y = relax_laplace(x, e1, e2, &mut rng);
            num += x * y;
            da += x * x;
            db += y * y;
        }
        let corr = num / (da.sqrt() * db.sqrt());
        assert!(corr > 0.5, "corr = {corr}");
    }

    #[test]
    #[should_panic(expected = "relax_laplace requires")]
    fn rejects_non_increasing_epsilon() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = relax_laplace(0.0, 1.0, 0.5, &mut rng);
    }
}
