//! The mechanism registry: which mechanisms apply to each query type
//! (Algorithm 1, Line 4).

use apex_query::QueryKind;

use crate::{
    LaplaceMechanism, LaplaceTopKMechanism, Mechanism, MultiPokingMechanism, StrategyMechanism,
};

/// Returns APEx's full mechanism suite for a query type, in the order the
/// paper's Table 2 lists them:
///
/// * WCQ — `LM`, `SM` (H2)
/// * ICQ — `LM`, `SM` (H2), `MPM`
/// * TCQ — `LM`, `LTM`
pub fn mechanisms_for(kind: QueryKind) -> Vec<Box<dyn Mechanism>> {
    let mut out: Vec<Box<dyn Mechanism>> = vec![Box::new(LaplaceMechanism)];
    match kind {
        QueryKind::Wcq => out.push(Box::new(StrategyMechanism::h2())),
        QueryKind::Icq { .. } => {
            out.push(Box::new(StrategyMechanism::h2()));
            out.push(Box::new(MultiPokingMechanism::default()));
        }
        QueryKind::Tcq { .. } => out.push(Box::new(LaplaceTopKMechanism)),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcq_suite() {
        let ms = mechanisms_for(QueryKind::Wcq);
        let names: Vec<_> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["LM", "SM"]);
        assert!(ms.iter().all(|m| m.supports(QueryKind::Wcq)));
    }

    #[test]
    fn icq_suite() {
        let ms = mechanisms_for(QueryKind::Icq { threshold: 1.0 });
        let names: Vec<_> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["LM", "SM", "MPM"]);
    }

    #[test]
    fn tcq_suite() {
        let ms = mechanisms_for(QueryKind::Tcq { k: 3 });
        let names: Vec<_> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["LM", "LTM"]);
        assert!(ms.iter().all(|m| m.supports(QueryKind::Tcq { k: 3 })));
    }
}
