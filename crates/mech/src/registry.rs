//! The mechanism registry: which mechanisms apply to each query type
//! (Algorithm 1, Line 4).

use std::sync::Arc;

use apex_query::QueryKind;

use crate::cache::SmCache;
use crate::mc::McConfig;
use crate::{
    LaplaceMechanism, LaplaceTopKMechanism, Mechanism, MultiPokingMechanism, StrategyMechanism,
};

/// Returns APEx's full mechanism suite for a query type, in the order the
/// paper's Table 2 lists them:
///
/// * WCQ — `LM`, `SM` (H2)
/// * ICQ — `LM`, `SM` (H2), `MPM`
/// * TCQ — `LM`, `LTM`
pub fn mechanisms_for(kind: QueryKind) -> Vec<Box<dyn Mechanism>> {
    mechanisms_for_cached(kind, None)
}

/// [`mechanisms_for`], with the strategy mechanism wired to a shared
/// artifact cache (pseudoinverse + Monte-Carlo translator) when one is
/// provided. The engine in `apex-core` passes its per-engine cache here so
/// repeated queries over the same domain partition skip the `O(n³)` QR and
/// the MC resampling.
pub fn mechanisms_for_cached(
    kind: QueryKind,
    cache: Option<Arc<SmCache>>,
) -> Vec<Box<dyn Mechanism>> {
    mechanisms_for_cached_at_epoch(kind, cache, 0)
}

/// [`mechanisms_for_cached`] pinned to a dataset epoch: the strategy
/// mechanism's cache key carries the epoch, so a suite constructed after
/// a live mutation (which bumps the epoch) can never resolve artifacts
/// cached by a pre-mutation suite. Engines thread the epoch snapshotted
/// at evaluate time through here.
pub fn mechanisms_for_cached_at_epoch(
    kind: QueryKind,
    cache: Option<Arc<SmCache>>,
    dataset_epoch: u64,
) -> Vec<Box<dyn Mechanism>> {
    let sm = || -> Box<dyn Mechanism> {
        match &cache {
            Some(c) => Box::new(StrategyMechanism::with_cache_at_epoch(
                apex_query::Strategy::H2,
                McConfig::default(),
                c.clone(),
                dataset_epoch,
            )),
            None => Box::new(StrategyMechanism::h2()),
        }
    };
    let mut out: Vec<Box<dyn Mechanism>> = vec![Box::new(LaplaceMechanism)];
    match kind {
        QueryKind::Wcq => out.push(sm()),
        QueryKind::Icq { .. } => {
            out.push(sm());
            out.push(Box::new(MultiPokingMechanism::default()));
        }
        QueryKind::Tcq { .. } => out.push(Box::new(LaplaceTopKMechanism)),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcq_suite() {
        let ms = mechanisms_for(QueryKind::Wcq);
        let names: Vec<_> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["LM", "SM"]);
        assert!(ms.iter().all(|m| m.supports(QueryKind::Wcq)));
    }

    #[test]
    fn icq_suite() {
        let ms = mechanisms_for(QueryKind::Icq { threshold: 1.0 });
        let names: Vec<_> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["LM", "SM", "MPM"]);
    }

    #[test]
    fn cached_suite_matches_uncached() {
        let cache = SmCache::new();
        for kind in [
            QueryKind::Wcq,
            QueryKind::Icq { threshold: 1.0 },
            QueryKind::Tcq { k: 2 },
        ] {
            let plain: Vec<_> = mechanisms_for(kind).iter().map(|m| m.name()).collect();
            let cached: Vec<_> = mechanisms_for_cached(kind, Some(cache.clone()))
                .iter()
                .map(|m| m.name())
                .collect();
            assert_eq!(plain, cached);
        }
    }

    #[test]
    fn tcq_suite() {
        let ms = mechanisms_for(QueryKind::Tcq { k: 3 });
        let names: Vec<_> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["LM", "LTM"]);
        assert!(ms.iter().all(|m| m.supports(QueryKind::Tcq { k: 3 })));
    }
}
