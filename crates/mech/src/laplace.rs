//! The Laplace distribution, implemented from scratch.
//!
//! `rand_distr` is not in the allowed offline crate set, and the sampler
//! is ten lines via inverse-CDF, so we own it — along with the CDF and
//! quantile functions that the accuracy proofs (Appendix A.1) use.

use rand::Rng;

/// A zero-mean Laplace distribution with scale `b`:
/// `p(x) = exp(−|x|/b) / (2b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    b: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with scale `b`.
    ///
    /// # Panics
    /// Panics if `b` is not strictly positive and finite — a scale of zero
    /// would make a mechanism silently non-private.
    pub fn new(b: f64) -> Self {
        assert!(
            b.is_finite() && b > 0.0,
            "Laplace scale must be positive and finite, got {b}"
        );
        Self { b }
    }

    /// The scale parameter `b`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.b
    }

    /// Draws one sample via inverse-CDF: for `u ~ U(-1/2, 1/2)`,
    /// `x = −b · sgn(u) · ln(1 − 2|u|)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Open interval avoids ln(0).
        let u: f64 = rng.gen_range(-0.5..0.5);
        let mag = -(1.0 - 2.0 * u.abs()).ln() * self.b;
        if u < 0.0 {
            -mag
        } else {
            mag
        }
    }

    /// Draws `n` i.i.d. samples.
    pub fn sample_vec<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The CDF `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.b).exp()
        } else {
            1.0 - 0.5 * (-x / self.b).exp()
        }
    }

    /// The survival function of the absolute value: `P(|X| > t)` for
    /// `t ≥ 0`, which is `exp(−t/b)`. This is the quantity every accuracy
    /// proof in Appendix A bounds.
    pub fn abs_tail(&self, t: f64) -> f64 {
        debug_assert!(t >= 0.0);
        (-t / self.b).exp()
    }

    /// The quantile function (inverse CDF).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile needs p in [0,1], got {p}"
        );
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        if p < 0.5 {
            self.b * (2.0 * p).ln()
        } else {
            -self.b * (2.0 * (1.0 - p)).ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "Laplace scale must be positive")]
    fn zero_scale_panics() {
        let _ = Laplace::new(0.0);
    }

    #[test]
    fn cdf_is_monotone_and_symmetric() {
        let d = Laplace::new(2.0);
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(d.cdf(-1.0) < d.cdf(0.0));
        assert!(d.cdf(1.0) > d.cdf(0.0));
        // Symmetry: F(-x) = 1 - F(x).
        for x in [0.1, 1.0, 3.7] {
            assert!((d.cdf(-x) - (1.0 - d.cdf(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Laplace::new(1.5);
        for p in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn abs_tail_matches_cdf() {
        let d = Laplace::new(0.7);
        for t in [0.0, 0.5, 2.0] {
            let via_cdf = d.cdf(-t) + (1.0 - d.cdf(t));
            assert!((d.abs_tail(t) - via_cdf).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_moments_are_plausible() {
        let d = Laplace::new(3.0);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let xs = d.sample_vec(n, &mut rng);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Var = 2b² = 18.
        assert!((var - 18.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn sample_tail_frequency_matches_theory() {
        let d = Laplace::new(1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let t = 2.0;
        let exceed = d
            .sample_vec(n, &mut rng)
            .iter()
            .filter(|x| x.abs() > t)
            .count();
        let expected = d.abs_tail(t); // e^-2 ≈ 0.1353
        let frac = exceed as f64 / n as f64;
        assert!((frac - expected).abs() < 0.01, "frac {frac} vs {expected}");
    }

    #[test]
    fn empirical_ks_statistic_is_small() {
        let d = Laplace::new(2.5);
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 50_000;
        let mut xs = d.sample_vec(n, &mut rng);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut ks: f64 = 0.0;
        for (i, x) in xs.iter().enumerate() {
            let emp = (i + 1) as f64 / n as f64;
            ks = ks.max((emp - d.cdf(*x)).abs());
        }
        // 99.9% KS critical value ≈ 1.95 / sqrt(n) ≈ 0.0087.
        assert!(ks < 0.009, "KS statistic {ks}");
    }
}
