//! Monte-Carlo accuracy-to-privacy translation (Algorithm 3's
//! `translate` / `estimateBeta`).
//!
//! The strategy mechanism's error is `(W A⁺) η` with `η ~ Lap(‖A‖₁/ε)^l` —
//! a weighted sum of Laplace variables with no closed-form `ℓ∞` tail. The
//! paper translates accuracy to privacy by binary-searching `ε` between 0
//! and the Chebyshev bound of Theorem A.1, using Monte-Carlo simulation
//! with a normal-approximation confidence band to test whether a candidate
//! `ε` meets the failure bound `β`.
//!
//! One structural optimization (documented in DESIGN.md): because the
//! noise distribution at privacy `ε` is the distribution at `ε = 1`
//! scaled by `1/ε`, we sample the reconstruction errors **once** at unit
//! scale and reuse them for every candidate `ε` in the binary search. The
//! estimator at each candidate is identical to the paper's; sharing the
//! sample only removes simulation noise *between* candidates (making the
//! search strictly better behaved).

use apex_linalg::{frobenius_norm, l1_operator_norm, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Laplace;

/// z-score for the (1 − p/2) normal quantile used in the confidence band.
fn z_score(p: f64) -> f64 {
    // Inverse normal CDF via the Acklam rational approximation; accurate
    // to ~1e-9 over (0, 1), far beyond what the band needs.
    inverse_normal_cdf(1.0 - p / 2.0)
}

/// Peter Acklam's rational approximation of the standard normal quantile.
fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// Configuration of the Monte-Carlo translator.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Simulation sample size `N` (the paper uses 10,000).
    pub samples: usize,
    /// Relative tolerance at which the binary search stops.
    pub tolerance: f64,
    /// RNG seed — fixed per translation so that `translate` is a
    /// deterministic function of its inputs (required for the privacy
    /// analyzer: the denial decision must be data- and coin-independent).
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self { samples: 10_000, tolerance: 1e-3, seed: 0x4150_4578 /* "APEx" */ }
    }
}

/// The Monte-Carlo translator for a fixed reconstruction matrix `W A⁺`
/// and strategy sensitivity `‖A‖₁`.
#[derive(Debug)]
pub struct McTranslator {
    /// `‖A‖₁` — the strategy sensitivity.
    strat_sensitivity: f64,
    /// `‖W A⁺‖_F` for the Chebyshev upper bound.
    recon_frobenius: f64,
    /// Sorted unit-scale error maxima: `mᵢ = ‖(W A⁺) η̂ᵢ‖∞` with
    /// `η̂ᵢ ~ Lap(1)^l`, ascending.
    unit_errors: Vec<f64>,
    cfg: McConfig,
}

impl McTranslator {
    /// Prepares the translator by simulating `cfg.samples` unit-scale
    /// reconstruction errors for `recon = W A⁺`.
    pub fn new(recon: &Matrix, strategy: &Matrix, cfg: McConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let unit = Laplace::new(1.0);
        let l = recon.cols();
        let mut unit_errors: Vec<f64> = (0..cfg.samples)
            .map(|_| {
                let eta = unit.sample_vec(l, &mut rng);
                recon
                    .matvec(&eta)
                    .expect("noise length matches recon columns")
                    .iter()
                    .fold(0.0_f64, |m, v| m.max(v.abs()))
            })
            .collect();
        unit_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self {
            strat_sensitivity: l1_operator_norm(strategy),
            recon_frobenius: frobenius_norm(recon),
            unit_errors,
            cfg,
        }
    }

    /// Algorithm 3's `estimateBeta`: whether privacy cost `eps` meets the
    /// `(α, β)` accuracy requirement with confidence margin.
    ///
    /// The empirical failure rate is `βₑ = #{mᵢ·b > α}/N` with
    /// `b = ‖A‖₁/ε`; the test passes when `βₑ + δβ + p/2 < β` with
    /// `δβ = z_{1−p/2} √(βₑ(1−βₑ)/N)` and `p = β/100`.
    pub fn estimate_beta_ok(&self, eps: f64, alpha: f64, beta: f64) -> bool {
        let b = self.strat_sensitivity / eps;
        let threshold = alpha / b;
        // Errors are sorted ascending: failures are those > threshold.
        let first_fail = self.unit_errors.partition_point(|&m| m <= threshold);
        let nf = self.unit_errors.len() - first_fail;
        let n = self.unit_errors.len() as f64;
        let beta_e = nf as f64 / n;
        let p = beta / 100.0;
        let delta = z_score(p) * (beta_e * (1.0 - beta_e) / n).sqrt();
        beta_e + delta + p / 2.0 < beta
    }

    /// Algorithm 3's `translate`: the (approximately) minimal `ε` that
    /// achieves `(α, β)` accuracy, found by binary search below the
    /// Chebyshev bound `ε ≤ ‖A‖₁·‖W A⁺‖_F / (α·√(β/2))` (Theorem A.1).
    pub fn translate(&self, alpha: f64, beta: f64) -> f64 {
        let mut hi = self.strat_sensitivity * self.recon_frobenius / (alpha * (beta / 2.0).sqrt());
        let mut lo = 0.0_f64;
        debug_assert!(self.estimate_beta_ok(hi, alpha, beta) || hi == 0.0);
        // Invariant: hi always satisfies the accuracy test; lo never does.
        while hi - lo > self.cfg.tolerance * hi {
            let mid = 0.5 * (hi + lo);
            if self.estimate_beta_ok(mid, alpha, beta) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_linalg::Matrix;

    #[test]
    fn inverse_normal_cdf_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.999) - 3.090232).abs() < 1e-4);
    }

    /// With `recon = I₁` (a single counting query answered directly), the
    /// mechanism is the plain scalar Laplace mechanism, whose exact
    /// requirement is `ε = ln(1/β)/α`. The MC translation must land near
    /// it (slightly above, because of the confidence margin).
    #[test]
    fn translate_matches_scalar_laplace_closed_form() {
        let i1 = Matrix::identity(1);
        let t = McTranslator::new(&i1, &i1, McConfig { samples: 40_000, ..Default::default() });
        let (alpha, beta) = (10.0, 0.05);
        let eps = t.translate(alpha, beta);
        let exact = (1.0 / beta).ln() / alpha;
        assert!(eps >= exact * 0.95 && eps <= exact * 1.35, "eps {eps} vs exact {exact}");
    }

    #[test]
    fn translate_is_monotone_in_alpha() {
        let i = Matrix::identity(4);
        let t = McTranslator::new(&i, &i, McConfig { samples: 5_000, ..Default::default() });
        let e1 = t.translate(5.0, 0.05);
        let e2 = t.translate(10.0, 0.05);
        let e3 = t.translate(20.0, 0.05);
        assert!(e1 > e2 && e2 > e3, "{e1} {e2} {e3}");
        // Inverse-linear in alpha: e1/e2 ≈ 2.
        assert!((e1 / e2 - 2.0).abs() < 0.1);
    }

    #[test]
    fn translate_is_monotone_in_beta() {
        let i = Matrix::identity(4);
        let t = McTranslator::new(&i, &i, McConfig { samples: 5_000, ..Default::default() });
        let tight = t.translate(10.0, 0.01);
        let loose = t.translate(10.0, 0.2);
        assert!(tight > loose);
    }

    #[test]
    fn estimate_beta_ok_is_monotone_in_eps() {
        let i = Matrix::identity(3);
        let t = McTranslator::new(&i, &i, McConfig { samples: 5_000, ..Default::default() });
        let eps_star = t.translate(10.0, 0.05);
        assert!(t.estimate_beta_ok(eps_star * 2.0, 10.0, 0.05));
        assert!(!t.estimate_beta_ok(eps_star * 0.5, 10.0, 0.05));
    }

    #[test]
    fn translation_is_deterministic() {
        let i = Matrix::identity(2);
        let a = McTranslator::new(&i, &i, McConfig::default()).translate(5.0, 0.1);
        let b = McTranslator::new(&i, &i, McConfig::default()).translate(5.0, 0.1);
        assert_eq!(a, b);
    }
}
