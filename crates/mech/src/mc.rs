//! Monte-Carlo accuracy-to-privacy translation (Algorithm 3's
//! `translate` / `estimateBeta`).
//!
//! The strategy mechanism's error is `(W A⁺) η` with `η ~ Lap(‖A‖₁/ε)^l` —
//! a weighted sum of Laplace variables with no closed-form `ℓ∞` tail. The
//! paper translates accuracy to privacy by binary-searching `ε` between 0
//! and the Chebyshev bound of Theorem A.1, using Monte-Carlo simulation
//! with a normal-approximation confidence band to test whether a candidate
//! `ε` meets the failure bound `β`.
//!
//! One structural optimization (documented in DESIGN.md): because the
//! noise distribution at privacy `ε` is the distribution at `ε = 1`
//! scaled by `1/ε`, we sample the reconstruction errors **once** at unit
//! scale and reuse them for every candidate `ε` in the binary search. The
//! estimator at each candidate is identical to the paper's; sharing the
//! sample only removes simulation noise *between* candidates (making the
//! search strictly better behaved).
//!
//! # The batched fast path
//!
//! Simulating the `N` unit-scale errors one noise vector at a time makes
//! each output element a strict left-to-right dot product — a loop-carried
//! floating-point dependency the compiler must execute serially. The fast
//! path instead samples noise vectors in column blocks `E ∈ ℝ^{l × B}` and
//! computes `(W A⁺) · E` with [`apex_linalg::matmul_batched`], whose kernel
//! keeps the per-element accumulation order identical (ascending `k`) but
//! iterates independent output columns innermost — vectorizable, cache
//! blocked, and thread-parallel across output rows under `apex-linalg`'s
//! `par` feature.
//!
//! Determinism is load-bearing (the privacy analyzer's deny decision must
//! be a pure function of its inputs), so each sample index draws from its
//! **own seeded RNG stream** derived from `(cfg.seed, index)`. Blocking and
//! thread count therefore cannot reorder sampling, and the batched path is
//! **bit-identical** to the serial reference path
//! ([`McTranslator::new_serial`]) — pinned down by property tests.
//!
//! Compatibility note: per-sample streams are a deliberate break from the
//! earlier formulation, which drew all `N` noise vectors sequentially from
//! one `StdRng::seed_from_u64(cfg.seed)` stream. A given `(seed, inputs)`
//! pair therefore translates to a (statistically equivalent but)
//! numerically different ε than pre-rewrite code would have produced. The
//! determinism guarantee is *within* a build — same inputs, same ε, any
//! thread count — not across this revision boundary; nothing persisted
//! (budgets, transcripts) encodes pre-rewrite ε values, so no stored state
//! can go stale.

use apex_linalg::{
    frobenius_norm, l1_operator_norm, matmul_batched_bt, CsrMatrix, Matrix, OpScratch,
    StrategyOperator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Laplace;

/// Default samples per noise block in the batched paths (dense blocks and
/// operator panels): large enough to amortize the kernel setup, small
/// enough that a block (`l × 512` doubles) stays in cache for realistic
/// strategy sizes. Tunable per translation via [`McConfig::sample_block`];
/// the block size never changes results (bit-identity is per sample), only
/// wall-clock and peak memory.
pub const SAMPLE_BLOCK: usize = 512;

/// z-score for the (1 − p/2) normal quantile used in the confidence band.
fn z_score(p: f64) -> f64 {
    // Inverse normal CDF via the Acklam rational approximation; accurate
    // to ~1e-9 over (0, 1), far beyond what the band needs.
    inverse_normal_cdf(1.0 - p / 2.0)
}

/// Peter Acklam's rational approximation of the standard normal quantile.
fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// Configuration of the Monte-Carlo translator.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Simulation sample size `N` (the paper uses 10,000).
    pub samples: usize,
    /// Relative tolerance at which the binary search stops.
    pub tolerance: f64,
    /// RNG seed — fixed per translation so that `translate` is a
    /// deterministic function of its inputs (required for the privacy
    /// analyzer: the denial decision must be data- and coin-independent).
    pub seed: u64,
    /// Samples per noise panel in the batched simulation paths (clamped to
    /// ≥ 1). Purely a performance/memory knob: per-sample RNG streams and
    /// per-column kernel bit-identity mean the results are independent of
    /// the block size (property-tested), so this deliberately does **not**
    /// participate in the artifact cache key.
    pub sample_block: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            samples: 10_000,
            tolerance: 1e-3,
            seed: 0x4150_4578, /* "APEx" */
            sample_block: SAMPLE_BLOCK,
        }
    }
}

/// The Monte-Carlo translator for a fixed reconstruction matrix `W A⁺`
/// and strategy sensitivity `‖A‖₁`.
#[derive(Debug)]
pub struct McTranslator {
    /// `‖A‖₁` — the strategy sensitivity.
    strat_sensitivity: f64,
    /// `‖W A⁺‖_F` for the Chebyshev upper bound.
    recon_frobenius: f64,
    /// Sorted unit-scale error maxima: `mᵢ = ‖(W A⁺) η̂ᵢ‖∞` with
    /// `η̂ᵢ ~ Lap(1)^l`, ascending.
    unit_errors: Vec<f64>,
    cfg: McConfig,
}

/// The per-sample RNG stream: SplitMix64-style mixing of `(seed, index)`
/// so every sample owns an independent, reorder-proof stream.
fn sample_stream(seed: u64, index: u64) -> StdRng {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

impl McTranslator {
    /// Prepares the translator by simulating `cfg.samples` unit-scale
    /// reconstruction errors for `recon = W A⁺` via the batched fast path.
    ///
    /// `strategy` is consulted only for its sensitivity `‖A‖₁`; use
    /// [`McTranslator::with_sensitivity`] when the strategy is held in CSR
    /// form and the norm is already known.
    pub fn new(recon: &Matrix, strategy: &Matrix, cfg: McConfig) -> Self {
        Self::with_sensitivity(recon, l1_operator_norm(strategy), cfg)
    }

    /// [`McTranslator::new`] with a precomputed strategy sensitivity
    /// `‖A‖₁` — the batched dense construction path (the reference the
    /// operator path is tested against, and the right choice when a dense
    /// `W A⁺` already exists).
    pub fn with_sensitivity(recon: &Matrix, strat_sensitivity: f64, cfg: McConfig) -> Self {
        let unit_errors =
            unit_errors_batched_with_block(recon, cfg.samples, cfg.seed, cfg.sample_block);
        Self::from_unit_errors(recon, strat_sensitivity, cfg, unit_errors)
    }

    /// The matrix-free construction: simulates the reconstruction errors
    /// `‖W A⁺ η‖∞` through a [`StrategyOperator`] — `A⁺η` is one
    /// `apply_transpose` + one `solve_normal`, never a dense `W A⁺`.
    ///
    /// The Chebyshev bound's `‖W A⁺‖_F` is computed without
    /// materialization either, via the trace identity
    /// `‖W A⁺‖_F² = tr(W (AᵀA)⁻¹ Wᵀ) = Σ_i wᵢᵀ (AᵀA)⁻¹ wᵢ` — one
    /// `solve_normal` per workload row.
    ///
    /// Noise is drawn from the same per-sample streams as the dense
    /// paths, so the simulated errors differ from
    /// [`McTranslator::with_sensitivity`] only by floating-point
    /// summation order (≈1e-9 relative — property-tested), not by
    /// distribution.
    ///
    /// # Panics
    /// Panics if `workload.cols() != op.cols()` (caller bug: the workload
    /// and strategy must share a domain).
    pub fn with_operator(
        workload: &CsrMatrix,
        op: &dyn StrategyOperator,
        strat_sensitivity: f64,
        cfg: McConfig,
    ) -> Self {
        assert_eq!(
            workload.cols(),
            op.cols(),
            "workload and strategy operator must share the domain"
        );
        let unit_errors = unit_errors_operator_blocked(
            workload,
            op,
            cfg.samples,
            cfg.seed,
            apex_linalg::max_threads(),
            cfg.sample_block,
        );
        let recon_frobenius = recon_frobenius_via_operator(workload, op);
        Self::from_parts(strat_sensitivity, recon_frobenius, cfg, unit_errors)
    }

    /// [`McTranslator::with_operator`] through the legacy one-sample-at-a-
    /// time `pinv_apply_into` loop instead of the blocked panels. Kept so
    /// the single-RHS path stays measurable (the `translator_prepare`
    /// benchmark's `hier` rows) and directly comparable: both paths
    /// produce bit-identical `unit_errors`.
    pub fn with_operator_single_rhs(
        workload: &CsrMatrix,
        op: &dyn StrategyOperator,
        strat_sensitivity: f64,
        cfg: McConfig,
    ) -> Self {
        assert_eq!(
            workload.cols(),
            op.cols(),
            "workload and strategy operator must share the domain"
        );
        let unit_errors = unit_errors_operator_single_rhs(workload, op, cfg.samples, cfg.seed);
        let recon_frobenius = recon_frobenius_via_operator(workload, op);
        Self::from_parts(strat_sensitivity, recon_frobenius, cfg, unit_errors)
    }

    /// The serial reference construction: one noise vector and one dense
    /// `matvec` per sample. Kept (and exported) because the batched path's
    /// correctness claim is "bit-identical to this" — property tests and
    /// the `mc_translate` benchmark compare the two directly.
    pub fn new_serial(recon: &Matrix, strat_sensitivity: f64, cfg: McConfig) -> Self {
        let unit_errors = unit_errors_serial(recon, cfg.samples, cfg.seed);
        Self::from_unit_errors(recon, strat_sensitivity, cfg, unit_errors)
    }

    fn from_unit_errors(
        recon: &Matrix,
        strat_sensitivity: f64,
        cfg: McConfig,
        unit_errors: Vec<f64>,
    ) -> Self {
        Self::from_parts(strat_sensitivity, frobenius_norm(recon), cfg, unit_errors)
    }

    fn from_parts(
        strat_sensitivity: f64,
        recon_frobenius: f64,
        cfg: McConfig,
        mut unit_errors: Vec<f64>,
    ) -> Self {
        // total_cmp: NaN-safe (a NaN in the samples must not panic the
        // analyzer; it sorts to the top and behaves as an always-failing
        // sample, which is the conservative direction).
        unit_errors.sort_by(f64::total_cmp);
        Self {
            strat_sensitivity,
            recon_frobenius,
            unit_errors,
            cfg,
        }
    }

    /// The sorted unit-scale error maxima backing the estimator (ascending;
    /// exposed so determinism tests can compare construction paths
    /// byte-for-byte).
    pub fn unit_errors(&self) -> &[f64] {
        &self.unit_errors
    }

    /// Algorithm 3's `estimateBeta`: whether privacy cost `eps` meets the
    /// `(α, β)` accuracy requirement with confidence margin.
    ///
    /// The empirical failure rate is `βₑ = #{mᵢ·b > α}/N` with
    /// `b = ‖A‖₁/ε`; the test passes when `βₑ + δβ + p/2 < β` with
    /// `δβ = z_{1−p/2} √(βₑ(1−βₑ)/N)` and `p = β/100`.
    ///
    /// With an empty sample set there is no evidence at all, so the test
    /// conservatively fails for every `eps` (`translate` then returns the
    /// Chebyshev upper bound unchanged).
    pub fn estimate_beta_ok(&self, eps: f64, alpha: f64, beta: f64) -> bool {
        if self.unit_errors.is_empty() {
            return false;
        }
        let b = self.strat_sensitivity / eps;
        let threshold = alpha / b;
        // Errors are sorted ascending (total order, NaN last): failures are
        // those > threshold, so `partition_point(≤ threshold)` finds the
        // first failure even when NaNs are present.
        let first_fail = self.unit_errors.partition_point(|&m| m <= threshold);
        let nf = self.unit_errors.len() - first_fail;
        let n = self.unit_errors.len() as f64;
        let beta_e = nf as f64 / n;
        let p = beta / 100.0;
        let delta = z_score(p) * (beta_e * (1.0 - beta_e) / n).sqrt();
        beta_e + delta + p / 2.0 < beta
    }

    /// Algorithm 3's `translate`: the (approximately) minimal `ε` that
    /// achieves `(α, β)` accuracy, found by binary search below the
    /// Chebyshev bound `ε ≤ ‖A‖₁·‖W A⁺‖_F / (α·√(β/2))` (Theorem A.1).
    pub fn translate(&self, alpha: f64, beta: f64) -> f64 {
        let hi = self.strat_sensitivity * self.recon_frobenius / (alpha * (beta / 2.0).sqrt());
        if self.unit_errors.is_empty() {
            // No simulation evidence: return the closed-form bound.
            return hi;
        }
        let mut hi = hi;
        let mut lo = 0.0_f64;
        debug_assert!(self.estimate_beta_ok(hi, alpha, beta) || hi == 0.0);
        // Invariant: hi always satisfies the accuracy test; lo never does.
        while hi - lo > self.cfg.tolerance * hi {
            let mid = 0.5 * (hi + lo);
            if self.estimate_beta_ok(mid, alpha, beta) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

/// The serial reference simulation: per sample, draw `l` unit-Laplace
/// variables from the sample's own stream and reduce `‖recon · η‖∞` with a
/// dense `matvec`. `O(N · L · l)` with a strictly serial inner reduction.
pub fn unit_errors_serial(recon: &Matrix, samples: usize, seed: u64) -> Vec<f64> {
    let unit = Laplace::new(1.0);
    let l = recon.cols();
    (0..samples)
        .map(|i| {
            let mut rng = sample_stream(seed, i as u64);
            let eta = unit.sample_vec(l, &mut rng);
            recon
                .matvec(&eta)
                .expect("noise length matches recon columns")
                .iter()
                .fold(0.0_f64, |m, v| m.max(v.abs()))
        })
        .collect()
}

/// The batched simulation: noise vectors are drawn per sample stream into
/// `l × B` column blocks and reduced through the blocked (and, with
/// `apex-linalg`'s `par` feature, thread-parallel) dense product. Same
/// floating-point operation sequence per output element as
/// [`unit_errors_serial`] — the results are bit-identical.
pub fn unit_errors_batched(recon: &Matrix, samples: usize, seed: u64) -> Vec<f64> {
    unit_errors_batched_with_block(recon, samples, seed, SAMPLE_BLOCK)
}

/// [`unit_errors_batched`] with an explicit block size (clamped to ≥ 1).
/// The block size only affects wall-clock and memory, never results.
pub fn unit_errors_batched_with_block(
    recon: &Matrix,
    samples: usize,
    seed: u64,
    block: usize,
) -> Vec<f64> {
    let block = block.max(1);
    let unit = Laplace::new(1.0);
    let l = recon.cols();
    let rows = recon.rows();
    let mut errors = vec![0.0_f64; samples];
    let mut start = 0;
    while start < samples {
        let bs = block.min(samples - start);
        // Row j of the (transposed-storage) block is sample `start + j`'s
        // noise vector — generated as one contiguous write.
        let mut e_t = Matrix::zeros(bs, l);
        for j in 0..bs {
            let mut rng = sample_stream(seed, (start + j) as u64);
            for v in e_t.row_mut(j) {
                *v = unit.sample(&mut rng);
            }
        }
        // r[i][j] = Σ_k recon[i][k] · η_{start+j}[k], k ascending — the
        // same operation sequence as the serial matvec.
        let r = matmul_batched_bt(recon, &e_t).expect("block shape matches recon columns");
        // Streaming ℓ∞ reduction: per column j the max-fold still runs
        // over i ascending, exactly like the serial path's fold.
        let maxs = &mut errors[start..start + bs];
        for i in 0..rows {
            for (mx, v) in maxs.iter_mut().zip(r.row(i)) {
                *mx = mx.max(v.abs());
            }
        }
        start += bs;
    }
    errors
}

/// The matrix-free simulation: noise vectors (`m` = strategy rows, the
/// same per-sample streams as the dense paths) are drawn into column-major
/// panels and pushed through `A⁺` via
/// [`StrategyOperator::pinv_apply_multi`] and the sparse workload via
/// [`CsrMatrix::matvec_panel`] — one interval-tree / sparsity-pattern walk
/// amortized over a whole panel instead of one `pinv_apply_into` per
/// sample. Per sample still `O(nnz(W) + solve cost)`, but the inner loops
/// are independent fixed-width lanes instead of loop-carried reductions.
///
/// Every batched kernel is bit-identical per column to its single-RHS
/// counterpart and every sample owns its RNG stream and output slot, so
/// blocking, panel width, and thread count never change a result — pinned
/// by property tests (parallelism must never change a privacy decision).
pub fn unit_errors_operator(
    workload: &CsrMatrix,
    op: &dyn StrategyOperator,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    unit_errors_operator_with_threads(workload, op, samples, seed, apex_linalg::max_threads())
}

/// [`unit_errors_operator`] with an explicit thread count (clamped to
/// ≥ 1). The result does not depend on `threads` — only wall-clock does.
pub fn unit_errors_operator_with_threads(
    workload: &CsrMatrix,
    op: &dyn StrategyOperator,
    samples: usize,
    seed: u64,
    threads: usize,
) -> Vec<f64> {
    unit_errors_operator_blocked(workload, op, samples, seed, threads, SAMPLE_BLOCK)
}

/// [`unit_errors_operator`] with explicit thread count and panel width
/// (both clamped to ≥ 1) — the full-control entry point behind
/// [`McConfig::sample_block`]. Neither knob affects results. The
/// effective panel width is additionally capped so the per-thread noise
/// panel stays within a fixed memory budget (see `capped_panel_width`);
/// that cap is equally invisible in the results.
///
/// Samples are split across scoped threads in **balanced** contiguous
/// chunks (`base + 1` samples for the first `samples % threads` threads,
/// `base` for the rest), so no thread gets a systematically short or empty
/// chunk when `samples % threads != 0`.
pub fn unit_errors_operator_blocked(
    workload: &CsrMatrix,
    op: &dyn StrategyOperator,
    samples: usize,
    seed: u64,
    threads: usize,
    block: usize,
) -> Vec<f64> {
    let mut errors = vec![0.0_f64; samples];
    if samples == 0 {
        return errors;
    }
    let m = op.rows();
    let block = capped_panel_width(block, m);
    let l = workload.rows();
    let t = threads.clamp(1, samples);
    let base = samples / t;
    let extra = samples % t;
    // Row classification is O(nnz); build it once and share it across
    // threads instead of re-deriving it inside every panel product.
    let panel_plan = workload.panel_plan();
    std::thread::scope(|s| {
        let mut rest: &mut [f64] = &mut errors;
        let mut offset = 0usize;
        for i in 0..t {
            let len = base + usize::from(i < extra);
            let (slice, tail) = rest.split_at_mut(len);
            rest = tail;
            let first = offset;
            offset += len;
            let plan = &panel_plan;
            s.spawn(move || {
                // Per-thread panels: the noise panel, the pinv output
                // panel, the workload product panel, and the solver's
                // sweep buffers are allocated once and reused for every
                // panel, so the steady-state loop is allocation-free.
                // Buffers are fully overwritten per panel — results stay
                // bit-identical to the single-RHS reference for any thread
                // count and panel width.
                let unit = Laplace::new(1.0);
                let mut eta_panel: Vec<f64> = Vec::new();
                let mut recon_panel: Vec<f64> = Vec::new();
                let mut w_panel: Vec<f64> = Vec::new();
                let mut scratch = OpScratch::new();
                let mut start = 0usize;
                while start < slice.len() {
                    let bs = block.min(slice.len() - start);
                    eta_panel.resize(m * bs, 0.0);
                    for (j, col) in eta_panel.chunks_exact_mut(m).enumerate() {
                        let mut rng = sample_stream(seed, (first + start + j) as u64);
                        for v in col {
                            *v = unit.sample(&mut rng);
                        }
                    }
                    op.pinv_apply_multi(&eta_panel, bs, &mut recon_panel, &mut scratch)
                        .expect("noise length matches operator rows");
                    workload
                        .matvec_panel_with_plan(plan, &recon_panel, bs, &mut w_panel)
                        .expect("workload and operator share the domain");
                    for (j, e) in slice[start..start + bs].iter_mut().enumerate() {
                        *e = w_panel[j * l..(j + 1) * l]
                            .iter()
                            .fold(0.0_f64, |mx, v| mx.max(v.abs()));
                    }
                    start += bs;
                }
            });
        }
    });
    errors
}

/// The single-RHS reference simulation: one noise vector, one
/// `pinv_apply_into`, and one sparse `matvec_into` per sample (the
/// pre-blocking hot loop, single-threaded). Kept and exported because the
/// blocked path's correctness claim is "bit-identical to this" — property
/// tests and the `translator_prepare` benchmark's `hier` rows use it
/// directly.
pub fn unit_errors_operator_single_rhs(
    workload: &CsrMatrix,
    op: &dyn StrategyOperator,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    let unit = Laplace::new(1.0);
    let m = op.rows();
    let mut errors = vec![0.0_f64; samples];
    let mut eta = vec![0.0_f64; m];
    let mut recon_eta: Vec<f64> = Vec::new();
    let mut w_eta: Vec<f64> = Vec::new();
    let mut scratch = OpScratch::new();
    for (i, e) in errors.iter_mut().enumerate() {
        let mut rng = sample_stream(seed, i as u64);
        for v in eta.iter_mut() {
            *v = unit.sample(&mut rng);
        }
        op.pinv_apply_into(&eta, &mut recon_eta, &mut scratch)
            .expect("noise length matches operator rows");
        workload
            .matvec_into(&recon_eta, &mut w_eta)
            .expect("workload and operator share the domain");
        *e = w_eta.iter().fold(0.0_f64, |mx, v| mx.max(v.abs()));
    }
    errors
}

/// Caps a requested panel width so the per-panel working buffers stay
/// within a fixed ~8 MiB budget. `sample_block`-wide panels at very large
/// strategies (78 MiB of noise at n = 16384 with the default block of 512)
/// thrash the cache and TLB badly enough to make the blocked path *slower*
/// than narrow panels; panel width provably never changes results (pinned
/// by `sample_block_config_does_not_change_the_translation`), so clamping
/// it is a locality decision the caller never observes.
fn capped_panel_width(requested: usize, col_len: usize) -> usize {
    const PANEL_BUDGET_BYTES: usize = 8 << 20;
    const MIN_WIDTH: usize = 8;
    let fit = PANEL_BUDGET_BYTES / (8 * col_len.max(1));
    requested.max(1).min(fit.max(MIN_WIDTH))
}

/// `‖W A⁺‖_F` without materializing `W A⁺`, via
/// `‖W A⁺‖_F² = tr(W (AᵀA)⁻¹ Wᵀ) = Σ_i wᵢᵀ (AᵀA)⁻¹ wᵢ` — normal solves
/// over the workload rows (`O(L · n)` total for the hierarchical family),
/// pushed through [`StrategyOperator::solve_normal_multi`] in panels of
/// densified rows. Each panel column's solve — and the sparse dot against
/// it — is bit-identical to the row-at-a-time loop this replaces, so the
/// returned norm is unchanged by the blocking (or by panel width).
pub fn recon_frobenius_via_operator(workload: &CsrMatrix, op: &dyn StrategyOperator) -> f64 {
    let n = workload.cols();
    let l = workload.rows();
    let chunk = capped_panel_width(usize::MAX, n);
    let mut panel: Vec<f64> = Vec::new();
    let mut z: Vec<f64> = Vec::new();
    let mut scratch = OpScratch::new();
    let mut total = 0.0_f64;
    let mut start = 0usize;
    while start < l {
        let k = chunk.min(l - start);
        panel.clear();
        panel.resize(k * n, 0.0);
        for (c, col) in panel.chunks_exact_mut(n).enumerate() {
            let (cols, vals) = workload.row(start + c);
            for (&j, &v) in cols.iter().zip(vals) {
                col[j] = v;
            }
        }
        op.solve_normal_multi(&panel, k, &mut z, &mut scratch)
            .expect("workload and operator share the domain");
        for c in 0..k {
            let (cols, vals) = workload.row(start + c);
            let zc = &z[c * n..(c + 1) * n];
            // wᵢᵀ zᵢ over the sparse support only.
            total += cols.iter().zip(vals).map(|(&j, &v)| v * zc[j]).sum::<f64>();
        }
        start += k;
    }
    // M⁻¹ is SPD, so each summand is ≥ 0 up to rounding.
    total.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_linalg::Matrix;

    #[test]
    fn inverse_normal_cdf_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.999) - 3.090232).abs() < 1e-4);
    }

    /// With `recon = I₁` (a single counting query answered directly), the
    /// mechanism is the plain scalar Laplace mechanism, whose exact
    /// requirement is `ε = ln(1/β)/α`. The MC translation must land near
    /// it (slightly above, because of the confidence margin).
    #[test]
    fn translate_matches_scalar_laplace_closed_form() {
        let i1 = Matrix::identity(1);
        let t = McTranslator::new(
            &i1,
            &i1,
            McConfig {
                samples: 40_000,
                ..Default::default()
            },
        );
        let (alpha, beta) = (10.0, 0.05);
        let eps = t.translate(alpha, beta);
        let exact = (1.0 / beta).ln() / alpha;
        assert!(
            eps >= exact * 0.95 && eps <= exact * 1.35,
            "eps {eps} vs exact {exact}"
        );
    }

    #[test]
    fn translate_is_monotone_in_alpha() {
        let i = Matrix::identity(4);
        let t = McTranslator::new(
            &i,
            &i,
            McConfig {
                samples: 5_000,
                ..Default::default()
            },
        );
        let e1 = t.translate(5.0, 0.05);
        let e2 = t.translate(10.0, 0.05);
        let e3 = t.translate(20.0, 0.05);
        assert!(e1 > e2 && e2 > e3, "{e1} {e2} {e3}");
        // Inverse-linear in alpha: e1/e2 ≈ 2.
        assert!((e1 / e2 - 2.0).abs() < 0.1);
    }

    #[test]
    fn translate_is_monotone_in_beta() {
        let i = Matrix::identity(4);
        let t = McTranslator::new(
            &i,
            &i,
            McConfig {
                samples: 5_000,
                ..Default::default()
            },
        );
        let tight = t.translate(10.0, 0.01);
        let loose = t.translate(10.0, 0.2);
        assert!(tight > loose);
    }

    #[test]
    fn estimate_beta_ok_is_monotone_in_eps() {
        let i = Matrix::identity(3);
        let t = McTranslator::new(
            &i,
            &i,
            McConfig {
                samples: 5_000,
                ..Default::default()
            },
        );
        let eps_star = t.translate(10.0, 0.05);
        assert!(t.estimate_beta_ok(eps_star * 2.0, 10.0, 0.05));
        assert!(!t.estimate_beta_ok(eps_star * 0.5, 10.0, 0.05));
    }

    #[test]
    fn translation_is_deterministic() {
        let i = Matrix::identity(2);
        let a = McTranslator::new(&i, &i, McConfig::default()).translate(5.0, 0.1);
        let b = McTranslator::new(&i, &i, McConfig::default()).translate(5.0, 0.1);
        assert_eq!(a, b);
    }

    /// A dense pseudo-random reconstruction matrix for parity tests.
    fn dense_recon(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| rand::Rng::gen::<f64>(&mut rng) - 0.5)
                .collect(),
        )
    }

    #[test]
    fn batched_is_bit_identical_to_serial() {
        // Shapes straddling the block size, including non-multiples.
        for (rows, cols, n) in [(3, 7, 10), (17, 33, 700), (5, 64, 1025)] {
            let recon = dense_recon(rows, cols, 7 + rows as u64);
            let serial = unit_errors_serial(&recon, n, 0xA5A5);
            let batched = unit_errors_batched(&recon, n, 0xA5A5);
            assert_eq!(serial.len(), batched.len());
            for (i, (s, b)) in serial.iter().zip(&batched).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    b.to_bits(),
                    "sample {i} differs ({rows}x{cols}, N={n})"
                );
            }
        }
    }

    #[test]
    fn serial_and_batched_translators_agree_exactly() {
        let recon = dense_recon(6, 11, 3);
        let cfg = McConfig {
            samples: 2_000,
            ..Default::default()
        };
        let a = McTranslator::with_sensitivity(&recon, 4.0, cfg);
        let b = McTranslator::new_serial(&recon, 4.0, cfg);
        assert_eq!(a.unit_errors(), b.unit_errors());
        assert_eq!(a.translate(20.0, 0.05), b.translate(20.0, 0.05));
    }

    #[test]
    fn empty_sample_set_is_conservative() {
        let i1 = Matrix::identity(1);
        let t = McTranslator::new(
            &i1,
            &i1,
            McConfig {
                samples: 0,
                ..Default::default()
            },
        );
        assert!(t.unit_errors().is_empty());
        // No evidence: every candidate fails the test...
        assert!(!t.estimate_beta_ok(1e6, 10.0, 0.05));
        // ...and translate falls back to the closed-form Chebyshev bound.
        let (alpha, beta) = (10.0, 0.05);
        let chebyshev = 1.0 * 1.0 / (alpha * (beta / 2.0_f64).sqrt());
        assert_eq!(t.translate(alpha, beta), chebyshev);
    }

    /// Build the dense `W A⁺` alongside the operator to compare paths.
    fn prefix_workload_csr(n: usize) -> CsrMatrix {
        let mut b = apex_linalg::CsrBuilder::new(n);
        for i in 0..n {
            b.push_interval_row(0, i + 1);
        }
        b.finish()
    }

    #[test]
    fn operator_translator_agrees_with_dense_translator() {
        use apex_query::Strategy;
        for n in [5usize, 16, 33] {
            let w = prefix_workload_csr(n);
            let op = Strategy::H2.operator(n).unwrap();
            let a_dense = Strategy::H2.build(n).unwrap();
            let recon = w.matmul(&apex_linalg::pinv(&a_dense).unwrap()).unwrap();
            let sens = op.l1_operator_norm();
            let cfg = McConfig {
                samples: 1_500,
                ..Default::default()
            };
            let t_op = McTranslator::with_operator(&w, op.as_ref(), sens, cfg);
            let t_dense = McTranslator::with_sensitivity(&recon, sens, cfg);

            // Same noise, same distribution; only FP summation order
            // differs, so the per-sample errors match tightly...
            assert_eq!(t_op.unit_errors().len(), t_dense.unit_errors().len());
            for (a, b) in t_op.unit_errors().iter().zip(t_dense.unit_errors()) {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "n={n}: {a} vs {b}"
                );
            }
            // ...and the translations land within the search tolerance.
            let (alpha, beta) = (10.0, 0.05);
            let e_op = t_op.translate(alpha, beta);
            let e_dense = t_dense.translate(alpha, beta);
            assert!(
                (e_op - e_dense).abs() <= 2.0 * cfg.tolerance * e_dense,
                "n={n}: {e_op} vs {e_dense}"
            );
        }
    }

    #[test]
    fn operator_frobenius_matches_dense_frobenius() {
        use apex_query::Strategy;
        for n in [4usize, 9, 20] {
            let w = prefix_workload_csr(n);
            let op = Strategy::H2.operator(n).unwrap();
            let a_dense = Strategy::H2.build(n).unwrap();
            let recon = w.matmul(&apex_linalg::pinv(&a_dense).unwrap()).unwrap();
            let f_op = recon_frobenius_via_operator(&w, op.as_ref());
            let f_dense = frobenius_norm(&recon);
            assert!(
                (f_op - f_dense).abs() <= 1e-9 * f_dense,
                "n={n}: {f_op} vs {f_dense}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_allocating_reference() {
        // The operator path reuses per-thread scratch buffers; re-derive
        // every sample with fresh allocations and demand bitwise equality.
        use apex_query::Strategy;
        for (n, samples) in [(5usize, 40usize), (33, 130), (64, 700)] {
            let w = prefix_workload_csr(n);
            let op = Strategy::H2.operator(n).unwrap();
            let got = unit_errors_operator(&w, op.as_ref(), samples, 0xC0FFEE);
            let unit = Laplace::new(1.0);
            for (i, g) in got.iter().enumerate() {
                let mut rng = sample_stream(0xC0FFEE, i as u64);
                let eta = unit.sample_vec(op.rows(), &mut rng);
                let reference = w
                    .matvec(&op.pinv_apply(&eta).unwrap())
                    .unwrap()
                    .iter()
                    .fold(0.0_f64, |mx, v| mx.max(v.abs()));
                assert_eq!(g.to_bits(), reference.to_bits(), "n={n} sample {i}");
            }
        }
    }

    #[test]
    fn operator_unit_errors_are_thread_count_invariant() {
        use apex_query::Strategy;
        for (n, samples) in [(7usize, 1usize), (16, 37), (33, 260)] {
            let w = prefix_workload_csr(n);
            let op = Strategy::H2.operator(n).unwrap();
            let one = unit_errors_operator_with_threads(&w, op.as_ref(), samples, 0xBEE, 1);
            for threads in [2usize, 3, 8, 64] {
                let t = unit_errors_operator_with_threads(&w, op.as_ref(), samples, 0xBEE, threads);
                assert_eq!(one, t, "n={n} N={samples} threads={threads}");
            }
        }
    }

    #[test]
    fn blocked_is_bit_identical_to_single_rhs_across_panel_widths() {
        // The blocked panel pipeline must reproduce the single-RHS loop
        // bit for bit for every panel width — including 1, widths around
        // the default block, and widths straddling the sample count — over
        // non-power domains and branchings 2/3/5.
        use apex_linalg::HierarchicalOperator;
        for (n, b) in [(13usize, 2usize), (33, 3), (50, 5)] {
            let w = prefix_workload_csr(n);
            let op = HierarchicalOperator::new(n, b).unwrap();
            let samples = 70;
            let reference = unit_errors_operator_single_rhs(&w, &op, samples, 0xB10C);
            for block in [1usize, 7, 8, 9, 64, 69, 70, 71, 1024] {
                let blocked = unit_errors_operator_blocked(&w, &op, samples, 0xB10C, 1, block);
                assert_eq!(reference, blocked, "n={n} b={b} block={block}");
            }
        }
    }

    #[test]
    fn blocked_is_bit_identical_around_the_default_block_size() {
        // SAMPLE_BLOCK − 1 / SAMPLE_BLOCK / SAMPLE_BLOCK + 1 panels, with
        // enough samples that full panels, ragged lane tails, and a ragged
        // final panel all occur.
        let n = 16;
        let w = prefix_workload_csr(n);
        let op = apex_linalg::HierarchicalOperator::new(n, 2).unwrap();
        let samples = SAMPLE_BLOCK + 37;
        let reference = unit_errors_operator_single_rhs(&w, &op, samples, 0x51AB);
        for block in [SAMPLE_BLOCK - 1, SAMPLE_BLOCK, SAMPLE_BLOCK + 1] {
            let blocked = unit_errors_operator_blocked(&w, &op, samples, 0x51AB, 1, block);
            assert_eq!(reference, blocked, "block={block}");
        }
    }

    #[test]
    fn sample_block_config_does_not_change_the_translation() {
        use apex_query::Strategy;
        let n = 33;
        let w = prefix_workload_csr(n);
        let op = Strategy::H2.operator(n).unwrap();
        let sens = op.l1_operator_norm();
        let base = McConfig {
            samples: 600,
            ..Default::default()
        };
        let reference = McTranslator::with_operator(&w, op.as_ref(), sens, base);
        for sample_block in [1usize, 5, 599, 600, 601, 4096] {
            let cfg = McConfig {
                sample_block,
                ..base
            };
            let t = McTranslator::with_operator(&w, op.as_ref(), sens, cfg);
            assert_eq!(
                reference.unit_errors(),
                t.unit_errors(),
                "sample_block={sample_block}"
            );
            assert_eq!(
                reference.translate(10.0, 0.05),
                t.translate(10.0, 0.05),
                "sample_block={sample_block}"
            );
        }
    }

    #[test]
    fn single_rhs_translator_agrees_exactly_with_blocked_translator() {
        use apex_query::Strategy;
        let n = 27;
        let w = prefix_workload_csr(n);
        let op = Strategy::H2.operator(n).unwrap();
        let sens = op.l1_operator_norm();
        let cfg = McConfig {
            samples: 500,
            ..Default::default()
        };
        let blocked = McTranslator::with_operator(&w, op.as_ref(), sens, cfg);
        let single = McTranslator::with_operator_single_rhs(&w, op.as_ref(), sens, cfg);
        assert_eq!(blocked.unit_errors(), single.unit_errors());
        assert_eq!(blocked.translate(10.0, 0.05), single.translate(10.0, 0.05));
    }

    #[test]
    fn thread_chunks_are_balanced() {
        // 10 samples across 4 threads must split 3/3/2/2 (never 3/3/3/1,
        // and never an empty trailing chunk) — checked behaviorally: every
        // thread count and remainder combination reproduces the
        // single-thread result, including threads > samples.
        use apex_query::Strategy;
        let n = 16;
        let w = prefix_workload_csr(n);
        let op = Strategy::H2.operator(n).unwrap();
        for samples in [1usize, 2, 9, 10, 37] {
            let one = unit_errors_operator_with_threads(&w, op.as_ref(), samples, 0xFA1, 1);
            for threads in [2usize, 3, 4, 7, samples, samples + 5, 64] {
                let t = unit_errors_operator_with_threads(&w, op.as_ref(), samples, 0xFA1, threads);
                assert_eq!(one, t, "samples={samples} threads={threads}");
            }
        }
    }

    #[test]
    fn identity_operator_translator_matches_identity_recon() {
        use apex_linalg::IdentityOperator;
        let n = 6;
        let w = CsrMatrix::identity(n);
        let op = IdentityOperator::new(n);
        let cfg = McConfig {
            samples: 2_000,
            ..Default::default()
        };
        let t_op = McTranslator::with_operator(&w, &op, 1.0, cfg);
        let t_dense = McTranslator::with_sensitivity(&Matrix::identity(n), 1.0, cfg);
        // With W = A = I both paths compute |η_j| maxima — identically.
        assert_eq!(t_op.unit_errors(), t_dense.unit_errors());
        assert_eq!(t_op.translate(8.0, 0.05), t_dense.translate(8.0, 0.05));
    }

    #[test]
    fn per_sample_streams_are_independent_of_order() {
        // Stream derivation depends only on (seed, index): sampling a
        // prefix yields a prefix.
        let recon = dense_recon(4, 9, 11);
        let all = unit_errors_serial(&recon, 50, 99);
        let prefix = unit_errors_serial(&recon, 20, 99);
        assert_eq!(&all[..20], &prefix[..]);
    }
}
