//! The baseline Laplace mechanism (Algorithm 2) for all three query types.

use apex_data::Dataset;
use apex_query::{AccuracySpec, QueryAnswer, QueryKind};
use rand::rngs::StdRng;

use crate::traits::top_k_indices;
use crate::{Laplace, MechError, MechOutput, Mechanism, PreparedQuery, Translation, EPSILON_FLOOR};

/// The vector-form Laplace mechanism `LM(W, x) = Wx + Lap(‖W‖₁/ε)^L`
/// (Definition 5.1), specialized per query type exactly as Algorithm 2:
///
/// * **WCQ** — return the noisy counts;
/// * **ICQ** — return bins whose *noisy* count exceeds `c` (a
///   post-processing step, so privacy is unchanged);
/// * **TCQ** — return the bins with the `k` largest noisy counts
///   (post-processing again; contrast with [`crate::LaplaceTopKMechanism`]
///   whose noise scale is `k/ε` instead of `‖W‖₁/ε`).
#[derive(Debug, Clone, Copy, Default)]
pub struct LaplaceMechanism;

impl LaplaceMechanism {
    /// The noise scale `b` needed for `(α, β)`-accuracy on a workload of
    /// `L` queries, per query type (Theorem 5.2 / Appendix A.1):
    ///
    /// * WCQ: `b = α / ln(1/(1 − (1−β)^{1/L}))` — two-sided per-bin tail
    ///   `e^{−α/b}`, union-bounded exactly via `1 − (1−e^{−α/b})^L ≤ β`.
    /// * ICQ: `b = α / (ln(1/(1 − (1−β)^{1/L})) − ln 2)` — the mislabeling
    ///   events are one-sided, halving the per-bin tail.
    /// * TCQ: `b = α / (2 ln(L/(2β)))` — Appendix A.1's union bound over
    ///   the two `α/2` one-sided events.
    fn required_epsilon(q: &PreparedQuery, acc: &AccuracySpec) -> Result<f64, MechError> {
        let l = q.n_queries() as f64;
        let alpha = acc.alpha();
        let beta = acc.beta();
        let sens = q.sensitivity();
        let eps = match q.kind() {
            QueryKind::Wcq => {
                let per_bin = 1.0 - (1.0 - beta).powf(1.0 / l);
                sens * (1.0 / per_bin).ln() / alpha
            }
            QueryKind::Icq { .. } => {
                let per_bin = 1.0 - (1.0 - beta).powf(1.0 / l);
                sens * ((1.0 / per_bin).ln() - std::f64::consts::LN_2) / alpha
            }
            QueryKind::Tcq { k } => {
                if k > q.n_queries() {
                    return Err(MechError::BadK {
                        k,
                        workload: q.n_queries(),
                    });
                }
                sens * 2.0 * (l / (2.0 * beta)).ln() / alpha
            }
        };
        Ok(eps.max(EPSILON_FLOOR))
    }
}

impl Mechanism for LaplaceMechanism {
    fn name(&self) -> &'static str {
        "LM"
    }

    fn supports(&self, _kind: QueryKind) -> bool {
        true
    }

    fn translate(&self, q: &PreparedQuery, acc: &AccuracySpec) -> Result<Translation, MechError> {
        Ok(Translation::exact(Self::required_epsilon(q, acc)?))
    }

    fn run(
        &self,
        q: &PreparedQuery,
        acc: &AccuracySpec,
        data: &Dataset,
        rng: &mut StdRng,
    ) -> Result<MechOutput, MechError> {
        let eps = Self::required_epsilon(q, acc)?;
        let b = q.sensitivity() / eps;
        let true_counts = q.compiled().true_answer(data);
        let noise = Laplace::new(b).sample_vec(true_counts.len(), rng);
        let noisy: Vec<f64> = true_counts.iter().zip(&noise).map(|(t, n)| t + n).collect();

        let answer = match q.kind() {
            QueryKind::Wcq => QueryAnswer::Counts(noisy),
            QueryKind::Icq { threshold } => QueryAnswer::Bins(
                noisy
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v > threshold)
                    .map(|(i, _)| i)
                    .collect(),
            ),
            QueryKind::Tcq { k } => QueryAnswer::Bins(top_k_indices(&noisy, k)),
        };
        Ok(MechOutput {
            answer,
            epsilon: eps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
    use apex_query::ExplorationQuery;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange { min: 0, max: 99 },
        )])
        .unwrap()
    }

    fn data() -> Dataset {
        let mut d = Dataset::empty(schema());
        // Counts per decade bin: bin0 = 50, bin1 = 30, bin2 = 10, rest ~0.
        for _ in 0..50 {
            d.push(vec![Value::Int(5)]).unwrap();
        }
        for _ in 0..30 {
            d.push(vec![Value::Int(15)]).unwrap();
        }
        for _ in 0..10 {
            d.push(vec![Value::Int(25)]).unwrap();
        }
        d
    }

    fn histogram(bins: usize) -> Vec<Predicate> {
        (0..bins)
            .map(|i| Predicate::range("v", (10 * i) as f64, (10 * (i + 1)) as f64))
            .collect()
    }

    fn prepare(q: &ExplorationQuery) -> PreparedQuery {
        PreparedQuery::prepare(&schema(), q).unwrap()
    }

    #[test]
    fn wcq_translate_matches_closed_form() {
        let q = prepare(&ExplorationQuery::wcq(histogram(10)));
        let acc = AccuracySpec::new(10.0, 0.05).unwrap();
        let t = LaplaceMechanism.translate(&q, &acc).unwrap();
        let per_bin: f64 = 1.0 - 0.95_f64.powf(0.1);
        let expect = (1.0 / per_bin).ln() / 10.0;
        assert!((t.upper - expect).abs() < 1e-12);
        assert_eq!(t.lower, t.upper);
    }

    #[test]
    fn icq_translate_is_cheaper_than_wcq() {
        let acc = AccuracySpec::new(10.0, 0.05).unwrap();
        let wcq = prepare(&ExplorationQuery::wcq(histogram(10)));
        let icq = prepare(&ExplorationQuery::icq(histogram(10), 20.0));
        let ew = LaplaceMechanism.translate(&wcq, &acc).unwrap().upper;
        let ei = LaplaceMechanism.translate(&icq, &acc).unwrap().upper;
        assert!(ei < ew, "one-sided ICQ must cost less: {ei} vs {ew}");
    }

    #[test]
    fn translate_scales_inversely_with_alpha() {
        let q = prepare(&ExplorationQuery::wcq(histogram(10)));
        let e1 = LaplaceMechanism
            .translate(&q, &AccuracySpec::new(5.0, 0.05).unwrap())
            .unwrap()
            .upper;
        let e2 = LaplaceMechanism
            .translate(&q, &AccuracySpec::new(10.0, 0.05).unwrap())
            .unwrap()
            .upper;
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn translate_scales_with_sensitivity() {
        // Prefix workload has sensitivity L.
        let prefix: Vec<Predicate> = (1..=10)
            .map(|i| Predicate::range("v", 0.0, (10 * i) as f64))
            .collect();
        let acc = AccuracySpec::new(10.0, 0.05).unwrap();
        let qh = prepare(&ExplorationQuery::wcq(histogram(10)));
        let qp = prepare(&ExplorationQuery::wcq(prefix));
        let eh = LaplaceMechanism.translate(&qh, &acc).unwrap().upper;
        let ep = LaplaceMechanism.translate(&qp, &acc).unwrap().upper;
        assert!((ep / eh - 10.0).abs() < 1e-9, "prefix costs L× more");
    }

    #[test]
    fn wcq_run_meets_accuracy_bound_empirically() {
        let q = prepare(&ExplorationQuery::wcq(histogram(10)));
        let acc = AccuracySpec::new(15.0, 0.1).unwrap();
        let d = data();
        let truth = q.compiled().true_answer(&d);
        let mut rng = StdRng::seed_from_u64(42);
        let runs = 400;
        let mut failures = 0;
        for _ in 0..runs {
            let out = LaplaceMechanism.run(&q, &acc, &d, &mut rng).unwrap();
            let counts = out.answer.as_counts().unwrap();
            let err = counts
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            if err >= acc.alpha() {
                failures += 1;
            }
        }
        // β = 0.1; with 400 runs the failure rate should be well below 2β.
        assert!(
            (failures as f64) < 2.0 * acc.beta() * runs as f64 + 3.0,
            "failures = {failures}"
        );
    }

    #[test]
    fn icq_run_labels_clear_bins_correctly() {
        // Threshold 20 with α = 15: bin0 (50) must be included, bins with
        // count 0 must be excluded; bin2 (10) is within [c−α, c+α] — free.
        let q = prepare(&ExplorationQuery::icq(histogram(10), 20.0));
        let acc = AccuracySpec::new(15.0, 0.05).unwrap();
        let d = data();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let out = LaplaceMechanism.run(&q, &acc, &d, &mut rng).unwrap();
            let bins = out.answer.as_bins().unwrap();
            assert!(bins.contains(&0), "bin 0 (count 50 > c+α) missing");
            for &b in bins {
                assert!(b <= 2, "bin {b} (count 0 < c−α) wrongly included");
            }
        }
    }

    #[test]
    fn tcq_run_returns_k_bins() {
        let q = prepare(&ExplorationQuery::tcq(histogram(10), 2));
        let acc = AccuracySpec::new(15.0, 0.05).unwrap();
        let d = data();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let out = LaplaceMechanism.run(&q, &acc, &d, &mut rng).unwrap();
            let bins = out.answer.as_bins().unwrap();
            assert_eq!(bins.len(), 2);
            // counts 50 and 30 vs everything ≤ 10 with α = 15: the top-2
            // must be bins 0 and 1.
            assert!(bins.contains(&0) && bins.contains(&1), "got {bins:?}");
        }
    }

    #[test]
    fn tcq_bad_k_rejected() {
        let q = prepare(&ExplorationQuery::tcq(histogram(4), 9));
        let acc = AccuracySpec::new(15.0, 0.05).unwrap();
        assert!(matches!(
            LaplaceMechanism.translate(&q, &acc),
            Err(MechError::BadK { .. })
        ));
    }

    #[test]
    fn run_charges_exactly_the_translated_epsilon() {
        let q = prepare(&ExplorationQuery::wcq(histogram(10)));
        let acc = AccuracySpec::new(10.0, 0.05).unwrap();
        let t = LaplaceMechanism.translate(&q, &acc).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let out = LaplaceMechanism.run(&q, &acc, &data(), &mut rng).unwrap();
        assert_eq!(out.epsilon, t.upper);
    }
}
