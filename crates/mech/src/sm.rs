//! The strategy-based (matrix) mechanism — Algorithm 3 — for WCQ, and its
//! ICQ adaptation via post-processing (Section 5.3.1).

use apex_data::Dataset;
use apex_linalg::{l1_operator_norm, pinv, Matrix};
use apex_query::{AccuracySpec, QueryAnswer, QueryKind, Strategy};
use rand::rngs::StdRng;

use crate::mc::{McConfig, McTranslator};
use crate::traits::unsupported;
use crate::{Laplace, MechError, MechOutput, Mechanism, PreparedQuery, Translation};

/// The strategy mechanism: answer a low-sensitivity strategy workload `A`
/// with the Laplace mechanism and reconstruct the analyst's workload as
/// `ω = (W A⁺)(A x + Lap(‖A‖₁/ε)^l)`.
///
/// `translate` has no closed form — the reconstruction error is a weighted
/// sum of Laplace variables — so the accuracy-to-privacy translation runs
/// the Monte-Carlo binary search of [`McTranslator`] (Algorithm 3's
/// `translate`/`estimateBeta`).
///
/// For ICQ (Section 5.3.1) the same mechanism is used with the noisy
/// counts thresholded locally; the one-sided accuracy requirement lets it
/// run the WCQ translation at `β_wcq = 2β`.
#[derive(Debug, Clone)]
pub struct StrategyMechanism {
    strategy: Strategy,
    mc: McConfig,
}

impl StrategyMechanism {
    /// A strategy mechanism with the paper's default `H2` hierarchy.
    pub fn h2() -> Self {
        Self::new(Strategy::H2, McConfig::default())
    }

    /// A strategy mechanism over an arbitrary strategy and MC settings.
    pub fn new(strategy: Strategy, mc: McConfig) -> Self {
        Self { strategy, mc }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Builds `A` and the reconstruction matrix `W A⁺` for a query.
    fn build_matrices(&self, q: &PreparedQuery) -> Result<(Matrix, Matrix), MechError> {
        let w = q.compiled().matrix();
        let a = self.strategy.build(w.cols())?;
        let a_pinv = pinv(&a)?;
        let recon = w.matmul(&a_pinv)?;
        Ok((a, recon))
    }

    /// The effective WCQ-level failure probability for a query kind:
    /// ICQ's one-sided errors let the two-sided WCQ bound run at `2β`.
    fn effective_beta(kind: QueryKind, beta: f64) -> Result<f64, MechError> {
        match kind {
            QueryKind::Wcq => Ok(beta),
            // Cap at the valid range; β is < 1 by construction and in
            // practice tiny (the paper uses 5e-4).
            QueryKind::Icq { .. } => Ok((2.0 * beta).min(0.999)),
            QueryKind::Tcq { .. } => Err(unsupported("SM", kind)),
        }
    }
}

impl Mechanism for StrategyMechanism {
    fn name(&self) -> &'static str {
        "SM"
    }

    fn supports(&self, kind: QueryKind) -> bool {
        matches!(kind, QueryKind::Wcq | QueryKind::Icq { .. })
    }

    fn translate(&self, q: &PreparedQuery, acc: &AccuracySpec) -> Result<Translation, MechError> {
        let beta = Self::effective_beta(q.kind(), acc.beta())?;
        let (a, recon) = self.build_matrices(q)?;
        let translator = McTranslator::new(&recon, &a, self.mc);
        let eps = translator.translate(acc.alpha(), beta);
        Ok(Translation::exact(eps))
    }

    fn run(
        &self,
        q: &PreparedQuery,
        acc: &AccuracySpec,
        data: &Dataset,
        rng: &mut StdRng,
    ) -> Result<MechOutput, MechError> {
        let beta = Self::effective_beta(q.kind(), acc.beta())?;
        let (a, recon) = self.build_matrices(q)?;
        let translator = McTranslator::new(&recon, &a, self.mc);
        let eps = translator.translate(acc.alpha(), beta);

        // ŷ = A x + Lap(‖A‖₁/ε)^l ; ω = (W A⁺) ŷ.
        let x = q.compiled().histogram(data);
        let mut y = a.matvec(&x)?;
        let b = l1_operator_norm(&a) / eps;
        let lap = Laplace::new(b);
        for v in y.iter_mut() {
            *v += lap.sample(rng);
        }
        let omega = recon.matvec(&y)?;

        let answer = match q.kind() {
            QueryKind::Wcq => QueryAnswer::Counts(omega),
            QueryKind::Icq { threshold } => QueryAnswer::Bins(
                omega
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v > threshold)
                    .map(|(i, _)| i)
                    .collect(),
            ),
            QueryKind::Tcq { .. } => return Err(unsupported("SM", q.kind())),
        };
        Ok(MechOutput { answer, epsilon: eps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
    use apex_query::ExplorationQuery;
    use crate::LaplaceMechanism;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new("v", Domain::IntRange { min: 0, max: 63 })]).unwrap()
    }

    fn data() -> Dataset {
        let mut d = Dataset::empty(schema());
        for i in 0..64 {
            for _ in 0..(64 - i) {
                d.push(vec![Value::Int(i)]).unwrap();
            }
        }
        d
    }

    fn prefix_query(l: usize) -> ExplorationQuery {
        ExplorationQuery::wcq(
            (1..=l).map(|i| Predicate::range("v", 0.0, (64 * i / l) as f64)).collect(),
        )
    }

    fn small_mc() -> McConfig {
        McConfig { samples: 2_000, ..Default::default() }
    }

    #[test]
    fn sm_beats_lm_on_prefix_workloads() {
        // The headline claim of Section 5.2: for high-sensitivity (prefix)
        // workloads the H2 strategy costs far less than plain Laplace.
        let q = PreparedQuery::prepare(&schema(), &prefix_query(32)).unwrap();
        let acc = AccuracySpec::new(40.0, 0.05).unwrap();
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let e_sm = sm.translate(&q, &acc).unwrap().upper;
        let e_lm = LaplaceMechanism.translate(&q, &acc).unwrap().upper;
        assert!(
            e_sm < e_lm / 2.0,
            "H2 should be much cheaper on prefixes: SM {e_sm} vs LM {e_lm}"
        );
    }

    #[test]
    fn lm_beats_sm_on_disjoint_histograms() {
        // Conversely (Table 2, QW1): sensitivity-1 histograms are cheapest
        // via plain Laplace; H2 pays for answering the whole tree.
        let hist: Vec<Predicate> =
            (0..16).map(|i| Predicate::range("v", (4 * i) as f64, (4 * (i + 1)) as f64)).collect();
        let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(hist)).unwrap();
        let acc = AccuracySpec::new(40.0, 0.05).unwrap();
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let e_sm = sm.translate(&q, &acc).unwrap().upper;
        let e_lm = LaplaceMechanism.translate(&q, &acc).unwrap().upper;
        assert!(e_lm < e_sm, "LM should win on histograms: LM {e_lm} vs SM {e_sm}");
    }

    #[test]
    fn wcq_run_meets_accuracy_bound_empirically() {
        let q = PreparedQuery::prepare(&schema(), &prefix_query(16)).unwrap();
        let beta = 0.1;
        let acc = AccuracySpec::new(80.0, beta).unwrap();
        let d = data();
        let truth = q.compiled().true_answer(&d);
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let mut rng = StdRng::seed_from_u64(11);
        let runs = 120;
        let mut failures = 0;
        for _ in 0..runs {
            let out = sm.run(&q, &acc, &d, &mut rng).unwrap();
            let counts = out.answer.as_counts().unwrap();
            let err = counts
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            if err >= acc.alpha() {
                failures += 1;
            }
        }
        // The translator targets a failure probability just under β, so
        // the empirical rate should hover near β — allow 2β plus noise.
        let bound = (2.0 * beta * runs as f64 + 4.0) as usize;
        assert!(failures <= bound, "failures = {failures} out of {runs} (bound {bound})");
    }

    #[test]
    fn icq_translation_is_cheaper_than_wcq() {
        let preds: Vec<Predicate> =
            (1..=16).map(|i| Predicate::range("v", 0.0, (4 * i) as f64)).collect();
        let acc = AccuracySpec::new(40.0, 0.01).unwrap();
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let wcq = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(preds.clone())).unwrap();
        let icq =
            PreparedQuery::prepare(&schema(), &ExplorationQuery::icq(preds, 100.0)).unwrap();
        let ew = sm.translate(&wcq, &acc).unwrap().upper;
        let ei = sm.translate(&icq, &acc).unwrap().upper;
        assert!(ei < ew, "ICQ runs at 2β: {ei} vs {ew}");
    }

    #[test]
    fn icq_run_returns_bins() {
        let preds: Vec<Predicate> =
            (0..8).map(|i| Predicate::range("v", (8 * i) as f64, (8 * (i + 1)) as f64)).collect();
        let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::icq(preds, 250.0)).unwrap();
        let acc = AccuracySpec::new(100.0, 0.05).unwrap();
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let mut rng = StdRng::seed_from_u64(4);
        let out = sm.run(&q, &acc, &data(), &mut rng).unwrap();
        // Bin 0 holds counts 64+63+...+57 = 484 >> 250 + α.
        assert!(out.answer.as_bins().unwrap().contains(&0));
    }

    #[test]
    fn tcq_is_unsupported() {
        let preds: Vec<Predicate> = (0..4).map(|i| Predicate::eq("v", i as i64)).collect();
        let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::tcq(preds, 2)).unwrap();
        let acc = AccuracySpec::new(10.0, 0.05).unwrap();
        let sm = StrategyMechanism::h2();
        assert!(!sm.supports(q.kind()));
        assert!(matches!(sm.translate(&q, &acc), Err(MechError::Unsupported { .. })));
    }

    #[test]
    fn identity_strategy_approximates_lm_on_histograms() {
        // With A = I the strategy mechanism *is* the Laplace mechanism up
        // to the conservativeness of the MC translation.
        let hist: Vec<Predicate> =
            (0..8).map(|i| Predicate::range("v", (8 * i) as f64, (8 * (i + 1)) as f64)).collect();
        let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(hist)).unwrap();
        let acc = AccuracySpec::new(30.0, 0.05).unwrap();
        let sm = StrategyMechanism::new(Strategy::Identity, small_mc());
        let e_sm = sm.translate(&q, &acc).unwrap().upper;
        let e_lm = LaplaceMechanism.translate(&q, &acc).unwrap().upper;
        let ratio = e_sm / e_lm;
        assert!(ratio > 0.8 && ratio < 1.3, "ratio {ratio}");
    }
}
