//! The strategy-based (matrix) mechanism — Algorithm 3 — for WCQ, and its
//! ICQ adaptation via post-processing (Section 5.3.1).

use std::sync::Arc;

use apex_data::Dataset;
use apex_linalg::{pinv, CsrMatrix, Matrix, SharedOperator};
use apex_query::{AccuracySpec, QueryAnswer, QueryKind, Strategy};
use rand::rngs::StdRng;

use crate::cache::{SmCache, SmCacheKey};
use crate::mc::{McConfig, McTranslator};
use crate::traits::unsupported;
use crate::{Laplace, MechError, MechOutput, Mechanism, PreparedQuery, Translation};

/// Which prepare pipeline builds a query's [`SmArtifacts`].
///
/// All three produce translators drawing the same per-sample noise
/// streams: the two operator paths are bit-identical to each other, and
/// the dense reference differs only in floating-point summation order
/// (≈1e-9 relative). The fastest path depends on the domain size — see
/// `apex-core`'s `OperatorSelector`, which picks per `(n, mc_samples)`
/// from bench-measured crossovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorPath {
    /// The dense reference pipeline: `O(n³)` QR pseudoinverse,
    /// materialized `W A⁺`, batched dense Monte-Carlo. Fastest only for
    /// small domains, where the cubic prepare is cheap and dense products
    /// beat the tree walk.
    Dense,
    /// Matrix-free operator with the legacy single-RHS per-sample loop.
    HierSingle,
    /// Matrix-free operator with blocked multi-RHS panels (the default).
    HierBlocked,
}

/// How the artifacts answer the strategy and reconstruct workload
/// answers.
#[derive(Debug)]
pub enum ReconBackend {
    /// The matrix-free default: `ŷ = op.apply(x)` and
    /// `ω = W · op.pinv_apply(ŷ)` (one `apply_transpose` + one
    /// `solve_normal`). No `O(n³)` pseudoinverse, no dense `W A⁺`.
    Operator(SharedOperator),
    /// The dense reference: `A` in CSR plus the materialized `W A⁺`,
    /// exactly the pre-operator pipeline. Kept for property tests and
    /// benchmarks (see
    /// [`StrategyMechanism::new_dense_reference`]).
    Dense {
        /// The strategy matrix `A` in sparse form.
        strategy: CsrMatrix,
        /// The dense reconstruction matrix `W A⁺`.
        recon: Matrix,
    },
}

/// Everything the strategy mechanism derives from a query's incidence
/// structure: the strategy's action (operator or dense reference), its
/// sensitivity, and the prepared Monte-Carlo translator.
///
/// Data-independent (only the compiled workload and the strategy go in),
/// so it is safe to reuse across queries and analysts — see
/// [`SmCache`].
#[derive(Debug)]
pub struct SmArtifacts {
    /// The compiled workload incidence `W` these artifacts were built
    /// from. Kept so cache hits can be verified against the querying
    /// workload's actual structure — the cache key carries only a 64-bit
    /// signature, and a hash collision must never hand one workload
    /// another workload's reconstruction.
    pub workload: CsrMatrix,
    /// `‖A‖₁`.
    pub strat_sensitivity: f64,
    /// The Monte-Carlo translator prepared for `W A⁺`.
    pub translator: McTranslator,
    /// Strategy answering + reconstruction backend.
    pub backend: ReconBackend,
}

impl SmArtifacts {
    /// Builds operator-backed artifacts for `workload` answered through
    /// `strategy` — the default, `O(n log n)`-prepare path.
    ///
    /// # Errors
    /// Propagates strategy-construction failures (empty domain, bad
    /// branching).
    pub fn build(
        workload: &CsrMatrix,
        strategy: Strategy,
        mc: McConfig,
    ) -> Result<Self, MechError> {
        let op = strategy.operator(workload.cols())?;
        let strat_sensitivity = op.l1_operator_norm();
        let translator = McTranslator::with_operator(workload, op.as_ref(), strat_sensitivity, mc);
        Ok(SmArtifacts {
            workload: workload.clone(),
            strat_sensitivity,
            translator,
            backend: ReconBackend::Operator(op),
        })
    }

    /// Builds the dense reference artifacts: `A` in CSR, `A⁺` via the
    /// `O(n³)` QR pseudoinverse, the materialized `W A⁺`, and the batched
    /// dense Monte-Carlo simulation — byte-for-byte the pre-operator
    /// pipeline, kept for tests and benchmarks.
    ///
    /// # Errors
    /// Propagates strategy-construction and pseudoinverse failures.
    pub fn build_dense_reference(
        workload: &CsrMatrix,
        strategy: Strategy,
        mc: McConfig,
    ) -> Result<Self, MechError> {
        let a = strategy.build_csr(workload.cols())?;
        let a_pinv = pinv(&a.to_dense())?;
        let recon = workload.matmul(&a_pinv)?;
        let strat_sensitivity = a.l1_operator_norm();
        let translator = McTranslator::with_sensitivity(&recon, strat_sensitivity, mc);
        Ok(SmArtifacts {
            workload: workload.clone(),
            strat_sensitivity,
            translator,
            backend: ReconBackend::Dense { strategy: a, recon },
        })
    }

    /// Builds artifacts through an explicit [`OperatorPath`] — the entry
    /// point of `apex-core`'s measured path selection (and of the
    /// benchmark rows that keep each path measurable in isolation).
    ///
    /// # Errors
    /// Propagates strategy-construction (and, on the dense path,
    /// pseudoinverse) failures.
    pub fn build_with_path(
        workload: &CsrMatrix,
        strategy: Strategy,
        mc: McConfig,
        path: OperatorPath,
    ) -> Result<Self, MechError> {
        match path {
            OperatorPath::Dense => Self::build_dense_reference(workload, strategy, mc),
            OperatorPath::HierBlocked => Self::build(workload, strategy, mc),
            OperatorPath::HierSingle => {
                let op = strategy.operator(workload.cols())?;
                let strat_sensitivity = op.l1_operator_norm();
                let translator = McTranslator::with_operator_single_rhs(
                    workload,
                    op.as_ref(),
                    strat_sensitivity,
                    mc,
                );
                Ok(SmArtifacts {
                    workload: workload.clone(),
                    strat_sensitivity,
                    translator,
                    backend: ReconBackend::Operator(op),
                })
            }
        }
    }

    /// Operator-backed artifacts through a cache, with the
    /// verify-on-hit collision check — the one shared implementation of
    /// this security-relevant pattern (used by [`StrategyMechanism`] and
    /// by `apex-core`'s `PreparedTranslator`).
    ///
    /// `signature` must be the workload's structural signature
    /// (`CsrMatrix::signature`; pass the precomputed
    /// `CompiledWorkload::signature` to avoid an `O(nnz)` rehash). It is
    /// a 64-bit hash and analyst workloads are adversarial input in a DP
    /// engine, so a hit is verified against the actual structure: on a
    /// collision the artifacts are rebuilt uncached rather than answering
    /// with another workload's reconstruction.
    ///
    /// # Errors
    /// Propagates build failures.
    pub fn get_or_build_cached(
        cache: &SmCache,
        workload: &CsrMatrix,
        signature: u64,
        strategy: Strategy,
        mc: McConfig,
    ) -> Result<Arc<Self>, MechError> {
        Self::get_or_build_cached_with_path(
            cache,
            workload,
            signature,
            strategy,
            mc,
            OperatorPath::HierBlocked,
            0,
        )
    }

    /// [`SmArtifacts::get_or_build_cached`] through an explicit
    /// [`OperatorPath`]. The path is part of the cache key: the two
    /// operator paths produce bit-identical translators, but the dense
    /// reference differs in low-order floating-point bits, and a path
    /// switch (e.g. a changed `APEX_OPERATOR_PATH` override) must never
    /// hand back artifacts built by a differently-rounding pipeline.
    /// `mc.sample_block` is deliberately **not** in the key — panel width
    /// cannot change results. `dataset_epoch` **is**: a mutation to the
    /// served dataset bumps its epoch, and any artifact resolved against
    /// the pre-mutation epoch must never be handed out afterwards (pass
    /// `0` for epoch-less callers such as benchmarks).
    ///
    /// # Errors
    /// Propagates build failures.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_build_cached_with_path(
        cache: &SmCache,
        workload: &CsrMatrix,
        signature: u64,
        strategy: Strategy,
        mc: McConfig,
        path: OperatorPath,
        dataset_epoch: u64,
    ) -> Result<Arc<Self>, MechError> {
        let key = SmCacheKey {
            workload_signature: signature,
            strategy,
            samples: mc.samples,
            seed: mc.seed,
            tolerance_bits: mc.tolerance.to_bits(),
            dataset_epoch,
            path,
        };
        let art =
            cache.get_or_build(key, || Self::build_with_path(workload, strategy, mc, path))?;
        if art.workload == *workload {
            Ok(art)
        } else {
            Ok(Arc::new(Self::build_with_path(
                workload, strategy, mc, path,
            )?))
        }
    }

    /// The strategy's answer `A x` on a histogram.
    ///
    /// # Errors
    /// Shape mismatches surface as [`MechError::Linalg`].
    pub fn strategy_answer(&self, x: &[f64]) -> Result<Vec<f64>, MechError> {
        match &self.backend {
            ReconBackend::Operator(op) => Ok(op.apply(x)?),
            ReconBackend::Dense { strategy, .. } => Ok(strategy.matvec(x)?),
        }
    }

    /// Reconstructs workload answers `ω = (W A⁺) ŷ` from noisy strategy
    /// answers — via `solve_normal` + `apply_transpose` on the operator
    /// path, via the materialized dense product on the reference path.
    ///
    /// # Errors
    /// Shape mismatches surface as [`MechError::Linalg`].
    pub fn reconstruct(&self, y_hat: &[f64]) -> Result<Vec<f64>, MechError> {
        match &self.backend {
            ReconBackend::Operator(op) => Ok(self.workload.matvec(&op.pinv_apply(y_hat)?)?),
            ReconBackend::Dense { recon, .. } => Ok(recon.matvec(y_hat)?),
        }
    }

    /// Number of strategy rows `m` (the noise dimension).
    pub fn strategy_rows(&self) -> usize {
        match &self.backend {
            ReconBackend::Operator(op) => op.rows(),
            ReconBackend::Dense { strategy, .. } => strategy.rows(),
        }
    }
}

/// The strategy mechanism: answer a low-sensitivity strategy workload `A`
/// with the Laplace mechanism and reconstruct the analyst's workload as
/// `ω = (W A⁺)(A x + Lap(‖A‖₁/ε)^l)`.
///
/// `translate` has no closed form — the reconstruction error is a weighted
/// sum of Laplace variables — so the accuracy-to-privacy translation runs
/// the Monte-Carlo binary search of [`McTranslator`] (Algorithm 3's
/// `translate`/`estimateBeta`).
///
/// For ICQ (Section 5.3.1) the same mechanism is used with the noisy
/// counts thresholded locally; the one-sided accuracy requirement lets it
/// run the WCQ translation at `β_wcq = 2β`.
///
/// Matrix handling: `W` stays in CSR (products scale with nonzeros), and
/// the strategy is a matrix-free [`apex_linalg::StrategyOperator`] — the
/// `O(n³)` pseudoinverse of the old pipeline is replaced by structured
/// normal-equation solves (`O(n)` per right-hand side for `H_b`), so no
/// dense `A⁺` or `W A⁺` is ever materialized. When constructed
/// [`with_cache`](StrategyMechanism::with_cache), the operator-backed
/// artifacts (operator + Monte-Carlo translator) are memoized per
/// workload-signature. The dense pipeline survives behind
/// [`new_dense_reference`](StrategyMechanism::new_dense_reference) for
/// tests and benchmarks.
#[derive(Debug, Clone)]
pub struct StrategyMechanism {
    strategy: Strategy,
    mc: McConfig,
    cache: Option<Arc<SmCache>>,
    dense_reference: bool,
    /// Epoch of the dataset this mechanism instance serves — part of the
    /// cache key, so artifacts resolved before a live mutation can never
    /// be reused after it. Zero for epoch-less construction.
    dataset_epoch: u64,
}

impl StrategyMechanism {
    /// A strategy mechanism with the paper's default `H2` hierarchy.
    pub fn h2() -> Self {
        Self::new(Strategy::H2, McConfig::default())
    }

    /// A strategy mechanism over an arbitrary strategy and MC settings.
    pub fn new(strategy: Strategy, mc: McConfig) -> Self {
        Self {
            strategy,
            mc,
            cache: None,
            dense_reference: false,
            dataset_epoch: 0,
        }
    }

    /// Like [`StrategyMechanism::new`], but artifacts (operator + MC
    /// translator) are looked up in / inserted into `cache`.
    pub fn with_cache(strategy: Strategy, mc: McConfig, cache: Arc<SmCache>) -> Self {
        Self::with_cache_at_epoch(strategy, mc, cache, 0)
    }

    /// [`StrategyMechanism::with_cache`] pinned to a dataset epoch: the
    /// epoch joins the cache key, so a lookup made after a live mutation
    /// (which bumps the epoch) can never resolve to artifacts cached
    /// before it.
    pub fn with_cache_at_epoch(
        strategy: Strategy,
        mc: McConfig,
        cache: Arc<SmCache>,
        dataset_epoch: u64,
    ) -> Self {
        Self {
            strategy,
            mc,
            cache: Some(cache),
            dense_reference: false,
            dataset_epoch,
        }
    }

    /// The dense reference pipeline (`O(n³)` QR pseudoinverse +
    /// materialized `W A⁺` + batched dense Monte-Carlo) — byte-for-byte
    /// the pre-operator behavior. For tests and benchmarks only; it is
    /// deliberately uncached so reference runs can never pollute an
    /// operator-backed cache (the two paths differ in low-order
    /// floating-point bits).
    pub fn new_dense_reference(strategy: Strategy, mc: McConfig) -> Self {
        Self {
            strategy,
            mc,
            cache: None,
            dense_reference: true,
            dataset_epoch: 0,
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Builds (or fetches) the derived artifacts for a query.
    fn artifacts(&self, q: &PreparedQuery) -> Result<Arc<SmArtifacts>, MechError> {
        match &self.cache {
            None => Ok(Arc::new(self.build_artifacts(q)?)),
            // Cached construction is always the operator path
            // (`new_dense_reference` never carries a cache).
            Some(cache) => SmArtifacts::get_or_build_cached_with_path(
                cache,
                q.compiled().csr(),
                q.compiled().signature(),
                self.strategy,
                self.mc,
                OperatorPath::HierBlocked,
                self.dataset_epoch,
            ),
        }
    }

    /// Builds the artifacts for a query: operator-backed by default, the
    /// dense reference pipeline when so constructed.
    fn build_artifacts(&self, q: &PreparedQuery) -> Result<SmArtifacts, MechError> {
        let w = q.compiled().csr();
        if self.dense_reference {
            SmArtifacts::build_dense_reference(w, self.strategy, self.mc)
        } else {
            SmArtifacts::build(w, self.strategy, self.mc)
        }
    }

    /// The effective WCQ-level failure probability for a query kind:
    /// ICQ's one-sided errors let the two-sided WCQ bound run at `2β`.
    fn effective_beta(kind: QueryKind, beta: f64) -> Result<f64, MechError> {
        match kind {
            QueryKind::Wcq => Ok(beta),
            // Cap at the valid range; β is < 1 by construction and in
            // practice tiny (the paper uses 5e-4).
            QueryKind::Icq { .. } => Ok((2.0 * beta).min(0.999)),
            QueryKind::Tcq { .. } => Err(unsupported("SM", kind)),
        }
    }
}

impl Mechanism for StrategyMechanism {
    fn name(&self) -> &'static str {
        "SM"
    }

    fn supports(&self, kind: QueryKind) -> bool {
        matches!(kind, QueryKind::Wcq | QueryKind::Icq { .. })
    }

    fn translate(&self, q: &PreparedQuery, acc: &AccuracySpec) -> Result<Translation, MechError> {
        let beta = Self::effective_beta(q.kind(), acc.beta())?;
        let art = self.artifacts(q)?;
        let eps = art.translator.translate(acc.alpha(), beta);
        Ok(Translation::exact(eps))
    }

    fn run(
        &self,
        q: &PreparedQuery,
        acc: &AccuracySpec,
        data: &Dataset,
        rng: &mut StdRng,
    ) -> Result<MechOutput, MechError> {
        let beta = Self::effective_beta(q.kind(), acc.beta())?;
        let art = self.artifacts(q)?;
        let eps = art.translator.translate(acc.alpha(), beta);

        // ŷ = A x + Lap(‖A‖₁/ε)^m ; ω = (W A⁺) ŷ — on the operator path
        // the reconstruction is solve_normal ∘ apply_transpose, never a
        // stored dense W A⁺.
        let x = q.compiled().histogram(data);
        let mut y = art.strategy_answer(&x)?;
        let b = art.strat_sensitivity / eps;
        let lap = Laplace::new(b);
        for v in y.iter_mut() {
            *v += lap.sample(rng);
        }
        let omega = art.reconstruct(&y)?;

        let answer = match q.kind() {
            QueryKind::Wcq => QueryAnswer::Counts(omega),
            QueryKind::Icq { threshold } => QueryAnswer::Bins(
                omega
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v > threshold)
                    .map(|(i, _)| i)
                    .collect(),
            ),
            QueryKind::Tcq { .. } => return Err(unsupported("SM", q.kind())),
        };
        Ok(MechOutput {
            answer,
            epsilon: eps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LaplaceMechanism;
    use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
    use apex_query::ExplorationQuery;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange { min: 0, max: 63 },
        )])
        .unwrap()
    }

    fn data() -> Dataset {
        let mut d = Dataset::empty(schema());
        for i in 0..64 {
            for _ in 0..(64 - i) {
                d.push(vec![Value::Int(i)]).unwrap();
            }
        }
        d
    }

    fn prefix_query(l: usize) -> ExplorationQuery {
        ExplorationQuery::wcq(
            (1..=l)
                .map(|i| Predicate::range("v", 0.0, (64 * i / l) as f64))
                .collect(),
        )
    }

    fn small_mc() -> McConfig {
        McConfig {
            samples: 2_000,
            ..Default::default()
        }
    }

    #[test]
    fn sm_beats_lm_on_prefix_workloads() {
        // The headline claim of Section 5.2: for high-sensitivity (prefix)
        // workloads the H2 strategy costs far less than plain Laplace.
        let q = PreparedQuery::prepare(&schema(), &prefix_query(32)).unwrap();
        let acc = AccuracySpec::new(40.0, 0.05).unwrap();
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let e_sm = sm.translate(&q, &acc).unwrap().upper;
        let e_lm = LaplaceMechanism.translate(&q, &acc).unwrap().upper;
        assert!(
            e_sm < e_lm / 2.0,
            "H2 should be much cheaper on prefixes: SM {e_sm} vs LM {e_lm}"
        );
    }

    #[test]
    fn lm_beats_sm_on_disjoint_histograms() {
        // Conversely (Table 2, QW1): sensitivity-1 histograms are cheapest
        // via plain Laplace; H2 pays for answering the whole tree.
        let hist: Vec<Predicate> = (0..16)
            .map(|i| Predicate::range("v", (4 * i) as f64, (4 * (i + 1)) as f64))
            .collect();
        let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(hist)).unwrap();
        let acc = AccuracySpec::new(40.0, 0.05).unwrap();
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let e_sm = sm.translate(&q, &acc).unwrap().upper;
        let e_lm = LaplaceMechanism.translate(&q, &acc).unwrap().upper;
        assert!(
            e_lm < e_sm,
            "LM should win on histograms: LM {e_lm} vs SM {e_sm}"
        );
    }

    #[test]
    fn wcq_run_meets_accuracy_bound_empirically() {
        let q = PreparedQuery::prepare(&schema(), &prefix_query(16)).unwrap();
        let beta = 0.1;
        let acc = AccuracySpec::new(80.0, beta).unwrap();
        let d = data();
        let truth = q.compiled().true_answer(&d);
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let mut rng = StdRng::seed_from_u64(11);
        let runs = 120;
        let mut failures = 0;
        for _ in 0..runs {
            let out = sm.run(&q, &acc, &d, &mut rng).unwrap();
            let counts = out.answer.as_counts().unwrap();
            let err = counts
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            if err >= acc.alpha() {
                failures += 1;
            }
        }
        // The translator targets a failure probability just under β, so
        // the empirical rate should hover near β — allow 2β plus noise.
        let bound = (2.0 * beta * runs as f64 + 4.0) as usize;
        assert!(
            failures <= bound,
            "failures = {failures} out of {runs} (bound {bound})"
        );
    }

    #[test]
    fn icq_translation_is_cheaper_than_wcq() {
        let preds: Vec<Predicate> = (1..=16)
            .map(|i| Predicate::range("v", 0.0, (4 * i) as f64))
            .collect();
        let acc = AccuracySpec::new(40.0, 0.01).unwrap();
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let wcq = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(preds.clone())).unwrap();
        let icq = PreparedQuery::prepare(&schema(), &ExplorationQuery::icq(preds, 100.0)).unwrap();
        let ew = sm.translate(&wcq, &acc).unwrap().upper;
        let ei = sm.translate(&icq, &acc).unwrap().upper;
        assert!(ei < ew, "ICQ runs at 2β: {ei} vs {ew}");
    }

    #[test]
    fn icq_run_returns_bins() {
        let preds: Vec<Predicate> = (0..8)
            .map(|i| Predicate::range("v", (8 * i) as f64, (8 * (i + 1)) as f64))
            .collect();
        let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::icq(preds, 250.0)).unwrap();
        let acc = AccuracySpec::new(100.0, 0.05).unwrap();
        let sm = StrategyMechanism::new(Strategy::H2, small_mc());
        let mut rng = StdRng::seed_from_u64(4);
        let out = sm.run(&q, &acc, &data(), &mut rng).unwrap();
        // Bin 0 holds counts 64+63+...+57 = 484 >> 250 + α.
        assert!(out.answer.as_bins().unwrap().contains(&0));
    }

    #[test]
    fn tcq_is_unsupported() {
        let preds: Vec<Predicate> = (0..4).map(|i| Predicate::eq("v", i as i64)).collect();
        let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::tcq(preds, 2)).unwrap();
        let acc = AccuracySpec::new(10.0, 0.05).unwrap();
        let sm = StrategyMechanism::h2();
        assert!(!sm.supports(q.kind()));
        assert!(matches!(
            sm.translate(&q, &acc),
            Err(MechError::Unsupported { .. })
        ));
    }

    #[test]
    fn cached_and_uncached_translations_are_identical() {
        // Caching must be invisible to the analyzer: same ε bit-for-bit.
        let q = PreparedQuery::prepare(&schema(), &prefix_query(16)).unwrap();
        let acc = AccuracySpec::new(40.0, 0.05).unwrap();
        let plain = StrategyMechanism::new(Strategy::H2, small_mc());
        let cache = crate::cache::SmCache::new();
        let cached = StrategyMechanism::with_cache(Strategy::H2, small_mc(), cache.clone());
        let e_plain = plain.translate(&q, &acc).unwrap();
        let e_cached_miss = cached.translate(&q, &acc).unwrap();
        let e_cached_hit = cached.translate(&q, &acc).unwrap();
        assert_eq!(e_plain, e_cached_miss);
        assert_eq!(e_plain, e_cached_hit);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cache_distinguishes_workloads_and_strategies() {
        let cache = crate::cache::SmCache::new();
        let acc = AccuracySpec::new(40.0, 0.05).unwrap();
        let q16 = PreparedQuery::prepare(&schema(), &prefix_query(16)).unwrap();
        let q8 = PreparedQuery::prepare(&schema(), &prefix_query(8)).unwrap();
        let h2 = StrategyMechanism::with_cache(Strategy::H2, small_mc(), cache.clone());
        let h4 = StrategyMechanism::with_cache(
            Strategy::Hierarchical { branching: 4 },
            small_mc(),
            cache.clone(),
        );
        h2.translate(&q16, &acc).unwrap();
        h2.translate(&q8, &acc).unwrap();
        h4.translate(&q16, &acc).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn signature_collision_is_detected_and_bypassed() {
        // Simulate a 64-bit signature collision by planting one workload's
        // artifacts under another workload's cache key: the mechanism must
        // notice the structural mismatch and rebuild instead of answering
        // with the wrong reconstruction.
        let acc = AccuracySpec::new(40.0, 0.05).unwrap();
        let q8 = PreparedQuery::prepare(&schema(), &prefix_query(8)).unwrap();
        let q16 = PreparedQuery::prepare(&schema(), &prefix_query(16)).unwrap();
        let cache = crate::cache::SmCache::new();
        let sm = StrategyMechanism::with_cache(Strategy::H2, small_mc(), cache.clone());

        // Build q8's artifacts, then plant them under q16's key.
        let poisoned_key = crate::cache::SmCacheKey {
            workload_signature: q16.compiled().signature(),
            strategy: Strategy::H2,
            samples: small_mc().samples,
            seed: small_mc().seed,
            tolerance_bits: small_mc().tolerance.to_bits(),
            dataset_epoch: 0,
            path: OperatorPath::HierBlocked,
        };
        cache
            .get_or_build(poisoned_key, || {
                SmArtifacts::build(q8.compiled().csr(), Strategy::H2, small_mc())
            })
            .unwrap();

        // The "collided" entry must not leak into q16's translation.
        let via_cache = sm.translate(&q16, &acc).unwrap();
        let fresh = StrategyMechanism::new(Strategy::H2, small_mc())
            .translate(&q16, &acc)
            .unwrap();
        assert_eq!(via_cache, fresh);
    }

    #[test]
    fn cached_run_reuses_artifacts_and_stays_accurate() {
        let q = PreparedQuery::prepare(&schema(), &prefix_query(8)).unwrap();
        let acc = AccuracySpec::new(80.0, 0.1).unwrap();
        let d = data();
        let cache = crate::cache::SmCache::new();
        let sm = StrategyMechanism::with_cache(Strategy::H2, small_mc(), cache.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let out = sm.run(&q, &acc, &d, &mut rng).unwrap();
            assert!(out.epsilon > 0.0);
        }
        // One build, nine hits (translate + run per call after the first).
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.stats().hits >= 4);
    }

    #[test]
    fn dense_reference_and_operator_paths_agree() {
        // The operator path replaces the dense pinv; its translations and
        // answers must match the reference up to floating-point summation
        // order (the two simulate the same noise streams).
        let q = PreparedQuery::prepare(&schema(), &prefix_query(16)).unwrap();
        let acc = AccuracySpec::new(40.0, 0.05).unwrap();
        let op_path = StrategyMechanism::new(Strategy::H2, small_mc());
        let dense_path = StrategyMechanism::new_dense_reference(Strategy::H2, small_mc());
        let e_op = op_path.translate(&q, &acc).unwrap().upper;
        let e_dense = dense_path.translate(&q, &acc).unwrap().upper;
        assert!(
            (e_op - e_dense).abs() <= 3.0 * small_mc().tolerance * e_dense,
            "operator ε {e_op} vs dense ε {e_dense}"
        );

        // Reconstruction on a fixed noisy strategy answer agrees tightly.
        let art_op = op_path.artifacts(&q).unwrap();
        let art_dense = dense_path.artifacts(&q).unwrap();
        assert_eq!(art_op.strategy_rows(), art_dense.strategy_rows());
        let y: Vec<f64> = (0..art_op.strategy_rows())
            .map(|i| (i as f64) * 0.7 - 3.0)
            .collect();
        let w_op = art_op.reconstruct(&y).unwrap();
        let w_dense = art_dense.reconstruct(&y).unwrap();
        for (a, b) in w_op.iter().zip(&w_dense) {
            assert!((a - b).abs() <= 1e-8 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn identity_strategy_approximates_lm_on_histograms() {
        // With A = I the strategy mechanism *is* the Laplace mechanism up
        // to the conservativeness of the MC translation.
        let hist: Vec<Predicate> = (0..8)
            .map(|i| Predicate::range("v", (8 * i) as f64, (8 * (i + 1)) as f64))
            .collect();
        let q = PreparedQuery::prepare(&schema(), &ExplorationQuery::wcq(hist)).unwrap();
        let acc = AccuracySpec::new(30.0, 0.05).unwrap();
        let sm = StrategyMechanism::new(Strategy::Identity, small_mc());
        let e_sm = sm.translate(&q, &acc).unwrap().upper;
        let e_lm = LaplaceMechanism.translate(&q, &acc).unwrap().upper;
        let ratio = e_sm / e_lm;
        assert!(ratio > 0.8 && ratio < 1.3, "ratio {ratio}");
    }
}
