//! The Laplace top-k mechanism for TCQ (Algorithm 5) — a generalized
//! report-noisy-max.

use apex_data::Dataset;
use apex_query::{AccuracySpec, QueryAnswer, QueryKind};
use rand::rngs::StdRng;

use crate::traits::{top_k_indices, unsupported};
use crate::{Laplace, MechError, MechOutput, Mechanism, PreparedQuery, Translation, EPSILON_FLOOR};

/// The Laplace top-k mechanism: perturb all counts with `Lap(k/ε)` noise,
/// release **only** the identities of the `k` largest (never the counts —
/// the report-noisy-max privacy argument, Appendix A.4, covers identities
/// only).
///
/// Its privacy cost `εᵘ = 2k·ln(L/(2β))/α` is independent of the workload
/// sensitivity `‖W‖₁`, which is why it dominates the baseline LM whenever
/// the workload has overlapping predicates (Table 2: QT2/QT4) but loses
/// on sensitivity-1 workloads with small `k` … neither dominates, so APEx
/// keeps both (Section 5.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct LaplaceTopKMechanism;

impl LaplaceTopKMechanism {
    fn required_epsilon(q: &PreparedQuery, acc: &AccuracySpec) -> Result<f64, MechError> {
        match q.kind() {
            QueryKind::Tcq { k } => {
                if k > q.n_queries() {
                    return Err(MechError::BadK {
                        k,
                        workload: q.n_queries(),
                    });
                }
                let l = q.n_queries() as f64;
                let eps = 2.0 * k as f64 * (l / (2.0 * acc.beta())).ln() / acc.alpha();
                Ok(eps.max(EPSILON_FLOOR))
            }
            other => Err(unsupported("LTM", other)),
        }
    }
}

impl Mechanism for LaplaceTopKMechanism {
    fn name(&self) -> &'static str {
        "LTM"
    }

    fn supports(&self, kind: QueryKind) -> bool {
        matches!(kind, QueryKind::Tcq { .. })
    }

    fn translate(&self, q: &PreparedQuery, acc: &AccuracySpec) -> Result<Translation, MechError> {
        Ok(Translation::exact(Self::required_epsilon(q, acc)?))
    }

    fn run(
        &self,
        q: &PreparedQuery,
        acc: &AccuracySpec,
        data: &Dataset,
        rng: &mut StdRng,
    ) -> Result<MechOutput, MechError> {
        let eps = Self::required_epsilon(q, acc)?;
        let k = match q.kind() {
            QueryKind::Tcq { k } => k,
            other => return Err(unsupported("LTM", other)),
        };
        let b = k as f64 / eps;
        let lap = Laplace::new(b);
        let noisy: Vec<f64> = q
            .compiled()
            .true_answer(data)
            .iter()
            .map(|v| v + lap.sample(rng))
            .collect();
        Ok(MechOutput {
            answer: QueryAnswer::Bins(top_k_indices(&noisy, k)),
            epsilon: eps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LaplaceMechanism;
    use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
    use apex_query::ExplorationQuery;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange { min: 0, max: 19 },
        )])
        .unwrap()
    }

    fn data() -> Dataset {
        let mut d = Dataset::empty(schema());
        // Bin i holds 50·(20−i) rows: clear separation between top bins.
        for i in 0..20_i64 {
            for _ in 0..(50 * (20 - i)) {
                d.push(vec![Value::Int(i)]).unwrap();
            }
        }
        d
    }

    fn tcq(l: usize, k: usize) -> ExplorationQuery {
        ExplorationQuery::tcq((0..l).map(|i| Predicate::eq("v", i as i64)).collect(), k)
    }

    #[test]
    fn translate_closed_form() {
        let q = PreparedQuery::prepare(&schema(), &tcq(20, 5)).unwrap();
        let acc = AccuracySpec::new(25.0, 0.0005).unwrap();
        let t = LaplaceTopKMechanism.translate(&q, &acc).unwrap();
        let expect = 2.0 * 5.0 * (20.0_f64 / 0.001).ln() / 25.0;
        assert!((t.upper - expect).abs() < 1e-12);
    }

    #[test]
    fn cost_is_linear_in_k_and_independent_of_sensitivity() {
        let acc = AccuracySpec::new(25.0, 0.0005).unwrap();
        let e1 = LaplaceTopKMechanism
            .translate(
                &PreparedQuery::prepare(&schema(), &tcq(20, 1)).unwrap(),
                &acc,
            )
            .unwrap()
            .upper;
        let e5 = LaplaceTopKMechanism
            .translate(
                &PreparedQuery::prepare(&schema(), &tcq(20, 5)).unwrap(),
                &acc,
            )
            .unwrap()
            .upper;
        assert!((e5 / e1 - 5.0).abs() < 1e-9);

        // High-sensitivity workload: overlapping prefix bins. LTM cost
        // must not change; LM cost must scale with ‖W‖₁.
        let prefix = ExplorationQuery::tcq(
            (1..=20)
                .map(|i| Predicate::range("v", 0.0, i as f64))
                .collect(),
            5,
        );
        let qp = PreparedQuery::prepare(&schema(), &prefix).unwrap();
        assert_eq!(qp.sensitivity(), 20.0);
        let e_ltm = LaplaceTopKMechanism.translate(&qp, &acc).unwrap().upper;
        assert!((e_ltm - e5).abs() < 1e-9, "LTM ignores sensitivity");
        let e_lm = LaplaceMechanism.translate(&qp, &acc).unwrap().upper;
        assert!(e_lm > e_ltm, "LM pays sensitivity on prefix TCQ");
    }

    #[test]
    fn lm_beats_ltm_for_small_k_low_sensitivity() {
        // Table 2 (QT1/QT3): on sensitivity-1 workloads with k = 10, LM's
        // 2·ln(L/2β)·‖W‖₁ beats LTM's 2k·ln(L/2β).
        let acc = AccuracySpec::new(25.0, 0.0005).unwrap();
        let q = PreparedQuery::prepare(&schema(), &tcq(20, 10)).unwrap();
        let e_lm = LaplaceMechanism.translate(&q, &acc).unwrap().upper;
        let e_ltm = LaplaceTopKMechanism.translate(&q, &acc).unwrap().upper;
        assert!(e_lm < e_ltm);
    }

    #[test]
    fn run_returns_correct_top_k_on_separated_data() {
        let q = PreparedQuery::prepare(&schema(), &tcq(20, 3)).unwrap();
        let acc = AccuracySpec::new(40.0, 0.0005).unwrap();
        let d = data();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let out = LaplaceTopKMechanism.run(&q, &acc, &d, &mut rng).unwrap();
            let bins = out.answer.as_bins().unwrap();
            assert_eq!(bins.len(), 3);
            // Separation (50/bin) ≥ ck ± α: the true top 3 must appear.
            let set: std::collections::HashSet<_> = bins.iter().collect();
            assert!(
                set.contains(&0) && set.contains(&1) && set.contains(&2),
                "{bins:?}"
            );
        }
    }

    #[test]
    fn bad_k_rejected() {
        let q = PreparedQuery::prepare(&schema(), &tcq(5, 6)).unwrap();
        let acc = AccuracySpec::new(10.0, 0.05).unwrap();
        assert!(matches!(
            LaplaceTopKMechanism.translate(&q, &acc),
            Err(MechError::BadK { .. })
        ));
    }

    #[test]
    fn non_tcq_rejected() {
        let q = PreparedQuery::prepare(
            &schema(),
            &ExplorationQuery::wcq(vec![Predicate::eq("v", 0_i64)]),
        )
        .unwrap();
        let acc = AccuracySpec::new(10.0, 0.05).unwrap();
        assert!(!LaplaceTopKMechanism.supports(q.kind()));
        assert!(LaplaceTopKMechanism.translate(&q, &acc).is_err());
    }
}
