//! The multi-poking mechanism for ICQ (Algorithm 4) — APEx's
//! data-dependent translation.
//!
//! Intuition (Example 5.4): when bin counts are far from the iceberg
//! threshold `c`, a much noisier (cheaper) answer suffices to decide the
//! labels. MPM "pokes" up to `m` times with increasing privacy cost
//! `ε_i = (i+1)·ε_max/m`; at each poke it checks which bins are already
//! decidable given the current noise bound `α_i`, and stops as soon as all
//! are. Crucially, successive pokes *refine* the same noise via the
//! gradual-release kernel ([`crate::relax_laplace`]), so the total privacy
//! loss at poke `i` is `ε_i` — not the sum.

use apex_data::Dataset;
use apex_query::{AccuracySpec, QueryAnswer, QueryKind};
use rand::rngs::StdRng;

use crate::traits::unsupported;
use crate::{Laplace, MechError, MechOutput, Mechanism, PreparedQuery, Translation, EPSILON_FLOOR};

/// Default number of pokes (the paper fixes `m = 10` in Algorithm 4).
pub const DEFAULT_POKES: usize = 10;

/// The multi-poking mechanism (ICQ only).
#[derive(Debug, Clone, Copy)]
pub struct MultiPokingMechanism {
    m: usize,
}

impl Default for MultiPokingMechanism {
    fn default() -> Self {
        Self { m: DEFAULT_POKES }
    }
}

impl MultiPokingMechanism {
    /// A multi-poking mechanism with `m` pokes.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "multi-poking requires at least one poke");
        Self { m }
    }

    /// The configured poke count `m`.
    pub fn pokes(&self) -> usize {
        self.m
    }

    /// `ε_max = ‖W‖₁ · ln(mL/(2β)) / α` (the `translate` of Algorithm 4).
    fn eps_max(&self, q: &PreparedQuery, acc: &AccuracySpec) -> f64 {
        let l = q.n_queries() as f64;
        let m = self.m as f64;
        (q.sensitivity() * (m * l / (2.0 * acc.beta())).ln() / acc.alpha()).max(EPSILON_FLOOR)
    }
}

impl Mechanism for MultiPokingMechanism {
    fn name(&self) -> &'static str {
        "MPM"
    }

    fn supports(&self, kind: QueryKind) -> bool {
        matches!(kind, QueryKind::Icq { .. })
    }

    fn translate(&self, q: &PreparedQuery, acc: &AccuracySpec) -> Result<Translation, MechError> {
        match q.kind() {
            QueryKind::Icq { .. } => {
                let upper = self.eps_max(q, acc);
                Ok(Translation {
                    lower: upper / self.m as f64,
                    upper,
                })
            }
            other => Err(unsupported("MPM", other)),
        }
    }

    fn run(
        &self,
        q: &PreparedQuery,
        acc: &AccuracySpec,
        data: &Dataset,
        rng: &mut StdRng,
    ) -> Result<MechOutput, MechError> {
        let threshold = match q.kind() {
            QueryKind::Icq { threshold } => threshold,
            other => return Err(unsupported("MPM", other)),
        };

        let sens = q.sensitivity();
        let l = q.n_queries();
        let m = self.m;
        let eps_max = self.eps_max(q, acc);
        let alpha = acc.alpha();
        let beta = acc.beta();

        // True differences W x − c (computed once; pokes only change noise).
        let diffs: Vec<f64> = q
            .compiled()
            .true_answer(data)
            .iter()
            .map(|v| v - threshold)
            .collect();

        // Poke 0 at ε₀ = ε_max / m.
        let mut eps_i = eps_max / m as f64;
        let lap0 = Laplace::new(sens / eps_i);
        let mut noise: Vec<f64> = lap0.sample_vec(l, rng);

        for _poke in 0..m.saturating_sub(1) {
            // α_i = ‖W‖₁ · ln(mL/(2β)) / ε_i — the per-poke noise bound
            // that holds simultaneously for all bins and pokes w.p. 1−β.
            let alpha_i = sens * ((m * l) as f64 / (2.0 * beta)).ln() / eps_i;

            // Decidable bins (Lines 8-9): noisy difference clears the
            // current noise bound on the positive or negative side.
            let mut all_decided = true;
            let mut positive = Vec::new();
            for (j, d) in diffs.iter().enumerate() {
                let y = d + noise[j];
                if (y - alpha_i) / alpha >= -1.0 {
                    positive.push(j);
                } else if (y + alpha_i) / alpha <= 1.0 {
                    // decided negative
                } else {
                    all_decided = false;
                    break;
                }
            }
            if all_decided {
                return Ok(MechOutput {
                    answer: QueryAnswer::Bins(positive),
                    epsilon: eps_i,
                });
            }

            // Relax: refine every bin's noise to the next privacy level.
            let eps_next = eps_i + eps_max / m as f64;
            // Work in normalized units: noise = sens · η with η ~ Lap(1/ε).
            for v in noise.iter_mut() {
                let eta = *v / sens;
                let eta2 = crate::relax_laplace(eta, eps_i, eps_next, rng);
                *v = eta2 * sens;
            }
            eps_i = eps_next;
        }

        // Final poke (Line 20): answer by the sign of the noisy difference.
        let positive: Vec<usize> = diffs
            .iter()
            .enumerate()
            .filter(|(j, d)| *d + noise[*j] > 0.0)
            .map(|(j, _)| j)
            .collect();
        Ok(MechOutput {
            answer: QueryAnswer::Bins(positive),
            epsilon: eps_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LaplaceMechanism;
    use apex_data::{Attribute, Dataset, Domain, Predicate, Schema, Value};
    use apex_query::ExplorationQuery;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange { min: 0, max: 9 },
        )])
        .unwrap()
    }

    /// Counts per value bin given explicitly.
    fn data_with_counts(counts: &[usize]) -> Dataset {
        let mut d = Dataset::empty(schema());
        for (v, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                d.push(vec![Value::Int(v as i64)]).unwrap();
            }
        }
        d
    }

    fn icq(bins: usize, c: f64) -> ExplorationQuery {
        ExplorationQuery::icq((0..bins).map(|i| Predicate::eq("v", i as i64)).collect(), c)
    }

    #[test]
    fn translate_bounds() {
        let q = PreparedQuery::prepare(&schema(), &icq(10, 50.0)).unwrap();
        let acc = AccuracySpec::new(10.0, 0.0005).unwrap();
        let mpm = MultiPokingMechanism::default();
        let t = mpm.translate(&q, &acc).unwrap();
        let expect = (10.0_f64 * 10.0 / (2.0 * 0.0005)).ln() / 10.0;
        assert!((t.upper - expect).abs() < 1e-12);
        assert!((t.lower - expect / 10.0).abs() < 1e-12);
    }

    #[test]
    fn wcq_is_unsupported() {
        let q = PreparedQuery::prepare(
            &schema(),
            &ExplorationQuery::wcq(vec![Predicate::eq("v", 0_i64)]),
        )
        .unwrap();
        let acc = AccuracySpec::new(10.0, 0.05).unwrap();
        assert!(matches!(
            MultiPokingMechanism::default().translate(&q, &acc),
            Err(MechError::Unsupported { .. })
        ));
    }

    #[test]
    fn far_counts_stop_early_and_cost_less() {
        // Counts 1000 or 0, threshold 500: every bin is miles from c, so
        // the first poke should decide and the actual cost should be far
        // below ε_max.
        let d = data_with_counts(&[1000, 1000, 0, 0, 0]);
        let q = PreparedQuery::prepare(&schema(), &icq(5, 500.0)).unwrap();
        let acc = AccuracySpec::new(10.0, 0.0005).unwrap();
        let mpm = MultiPokingMechanism::default();
        let t = mpm.translate(&q, &acc).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let out = mpm.run(&q, &acc, &d, &mut rng).unwrap();
        assert!(
            out.epsilon <= t.upper * 0.31,
            "ε {} vs εu {}",
            out.epsilon,
            t.upper
        );
        assert_eq!(out.answer.as_bins().unwrap(), &[0, 1]);
    }

    #[test]
    fn near_counts_cost_more_than_far_counts() {
        let acc = AccuracySpec::new(10.0, 0.0005).unwrap();
        let mpm = MultiPokingMechanism::default();
        let mut rng = StdRng::seed_from_u64(9);

        let far = data_with_counts(&[1000, 0, 0, 0, 0]);
        let near = data_with_counts(&[505, 495, 502, 498, 500]);
        let q = PreparedQuery::prepare(&schema(), &icq(5, 500.0)).unwrap();

        let mut far_cost = 0.0;
        let mut near_cost = 0.0;
        for _ in 0..20 {
            far_cost += mpm.run(&q, &acc, &far, &mut rng).unwrap().epsilon;
            near_cost += mpm.run(&q, &acc, &near, &mut rng).unwrap().epsilon;
        }
        assert!(
            near_cost > far_cost * 1.5,
            "near-threshold data must poke more: {near_cost} vs {far_cost}"
        );
    }

    #[test]
    fn accuracy_holds_empirically() {
        // Bins at c±3α must always be labeled correctly (β = 0.0005 means
        // essentially never wrong across 200 runs).
        let alpha = 10.0;
        let d = data_with_counts(&[530, 470, 800, 200, 500]);
        let q = PreparedQuery::prepare(&schema(), &icq(5, 500.0)).unwrap();
        let acc = AccuracySpec::new(alpha, 0.0005).unwrap();
        let mpm = MultiPokingMechanism::default();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..200 {
            let out = mpm.run(&q, &acc, &d, &mut rng).unwrap();
            let bins = out.answer.as_bins().unwrap();
            assert!(bins.contains(&0), "bin 0 (530 = c+3α) must be included");
            assert!(bins.contains(&2), "bin 2 (800) must be included");
            assert!(!bins.contains(&1), "bin 1 (470 = c−3α) must be excluded");
            assert!(!bins.contains(&3), "bin 3 (200) must be excluded");
            // Bin 4 (exactly 500 = c) may go either way.
        }
    }

    #[test]
    fn worst_case_cost_exceeds_plain_laplace() {
        // Section 5.3.2: MPM's εᵘ is above the baseline LM's fixed cost —
        // its value is the data-dependent *actual* loss.
        let q = PreparedQuery::prepare(&schema(), &icq(10, 50.0)).unwrap();
        let acc = AccuracySpec::new(10.0, 0.0005).unwrap();
        let e_lm = LaplaceMechanism.translate(&q, &acc).unwrap().upper;
        let t_mpm = MultiPokingMechanism::default().translate(&q, &acc).unwrap();
        assert!(t_mpm.upper > e_lm);
        assert!(t_mpm.lower < e_lm);
    }

    #[test]
    fn single_poke_equals_worst_case() {
        let d = data_with_counts(&[1000, 0, 0, 0, 0]);
        let q = PreparedQuery::prepare(&schema(), &icq(5, 500.0)).unwrap();
        let acc = AccuracySpec::new(10.0, 0.0005).unwrap();
        let mpm = MultiPokingMechanism::new(1);
        let mut rng = StdRng::seed_from_u64(12);
        let out = mpm.run(&q, &acc, &d, &mut rng).unwrap();
        let t = mpm.translate(&q, &acc).unwrap();
        assert_eq!(out.epsilon, t.upper);
    }
}
