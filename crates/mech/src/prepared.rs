//! Queries compiled into the matrix form mechanisms operate on.

use apex_data::Schema;
use apex_query::{CompiledWorkload, ExplorationQuery, QueryKind, WorkloadError};

/// An exploration query compiled against a schema: the workload matrix,
/// its sensitivity, and the query kind.
///
/// Preparation is data independent; mechanisms receive the sensitive
/// dataset only inside `run`.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    compiled: CompiledWorkload,
    kind: QueryKind,
}

impl PreparedQuery {
    /// Compiles `query` against `schema`.
    ///
    /// # Errors
    /// Propagates workload-compilation failures (unknown attributes,
    /// empty workloads, domain blow-up).
    pub fn prepare(schema: &Schema, query: &ExplorationQuery) -> Result<Self, WorkloadError> {
        let compiled = CompiledWorkload::compile(schema, &query.workload)?;
        Ok(Self {
            compiled,
            kind: query.kind,
        })
    }

    /// The compiled workload (matrix + partition + sensitivity).
    pub fn compiled(&self) -> &CompiledWorkload {
        &self.compiled
    }

    /// WCQ / ICQ / TCQ.
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// Workload size `L`.
    pub fn n_queries(&self) -> usize {
        self.compiled.n_queries()
    }

    /// The workload sensitivity `‖W‖₁`.
    pub fn sensitivity(&self) -> f64 {
        self.compiled.sensitivity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_data::{Attribute, Domain, Predicate};

    fn schema() -> Schema {
        Schema::new(vec![Attribute::new(
            "v",
            Domain::IntRange { min: 0, max: 9 },
        )])
        .unwrap()
    }

    #[test]
    fn prepare_histogram_query() {
        let q = ExplorationQuery::wcq(
            (0..5)
                .map(|i| Predicate::range("v", (2 * i) as f64, (2 * i + 2) as f64))
                .collect(),
        );
        let p = PreparedQuery::prepare(&schema(), &q).unwrap();
        assert_eq!(p.n_queries(), 5);
        assert_eq!(p.sensitivity(), 1.0);
        assert_eq!(p.kind(), QueryKind::Wcq);
    }

    #[test]
    fn prepare_rejects_empty_workload() {
        let q = ExplorationQuery::wcq(vec![]);
        assert!(PreparedQuery::prepare(&schema(), &q).is_err());
    }
}
