//! The `Mechanism` interface: `translate` and `run`.

use apex_data::Dataset;
use apex_linalg::LinalgError;
use apex_query::{AccuracySpec, QueryAnswer, QueryKind, StrategyError};
use rand::rngs::StdRng;

use crate::PreparedQuery;

/// The privacy-cost bounds a mechanism reports before running
/// (`M.translate` in the paper). For data-independent mechanisms
/// `lower == upper`; for ICQ-MPM the actual loss lands anywhere in the
/// interval depending on the data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Translation {
    /// Best-case privacy loss `εˡ`.
    pub lower: f64,
    /// Worst-case privacy loss `εᵘ`. Running the mechanism is always
    /// `upper`-differentially private.
    pub upper: f64,
}

impl Translation {
    /// A data-independent translation (`εˡ = εᵘ = ε`).
    pub fn exact(eps: f64) -> Self {
        Self {
            lower: eps,
            upper: eps,
        }
    }
}

/// The result of running a mechanism.
#[derive(Debug, Clone)]
pub struct MechOutput {
    /// The (noisy) answer `ω` returned to the analyst.
    pub answer: QueryAnswer,
    /// The actual privacy loss `ε` charged against the budget.
    pub epsilon: f64,
}

/// Errors surfaced by mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub enum MechError {
    /// The mechanism does not apply to this query type (e.g. running the
    /// top-k mechanism on a WCQ).
    Unsupported {
        /// Mechanism name.
        mechanism: &'static str,
        /// The query type that was requested.
        kind: &'static str,
    },
    /// Strategy construction failed.
    Strategy(StrategyError),
    /// Linear algebra failed (rank-deficient strategy, shape bug).
    Linalg(LinalgError),
    /// A TCQ's `k` exceeds the workload size.
    BadK {
        /// Requested k.
        k: usize,
        /// Workload size.
        workload: usize,
    },
}

impl From<StrategyError> for MechError {
    fn from(e: StrategyError) -> Self {
        MechError::Strategy(e)
    }
}

impl From<LinalgError> for MechError {
    fn from(e: LinalgError) -> Self {
        MechError::Linalg(e)
    }
}

impl std::fmt::Display for MechError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechError::Unsupported { mechanism, kind } => {
                write!(f, "mechanism {mechanism} does not support {kind} queries")
            }
            MechError::Strategy(e) => write!(f, "strategy error: {e}"),
            MechError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            MechError::BadK { k, workload } => {
                write!(f, "top-k parameter {k} exceeds workload size {workload}")
            }
        }
    }
}

impl std::error::Error for MechError {}

/// A differentially private mechanism in APEx's suite.
///
/// Contract (Theorems 5.2–5.6): if `translate(q, acc)` returns
/// `(εˡ, εᵘ)` then `run(q, acc, D)` satisfies `εᵘ`-differential privacy,
/// reports an actual loss `ε ∈ [εˡ, εᵘ]`, and its answer meets the
/// `(α, β)`-accuracy definition for `q`'s type on **every** dataset.
pub trait Mechanism: Send + Sync {
    /// Short name as used in the paper's Table 2 (e.g. `"LM"`, `"SM"`).
    fn name(&self) -> &'static str;

    /// Whether the mechanism applies to this query type.
    fn supports(&self, kind: QueryKind) -> bool;

    /// Accuracy-to-privacy translation.
    ///
    /// # Errors
    /// Fails for unsupported query kinds or malformed parameters.
    fn translate(&self, q: &PreparedQuery, acc: &AccuracySpec) -> Result<Translation, MechError>;

    /// Executes the mechanism against the sensitive dataset.
    ///
    /// # Errors
    /// Fails for unsupported query kinds or internal numeric errors.
    fn run(
        &self,
        q: &PreparedQuery,
        acc: &AccuracySpec,
        data: &Dataset,
        rng: &mut StdRng,
    ) -> Result<MechOutput, MechError>;
}

/// Helper shared by mechanisms: the `Unsupported` error for a kind.
pub(crate) fn unsupported(mechanism: &'static str, kind: QueryKind) -> MechError {
    MechError::Unsupported {
        mechanism,
        kind: match kind {
            QueryKind::Wcq => "WCQ",
            QueryKind::Icq { .. } => "ICQ",
            QueryKind::Tcq { .. } => "TCQ",
        },
    }
}

/// Helper shared by mechanisms: indices of the top-k values, ordered by
/// decreasing value (ties broken by lower index).
pub(crate) fn top_k_indices(values: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_exact() {
        let t = Translation::exact(0.3);
        assert_eq!(t.lower, 0.3);
        assert_eq!(t.upper, 0.3);
    }

    #[test]
    fn top_k_selects_largest() {
        let v = [3.0, 9.0, 1.0, 7.0];
        assert_eq!(top_k_indices(&v, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&v, 4), vec![1, 3, 0, 2]);
        assert_eq!(top_k_indices(&v, 0), Vec::<usize>::new());
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        let v = [5.0, 5.0, 5.0];
        assert_eq!(top_k_indices(&v, 2), vec![0, 1]);
    }

    #[test]
    fn error_display() {
        let e = MechError::BadK { k: 10, workload: 3 };
        assert!(format!("{e}").contains("exceeds workload size"));
    }
}
