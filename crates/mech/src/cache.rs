//! Shared cache of strategy-mechanism artifacts (pseudoinverse +
//! Monte-Carlo translator).
//!
//! Building the strategy mechanism's state for a query is the most
//! expensive step in the whole engine: the Moore–Penrose pseudoinverse is
//! `O(n³)` in the domain size and the Monte-Carlo translation simulates
//! thousands of reconstruction errors. Both depend **only** on the
//! workload's compiled incidence structure (not the data, not `α`/`β`),
//! so the common APEx session pattern — many exploration queries over the
//! same domain partition — recomputes identical artifacts over and over.
//!
//! [`SmCache`] memoizes them behind an [`Arc`], keyed by the workload's
//! structural [`signature`](apex_query::CompiledWorkload::signature), the
//! strategy, and the full Monte-Carlo configuration. The cached translator
//! is reused byte-for-byte, so caching cannot change any engine decision —
//! it only removes the rebuild (determinism of the analyzer is preserved
//! trivially: the cached value *is* the value that would be rebuilt).
//!
//! The engine-facing ownership lives in `apex-core` (`ApexEngine` holds
//! one cache per engine and threads it through mechanism selection); this
//! module only provides the storage, because the artifact types are
//! defined here.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use apex_query::Strategy;

use crate::sm::SmArtifacts;
use crate::MechError;

/// Cache key: everything the artifacts depend on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SmCacheKey {
    /// Structural signature of the compiled workload (shape + sparsity
    /// pattern + values — effectively the partition signature).
    pub workload_signature: u64,
    /// The strategy the mechanism answers through.
    pub strategy: Strategy,
    /// Monte-Carlo sample count `N`.
    pub samples: usize,
    /// Monte-Carlo RNG seed.
    pub seed: u64,
    /// Bit pattern of the binary-search tolerance (f64 is not `Hash`).
    pub tolerance_bits: u64,
}

/// Running hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<SmCacheKey, Arc<SmArtifacts>>,
    stats: CacheStats,
}

/// A thread-safe memo table for [`SmArtifacts`].
#[derive(Debug, Default)]
pub struct SmCache {
    inner: Mutex<Inner>,
}

impl SmCache {
    /// An empty cache behind an [`Arc`] (the shape every holder wants).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the cached artifacts for `key`, building them with `build`
    /// on a miss. The build runs outside the lock, so a slow build never
    /// blocks hits on other keys; concurrent misses on the same key may
    /// build twice, which is harmless (both builds are deterministic and
    /// identical — last insert wins).
    ///
    /// # Errors
    /// Propagates the builder's error without caching it.
    pub fn get_or_build(
        &self,
        key: SmCacheKey,
        build: impl FnOnce() -> Result<SmArtifacts, MechError>,
    ) -> Result<Arc<SmArtifacts>, MechError> {
        if let Some(hit) = {
            let mut inner = self.inner.lock().expect("no poisoning");
            let hit = inner.map.get(&key).cloned();
            if hit.is_some() {
                inner.stats.hits += 1;
            }
            hit
        } {
            return Ok(hit);
        }
        let built = Arc::new(build()?);
        let mut inner = self.inner.lock().expect("no poisoning");
        inner.stats.misses += 1;
        inner.map.insert(key, built.clone());
        Ok(built)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("no poisoning").stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("no poisoning").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("no poisoning").map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::{McConfig, McTranslator};
    use apex_linalg::{CsrMatrix, Matrix};

    fn key(sig: u64) -> SmCacheKey {
        SmCacheKey {
            workload_signature: sig,
            strategy: Strategy::H2,
            samples: 10,
            seed: 1,
            tolerance_bits: 1e-3_f64.to_bits(),
        }
    }

    fn artifacts() -> SmArtifacts {
        let i = Matrix::identity(2);
        SmArtifacts {
            workload: CsrMatrix::identity(2),
            strategy: CsrMatrix::identity(2),
            strat_sensitivity: 1.0,
            recon: i.clone(),
            translator: McTranslator::with_sensitivity(
                &i,
                1.0,
                McConfig {
                    samples: 10,
                    ..Default::default()
                },
            ),
        }
    }

    #[test]
    fn hit_returns_same_arc() {
        let cache = SmCache::new();
        let a = cache.get_or_build(key(7), || Ok(artifacts())).unwrap();
        let b = cache
            .get_or_build(key(7), || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_separately() {
        let cache = SmCache::new();
        cache.get_or_build(key(1), || Ok(artifacts())).unwrap();
        cache.get_or_build(key(2), || Ok(artifacts())).unwrap();
        let mut k = key(1);
        k.samples = 11;
        cache.get_or_build(k, || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SmCache::new();
        let err = cache.get_or_build(key(9), || Err(MechError::BadK { k: 1, workload: 0 }));
        assert!(err.is_err());
        assert_eq!(cache.len(), 0);
        // A later successful build for the same key works.
        cache.get_or_build(key(9), || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_empties_the_map() {
        let cache = SmCache::new();
        cache.get_or_build(key(3), || Ok(artifacts())).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
