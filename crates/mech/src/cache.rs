//! Shared, capacity-bounded cache of strategy-mechanism artifacts
//! (strategy operator + Monte-Carlo translator).
//!
//! Building the strategy mechanism's state for a query used to be the most
//! expensive step in the whole engine — an `O(n³)` pseudoinverse. The
//! operator refactor cut the build to `O(n log n)`, but the Monte-Carlo
//! simulation still costs thousands of solves, and both depend **only** on
//! the workload's compiled incidence structure (not the data, not
//! `α`/`β`), so the common APEx session pattern — many exploration queries
//! over the same domain partition — would recompute identical artifacts
//! over and over.
//!
//! [`SmCache`] memoizes them behind an [`Arc`], keyed by the workload's
//! structural [`signature`](apex_query::CompiledWorkload::signature), the
//! strategy, and the full Monte-Carlo configuration. The cached translator
//! is reused byte-for-byte, so caching cannot change any engine decision —
//! it only removes the rebuild (determinism of the analyzer is preserved
//! trivially: the cached value *is* the value that would be rebuilt).
//!
//! The cache is **capacity-bounded** (least-recently-used eviction,
//! default [`SmCache::DEFAULT_CAPACITY`] entries) so a multi-tenant
//! deployment can share one cache across engines without unbounded memory
//! growth: operator-backed artifacts are small (`O(n log n)`), but
//! adversarial analysts could still submit unboundedly many distinct
//! workloads. Evictions only ever cost a rebuild, never correctness —
//! [`CacheStats::evictions`] counts them.
//!
//! The engine-facing ownership lives in `apex-core` (`ApexEngine` holds a
//! cache handle and threads it through mechanism selection; handles can be
//! shared across engines); this module only provides the storage, because
//! the artifact types are defined here.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use apex_query::Strategy;

use crate::sm::{OperatorPath, SmArtifacts};
use crate::MechError;

/// Cache key: everything the artifacts depend on.
///
/// `McConfig::sample_block` is deliberately absent — panel width is a pure
/// performance knob that never changes results, so blocking must not
/// fragment the cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SmCacheKey {
    /// Structural signature of the compiled workload (shape + sparsity
    /// pattern + values — effectively the partition signature).
    pub workload_signature: u64,
    /// The strategy the mechanism answers through.
    pub strategy: Strategy,
    /// Monte-Carlo sample count `N`.
    pub samples: usize,
    /// Monte-Carlo RNG seed.
    pub seed: u64,
    /// Bit pattern of the binary-search tolerance (f64 is not `Hash`).
    pub tolerance_bits: u64,
    /// Epoch of the dataset the querying engine was serving when the
    /// artifacts were requested. The artifacts themselves are
    /// data-independent, but live mutations can grow the domain and
    /// recompile the workload; keying by epoch guarantees that **no
    /// artifact resolved before a mutation is ever handed out after
    /// it** — a post-mutation lookup is a provable cache miss (the
    /// epoch-staleness tests assert this through the miss counters).
    pub dataset_epoch: u64,
    /// Which prepare pipeline built the artifacts. The operator paths are
    /// bit-identical to each other but the dense reference rounds
    /// differently, so artifacts from different paths must never alias.
    pub path: OperatorPath,
}

/// Running hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries evicted to keep the cache within its capacity.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<SmArtifacts>,
    /// Logical access time (monotone tick), for LRU eviction.
    last_used: u64,
}

/// The storage every scope of one cache shares: the entry map plus the
/// *global* counters aggregated over all scopes.
#[derive(Debug, Default)]
struct Store {
    map: HashMap<SmCacheKey, Entry>,
    stats: CacheStats,
    tick: u64,
}

impl Store {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts least-recently-used entries until at most `capacity` remain;
    /// returns how many were evicted (counted by the caller into both the
    /// global and the acting scope's counters).
    fn enforce_capacity(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() > capacity {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&victim);
            evicted += 1;
        }
        self.stats.evictions += evicted;
        evicted
    }
}

/// A thread-safe, LRU-bounded memo table for [`SmArtifacts`].
///
/// An `SmCache` value is a **scope** onto shared storage: cloning the
/// `Arc` handle shares both storage and counters, while
/// [`SmCache::scoped`] creates a new handle that shares the storage (and
/// its capacity bound) but owns fresh hit/miss/eviction counters. A
/// multi-tenant deployment gives each tenant engine its own scope of one
/// shared cache, so `/stats`-style endpoints can report per-tenant
/// counters ([`SmCache::local_stats`]) next to the global aggregate
/// ([`SmCache::stats`]).
#[derive(Debug)]
pub struct SmCache {
    store: Arc<Mutex<Store>>,
    capacity: usize,
    /// This scope's counters (for the root scope of a cache these track
    /// exactly the lookups made through it, not other scopes').
    local: Mutex<CacheStats>,
}

impl Default for SmCache {
    fn default() -> Self {
        Self {
            store: Arc::new(Mutex::new(Store::default())),
            capacity: Self::DEFAULT_CAPACITY,
            local: Mutex::new(CacheStats::default()),
        }
    }
}

impl SmCache {
    /// Default entry cap: generous for single-engine sessions (an analyst
    /// rarely touches more than a handful of domain partitions) while
    /// bounding a shared multi-tenant cache to a few hundred `O(n log n)`
    /// artifact bundles.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// An empty cache behind an [`Arc`] (the shape every holder wants),
    /// with the default capacity.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// An empty cache bounded to `capacity` entries (clamped to ≥ 1 — a
    /// zero-capacity cache would silently disable memoization, which is
    /// never what a caller configuring a cache wants).
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            store: Arc::new(Mutex::new(Store::default())),
            capacity: capacity.max(1),
            local: Mutex::new(CacheStats::default()),
        })
    }

    /// A new scope onto the same storage: entries, capacity bound, and
    /// global counters are shared; hit/miss/eviction counters local to the
    /// new handle start at zero. This is how a multi-tenant service gives
    /// each tenant its own attribution window over one shared cache.
    pub fn scoped(&self) -> Arc<Self> {
        Arc::new(Self {
            store: self.store.clone(),
            capacity: self.capacity,
            local: Mutex::new(CacheStats::default()),
        })
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the cached artifacts for `key`, building them with `build`
    /// on a miss. The build runs outside the lock, so a slow build never
    /// blocks hits on other keys; concurrent misses on the same key may
    /// build twice, which is harmless (both builds are deterministic and
    /// identical — last insert wins). Inserting beyond capacity evicts the
    /// least-recently-used entries.
    ///
    /// # Errors
    /// Propagates the builder's error without caching it.
    pub fn get_or_build(
        &self,
        key: SmCacheKey,
        build: impl FnOnce() -> Result<SmArtifacts, MechError>,
    ) -> Result<Arc<SmArtifacts>, MechError> {
        if let Some(hit) = {
            let mut store = self.store.lock().expect("no poisoning");
            let tick = store.touch();
            let hit = store.map.get_mut(&key).map(|e| {
                e.last_used = tick;
                e.value.clone()
            });
            if hit.is_some() {
                store.stats.hits += 1;
            }
            hit
        } {
            self.local.lock().expect("no poisoning").hits += 1;
            return Ok(hit);
        }
        let built = Arc::new(build()?);
        let evicted = {
            let mut store = self.store.lock().expect("no poisoning");
            store.stats.misses += 1;
            let tick = store.touch();
            store.map.insert(
                key,
                Entry {
                    value: built.clone(),
                    last_used: tick,
                },
            );
            store.enforce_capacity(self.capacity)
        };
        let mut local = self.local.lock().expect("no poisoning");
        local.misses += 1;
        local.evictions += evicted;
        Ok(built)
    }

    /// Current hit/miss/eviction counters, aggregated over every scope of
    /// this cache's storage.
    pub fn stats(&self) -> CacheStats {
        self.store.lock().expect("no poisoning").stats
    }

    /// The counters attributable to lookups made through *this* handle
    /// (see [`SmCache::scoped`]); evictions count against the scope whose
    /// insert triggered them.
    pub fn local_stats(&self) -> CacheStats {
        *self.local.lock().expect("no poisoning")
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.store.lock().expect("no poisoning").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (counters are kept; clearing is not an
    /// eviction).
    pub fn clear(&self) {
        self.store.lock().expect("no poisoning").map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::McConfig;
    use apex_linalg::CsrMatrix;

    fn key(sig: u64) -> SmCacheKey {
        SmCacheKey {
            workload_signature: sig,
            strategy: Strategy::H2,
            samples: 10,
            seed: 1,
            tolerance_bits: 1e-3_f64.to_bits(),
            dataset_epoch: 0,
            path: OperatorPath::HierBlocked,
        }
    }

    fn artifacts() -> SmArtifacts {
        SmArtifacts::build(
            &CsrMatrix::identity(2),
            Strategy::H2,
            McConfig {
                samples: 10,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn scopes_share_storage_but_own_their_counters() {
        let root = SmCache::with_capacity(2);
        let scope = root.scoped();
        // Build through the root, hit through the scope: one shared entry.
        let a = root.get_or_build(key(1), || Ok(artifacts())).unwrap();
        let b = scope
            .get_or_build(key(1), || panic!("must not rebuild across scopes"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(root.len(), 1);
        assert_eq!(scope.len(), 1);
        // Global counters aggregate both scopes; local counters split.
        let global = CacheStats {
            hits: 1,
            misses: 1,
            evictions: 0,
        };
        assert_eq!(root.stats(), global);
        assert_eq!(scope.stats(), global);
        assert_eq!(root.local_stats().misses, 1);
        assert_eq!(root.local_stats().hits, 0);
        assert_eq!(scope.local_stats().hits, 1);
        assert_eq!(scope.local_stats().misses, 0);
        // Evictions count against the scope whose insert triggered them.
        scope.get_or_build(key(2), || Ok(artifacts())).unwrap();
        scope.get_or_build(key(3), || Ok(artifacts())).unwrap();
        assert_eq!(scope.local_stats().evictions, 1);
        assert_eq!(root.local_stats().evictions, 0);
        assert_eq!(root.stats().evictions, 1);
    }

    #[test]
    fn hit_returns_same_arc() {
        let cache = SmCache::new();
        let a = cache.get_or_build(key(7), || Ok(artifacts())).unwrap();
        let b = cache
            .get_or_build(key(7), || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_separately() {
        let cache = SmCache::new();
        cache.get_or_build(key(1), || Ok(artifacts())).unwrap();
        cache.get_or_build(key(2), || Ok(artifacts())).unwrap();
        let mut k = key(1);
        k.samples = 11;
        cache.get_or_build(k, || Ok(artifacts())).unwrap();
        // A dataset mutation bumps the epoch: same workload, same config,
        // but the post-mutation key must miss (never reuse a pre-mutation
        // resolution).
        let mut stale = key(1);
        stale.dataset_epoch = 3;
        cache.get_or_build(stale, || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SmCache::new();
        let err = cache.get_or_build(key(9), || Err(MechError::BadK { k: 1, workload: 0 }));
        assert!(err.is_err());
        assert_eq!(cache.len(), 0);
        // A later successful build for the same key works.
        cache.get_or_build(key(9), || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_empties_the_map() {
        let cache = SmCache::new();
        cache.get_or_build(key(3), || Ok(artifacts())).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = SmCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        cache.get_or_build(key(1), || Ok(artifacts())).unwrap();
        cache.get_or_build(key(2), || Ok(artifacts())).unwrap();
        // Touch key 1 so key 2 becomes the LRU victim.
        cache.get_or_build(key(1), || panic!("cached")).unwrap();
        cache.get_or_build(key(3), || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Key 1 survived (recently used), key 2 was evicted.
        cache.get_or_build(key(1), || panic!("cached")).unwrap();
        let mut rebuilt = false;
        cache
            .get_or_build(key(2), || {
                rebuilt = true;
                Ok(artifacts())
            })
            .unwrap();
        assert!(rebuilt, "LRU entry must have been evicted");
        // Inserting key 2 evicted the new LRU (key 3).
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = SmCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.get_or_build(key(1), || Ok(artifacts())).unwrap();
        cache.get_or_build(key(2), || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn shared_across_threads() {
        let cache = SmCache::with_capacity(8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..6 {
                        cache
                            .get_or_build(key(i % 3 + t % 2), || Ok(artifacts()))
                            .unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 24);
        assert!(cache.len() <= 4);
    }
}
