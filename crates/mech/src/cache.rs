//! Shared, capacity-bounded cache of strategy-mechanism artifacts
//! (strategy operator + Monte-Carlo translator).
//!
//! Building the strategy mechanism's state for a query used to be the most
//! expensive step in the whole engine — an `O(n³)` pseudoinverse. The
//! operator refactor cut the build to `O(n log n)`, but the Monte-Carlo
//! simulation still costs thousands of solves, and both depend **only** on
//! the workload's compiled incidence structure (not the data, not
//! `α`/`β`), so the common APEx session pattern — many exploration queries
//! over the same domain partition — would recompute identical artifacts
//! over and over.
//!
//! [`SmCache`] memoizes them behind an [`Arc`], keyed by the workload's
//! structural [`signature`](apex_query::CompiledWorkload::signature), the
//! strategy, and the full Monte-Carlo configuration. The cached translator
//! is reused byte-for-byte, so caching cannot change any engine decision —
//! it only removes the rebuild (determinism of the analyzer is preserved
//! trivially: the cached value *is* the value that would be rebuilt).
//!
//! The cache is **capacity-bounded** (least-recently-used eviction,
//! default [`SmCache::DEFAULT_CAPACITY`] entries) so a multi-tenant
//! deployment can share one cache across engines without unbounded memory
//! growth: operator-backed artifacts are small (`O(n log n)`), but
//! adversarial analysts could still submit unboundedly many distinct
//! workloads. Evictions only ever cost a rebuild, never correctness —
//! [`CacheStats::evictions`] counts them.
//!
//! The engine-facing ownership lives in `apex-core` (`ApexEngine` holds a
//! cache handle and threads it through mechanism selection; handles can be
//! shared across engines); this module only provides the storage, because
//! the artifact types are defined here.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use apex_query::Strategy;

use crate::sm::SmArtifacts;
use crate::MechError;

/// Cache key: everything the artifacts depend on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SmCacheKey {
    /// Structural signature of the compiled workload (shape + sparsity
    /// pattern + values — effectively the partition signature).
    pub workload_signature: u64,
    /// The strategy the mechanism answers through.
    pub strategy: Strategy,
    /// Monte-Carlo sample count `N`.
    pub samples: usize,
    /// Monte-Carlo RNG seed.
    pub seed: u64,
    /// Bit pattern of the binary-search tolerance (f64 is not `Hash`).
    pub tolerance_bits: u64,
}

/// Running hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries evicted to keep the cache within its capacity.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<SmArtifacts>,
    /// Logical access time (monotone tick), for LRU eviction.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<SmCacheKey, Entry>,
    stats: CacheStats,
    tick: u64,
}

impl Inner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts least-recently-used entries until at most `capacity` remain.
    fn enforce_capacity(&mut self, capacity: usize) {
        while self.map.len() > capacity {
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
    }
}

/// A thread-safe, LRU-bounded memo table for [`SmArtifacts`].
#[derive(Debug)]
pub struct SmCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for SmCache {
    fn default() -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity: Self::DEFAULT_CAPACITY,
        }
    }
}

impl SmCache {
    /// Default entry cap: generous for single-engine sessions (an analyst
    /// rarely touches more than a handful of domain partitions) while
    /// bounding a shared multi-tenant cache to a few hundred `O(n log n)`
    /// artifact bundles.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// An empty cache behind an [`Arc`] (the shape every holder wants),
    /// with the default capacity.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// An empty cache bounded to `capacity` entries (clamped to ≥ 1 — a
    /// zero-capacity cache would silently disable memoization, which is
    /// never what a caller configuring a cache wants).
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        })
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the cached artifacts for `key`, building them with `build`
    /// on a miss. The build runs outside the lock, so a slow build never
    /// blocks hits on other keys; concurrent misses on the same key may
    /// build twice, which is harmless (both builds are deterministic and
    /// identical — last insert wins). Inserting beyond capacity evicts the
    /// least-recently-used entries.
    ///
    /// # Errors
    /// Propagates the builder's error without caching it.
    pub fn get_or_build(
        &self,
        key: SmCacheKey,
        build: impl FnOnce() -> Result<SmArtifacts, MechError>,
    ) -> Result<Arc<SmArtifacts>, MechError> {
        if let Some(hit) = {
            let mut inner = self.inner.lock().expect("no poisoning");
            let tick = inner.touch();
            let hit = inner.map.get_mut(&key).map(|e| {
                e.last_used = tick;
                e.value.clone()
            });
            if hit.is_some() {
                inner.stats.hits += 1;
            }
            hit
        } {
            return Ok(hit);
        }
        let built = Arc::new(build()?);
        let mut inner = self.inner.lock().expect("no poisoning");
        inner.stats.misses += 1;
        let tick = inner.touch();
        inner.map.insert(
            key,
            Entry {
                value: built.clone(),
                last_used: tick,
            },
        );
        inner.enforce_capacity(self.capacity);
        Ok(built)
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("no poisoning").stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("no poisoning").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (counters are kept; clearing is not an
    /// eviction).
    pub fn clear(&self) {
        self.inner.lock().expect("no poisoning").map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::McConfig;
    use apex_linalg::CsrMatrix;

    fn key(sig: u64) -> SmCacheKey {
        SmCacheKey {
            workload_signature: sig,
            strategy: Strategy::H2,
            samples: 10,
            seed: 1,
            tolerance_bits: 1e-3_f64.to_bits(),
        }
    }

    fn artifacts() -> SmArtifacts {
        SmArtifacts::build(
            &CsrMatrix::identity(2),
            Strategy::H2,
            McConfig {
                samples: 10,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn hit_returns_same_arc() {
        let cache = SmCache::new();
        let a = cache.get_or_build(key(7), || Ok(artifacts())).unwrap();
        let b = cache
            .get_or_build(key(7), || panic!("must not rebuild"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_separately() {
        let cache = SmCache::new();
        cache.get_or_build(key(1), || Ok(artifacts())).unwrap();
        cache.get_or_build(key(2), || Ok(artifacts())).unwrap();
        let mut k = key(1);
        k.samples = 11;
        cache.get_or_build(k, || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = SmCache::new();
        let err = cache.get_or_build(key(9), || Err(MechError::BadK { k: 1, workload: 0 }));
        assert!(err.is_err());
        assert_eq!(cache.len(), 0);
        // A later successful build for the same key works.
        cache.get_or_build(key(9), || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_empties_the_map() {
        let cache = SmCache::new();
        cache.get_or_build(key(3), || Ok(artifacts())).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = SmCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        cache.get_or_build(key(1), || Ok(artifacts())).unwrap();
        cache.get_or_build(key(2), || Ok(artifacts())).unwrap();
        // Touch key 1 so key 2 becomes the LRU victim.
        cache.get_or_build(key(1), || panic!("cached")).unwrap();
        cache.get_or_build(key(3), || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Key 1 survived (recently used), key 2 was evicted.
        cache.get_or_build(key(1), || panic!("cached")).unwrap();
        let mut rebuilt = false;
        cache
            .get_or_build(key(2), || {
                rebuilt = true;
                Ok(artifacts())
            })
            .unwrap();
        assert!(rebuilt, "LRU entry must have been evicted");
        // Inserting key 2 evicted the new LRU (key 3).
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = SmCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.get_or_build(key(1), || Ok(artifacts())).unwrap();
        cache.get_or_build(key(2), || Ok(artifacts())).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn shared_across_threads() {
        let cache = SmCache::with_capacity(8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..6 {
                        cache
                            .get_or_build(key(i % 3 + t % 2), || Ok(artifacts()))
                            .unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 24);
        assert!(cache.len() <= 4);
    }
}
