//! The APEx differentially private mechanism suite (Section 5).
//!
//! Every mechanism exposes two functions, mirroring the paper's interface:
//!
//! * `translate(q, α, β) → (εˡ, εᵘ)` — the privacy cost bounds if the
//!   mechanism were run with the given accuracy requirement;
//! * `run(q, α, β, D) → (ω, ε)` — execute, returning the answer and the
//!   *actual* privacy loss (which for data-dependent mechanisms may be
//!   below `εᵘ`).
//!
//! Implemented mechanisms:
//!
//! | type | mechanisms |
//! |------|------------|
//! | WCQ  | [`LaplaceMechanism`] (Alg. 2), [`StrategyMechanism`] (Alg. 3) |
//! | ICQ  | [`LaplaceMechanism`], [`StrategyMechanism`] (§5.3.1), [`MultiPokingMechanism`] (Alg. 4) |
//! | TCQ  | [`LaplaceMechanism`], [`LaplaceTopKMechanism`] (Alg. 5) |
//!
//! plus the building blocks: a from-scratch [`laplace`] sampler, the
//! gradual-release noise kernel [`relax`] (Koufogiannis et al. [22]), and
//! the Monte-Carlo accuracy-to-privacy translator [`mc`] used by the
//! strategy mechanism.

pub mod cache;
pub mod laplace;
pub mod lm;
pub mod ltm;
pub mod mc;
pub mod mpm;
pub mod prepared;
pub mod registry;
pub mod relax;
pub mod sm;
pub mod traits;

pub use cache::{CacheStats, SmCache, SmCacheKey};
pub use laplace::Laplace;
pub use lm::LaplaceMechanism;
pub use ltm::LaplaceTopKMechanism;
pub use mpm::MultiPokingMechanism;
pub use prepared::PreparedQuery;
pub use registry::{mechanisms_for, mechanisms_for_cached, mechanisms_for_cached_at_epoch};
pub use relax::relax_laplace;
pub use sm::{OperatorPath, ReconBackend, SmArtifacts, StrategyMechanism};
pub use traits::{MechError, MechOutput, Mechanism, Translation};

/// Numerical floor for translated privacy costs: extremely loose accuracy
/// requirements can push the closed forms to zero or below, meaning the
/// bound is achievable at negligible privacy cost.
pub const EPSILON_FLOOR: f64 = 1e-12;
