//! Recursive-descent parser producing [`ExplorationQuery`] +
//! [`AccuracySpec`] from the concrete syntax.

use apex_data::{CmpOp, Predicate, Value};

use super::lexer::{lex, LexError, Token};
use crate::{AccuracyError, AccuracySpec, ExplorationQuery, QueryKind};

/// A fully parsed query statement.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The exploration query (workload + kind).
    pub query: ExplorationQuery,
    /// The accuracy requirement, when the statement carries an
    /// `ERROR … CONFIDENCE …` clause.
    pub accuracy: Option<AccuracySpec>,
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (with index into the token stream).
    Unexpected {
        /// Index of the offending token.
        at: usize,
        /// Description of what was found.
        found: String,
        /// Description of what the parser expected.
        expected: &'static str,
    },
    /// Input ended too early.
    UnexpectedEnd {
        /// What the parser expected next.
        expected: &'static str,
    },
    /// The accuracy clause carried invalid numbers.
    Accuracy(AccuracyError),
    /// `LIMIT k` with a non-positive or non-integral `k`.
    BadLimit(f64),
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

impl From<AccuracyError> for ParseError {
    fn from(e: AccuracyError) -> Self {
        ParseError::Accuracy(e)
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                at,
                found,
                expected,
            } => {
                write!(
                    f,
                    "unexpected token {found} at position {at}, expected {expected}"
                )
            }
            ParseError::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseError::Accuracy(e) => write!(f, "invalid accuracy clause: {e}"),
            ParseError::BadLimit(k) => write!(f, "LIMIT must be a positive integer, got {k}"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, expected: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t == want => Ok(()),
            Some(t) => Err(ParseError::Unexpected {
                at: self.pos - 1,
                found: format!("{t:?}"),
                expected,
            }),
            None => Err(ParseError::UnexpectedEnd { expected }),
        }
    }

    fn expect_number(&mut self, expected: &'static str) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token::Number(v)) => Ok(v),
            Some(t) => Err(ParseError::Unexpected {
                at: self.pos - 1,
                found: format!("{t:?}"),
                expected,
            }),
            None => Err(ParseError::UnexpectedEnd { expected }),
        }
    }

    fn expect_ident(&mut self, expected: &'static str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(ParseError::Unexpected {
                at: self.pos - 1,
                found: format!("{t:?}"),
                expected,
            }),
            None => Err(ParseError::UnexpectedEnd { expected }),
        }
    }

    /// `COUNT ( * )`
    fn expect_count_star(&mut self) -> Result<(), ParseError> {
        self.expect(&Token::Count, "COUNT")?;
        self.expect(&Token::LParen, "(")?;
        self.expect(&Token::Star, "*")?;
        self.expect(&Token::RParen, ")")
    }

    /// Full statement.
    fn statement(&mut self) -> Result<ParsedQuery, ParseError> {
        self.expect(&Token::Bin, "BIN")?;
        // The table designator ("D" in the paper) is a bare identifier.
        let _table = self.expect_ident("table name")?;
        self.expect(&Token::On, "ON")?;
        self.expect_count_star()?;
        self.expect(&Token::Where, "WHERE")?;
        // `W = { ... }` — the `W =` prefix is optional syntax sugar.
        if matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case("w")) {
            self.next();
            self.expect(&Token::Eq, "=")?;
        }
        self.expect(&Token::LBrace, "{")?;
        let mut workload = vec![self.predicate()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.next();
            workload.push(self.predicate()?);
        }
        self.expect(&Token::RBrace, "}")?;

        // Optional HAVING.
        let mut kind = QueryKind::Wcq;
        if matches!(self.peek(), Some(Token::Having)) {
            self.next();
            self.expect_count_star()?;
            self.expect(&Token::Gt, ">")?;
            let c = self.expect_number("threshold")?;
            kind = QueryKind::Icq { threshold: c };
        }

        // Optional ORDER BY ... LIMIT.
        if matches!(self.peek(), Some(Token::Order)) {
            self.next();
            self.expect(&Token::By, "BY")?;
            self.expect_count_star()?;
            if matches!(self.peek(), Some(Token::Desc)) {
                self.next();
            }
            self.expect(&Token::Limit, "LIMIT")?;
            let k = self.expect_number("limit")?;
            if k < 1.0 || k.fract() != 0.0 {
                return Err(ParseError::BadLimit(k));
            }
            kind = QueryKind::Tcq { k: k as usize };
        }

        // Optional ERROR α CONFIDENCE 1-β.
        let accuracy = if matches!(self.peek(), Some(Token::ErrorKw)) {
            self.next();
            let alpha = self.expect_number("alpha")?;
            self.expect(&Token::Confidence, "CONFIDENCE")?;
            let conf = self.expect_number("confidence")?;
            Some(AccuracySpec::new(alpha, 1.0 - conf)?)
        } else {
            None
        };

        // Optional trailing semicolon, then end of input.
        if matches!(self.peek(), Some(Token::Semicolon)) {
            self.next();
        }
        if let Some(t) = self.peek() {
            return Err(ParseError::Unexpected {
                at: self.pos,
                found: format!("{t:?}"),
                expected: "end of statement",
            });
        }

        Ok(ParsedQuery {
            query: ExplorationQuery { workload, kind },
            accuracy,
        })
    }

    /// Predicate grammar (precedence: NOT > AND > OR).
    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.and_expr()?;
        while matches!(self.peek(), Some(Token::Or)) {
            self.next();
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.unary_expr()?;
        while matches!(self.peek(), Some(Token::And)) {
            self.next();
            let right = self.unary_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Predicate, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.next();
                Ok(self.unary_expr()?.not())
            }
            Some(Token::LParen) => {
                self.next();
                let inner = self.or_expr()?;
                self.expect(&Token::RParen, ")")?;
                Ok(inner)
            }
            Some(Token::True) => {
                self.next();
                Ok(Predicate::True)
            }
            _ => self.atom(),
        }
    }

    /// `attr op literal | attr IN [lo, hi) | attr IS [NOT] NULL`
    fn atom(&mut self) -> Result<Predicate, ParseError> {
        let attr = self.expect_ident("attribute name")?;
        match self.next() {
            Some(Token::Eq) => Ok(Predicate::Cmp {
                attr,
                op: CmpOp::Eq,
                value: self.literal()?,
            }),
            Some(Token::Ne) => Ok(Predicate::Cmp {
                attr,
                op: CmpOp::Ne,
                value: self.literal()?,
            }),
            Some(Token::Lt) => Ok(Predicate::Cmp {
                attr,
                op: CmpOp::Lt,
                value: self.literal()?,
            }),
            Some(Token::Le) => Ok(Predicate::Cmp {
                attr,
                op: CmpOp::Le,
                value: self.literal()?,
            }),
            Some(Token::Gt) => Ok(Predicate::Cmp {
                attr,
                op: CmpOp::Gt,
                value: self.literal()?,
            }),
            Some(Token::Ge) => Ok(Predicate::Cmp {
                attr,
                op: CmpOp::Ge,
                value: self.literal()?,
            }),
            Some(Token::Is) => {
                let negated = if matches!(self.peek(), Some(Token::Not)) {
                    self.next();
                    true
                } else {
                    false
                };
                self.expect(&Token::Null, "NULL")?;
                let p = Predicate::is_null(attr);
                Ok(if negated { p.not() } else { p })
            }
            Some(Token::In) => {
                self.expect(&Token::LBracket, "[")?;
                let lo = self.expect_number("range lower bound")?;
                self.expect(&Token::Comma, ",")?;
                let hi = self.expect_number("range upper bound")?;
                self.expect(&Token::RParen, ")")?;
                Ok(Predicate::range(attr, lo, hi))
            }
            Some(t) => Err(ParseError::Unexpected {
                at: self.pos - 1,
                found: format!("{t:?}"),
                expected: "comparison operator, IS, or IN",
            }),
            None => Err(ParseError::UnexpectedEnd {
                expected: "comparison operator",
            }),
        }
    }

    /// Number, string, or boolean literal. Integral numbers become
    /// [`Value::Int`] so that integer-attribute comparisons stay exact.
    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Number(v)) => {
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    Ok(Value::Int(v as i64))
                } else {
                    Ok(Value::Float(v))
                }
            }
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::True) => Ok(Value::Bool(true)),
            Some(Token::False) => Ok(Value::Bool(false)),
            Some(t) => Err(ParseError::Unexpected {
                at: self.pos - 1,
                found: format!("{t:?}"),
                expected: "literal",
            }),
            None => Err(ParseError::UnexpectedEnd {
                expected: "literal",
            }),
        }
    }
}

/// Parses a full query statement.
pub fn parse_query(input: &str) -> Result<ParsedQuery, ParseError> {
    let tokens = lex(input)?;
    Parser { tokens, pos: 0 }.statement()
}

/// Parses a standalone predicate (useful for building workloads from
/// strings in tests and examples).
pub fn parse_predicate(input: &str) -> Result<Predicate, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let pred = p.predicate()?;
    if let Some(t) = p.peek() {
        return Err(ParseError::Unexpected {
            at: p.pos,
            found: format!("{t:?}"),
            expected: "end of predicate",
        });
    }
    Ok(pred)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_wcq() {
        let q = parse_query(
            "BIN D ON COUNT(*) WHERE W = { age > 50 AND state = 'AL', age > 50 AND state = 'WY' };",
        )
        .unwrap();
        assert_eq!(q.query.kind, QueryKind::Wcq);
        assert_eq!(q.query.len(), 2);
        assert!(q.accuracy.is_none());
    }

    #[test]
    fn parses_icq_with_accuracy() {
        let q = parse_query(
            "BIN D ON COUNT(*) WHERE W = { state = 'AL', state = 'WY' } \
             HAVING COUNT(*) > 5000000 ERROR 100 CONFIDENCE 0.9995;",
        )
        .unwrap();
        assert_eq!(
            q.query.kind,
            QueryKind::Icq {
                threshold: 5_000_000.0
            }
        );
        let acc = q.accuracy.unwrap();
        assert_eq!(acc.alpha(), 100.0);
        assert!((acc.beta() - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn parses_tcq() {
        let q = parse_query(
            "BIN D ON COUNT(*) WHERE W = { age = 1, age = 2, age = 3 } \
             ORDER BY COUNT(*) DESC LIMIT 2;",
        )
        .unwrap();
        assert_eq!(q.query.kind, QueryKind::Tcq { k: 2 });
    }

    #[test]
    fn parses_without_w_eq_prefix() {
        let q = parse_query("BIN D ON COUNT(*) WHERE { x < 5 };").unwrap();
        assert_eq!(q.query.len(), 1);
    }

    #[test]
    fn parses_range_and_null_predicates() {
        let p = parse_predicate("\"capital gain\" IN [0, 50) AND sex IS NOT NULL").unwrap();
        let s = format!("{p}");
        assert!(s.contains("capital gain IN [0, 50)"), "{s}");
        assert!(s.contains("NOT (sex IS NULL)"), "{s}");
    }

    #[test]
    fn precedence_not_and_or() {
        // NOT a AND b OR c == ((NOT a) AND b) OR c
        let p = parse_predicate("NOT x = 1 AND y = 2 OR z = 3").unwrap();
        assert_eq!(format!("{p}"), "((NOT (x = 1) AND y = 2) OR z = 3)");
    }

    #[test]
    fn parenthesized_grouping() {
        let p = parse_predicate("x = 1 AND (y = 2 OR z = 3)").unwrap();
        assert_eq!(format!("{p}"), "(x = 1 AND (y = 2 OR z = 3))");
    }

    #[test]
    fn integral_literals_are_ints() {
        let p = parse_predicate("x = 5").unwrap();
        assert_eq!(p, Predicate::eq("x", 5_i64));
        let p = parse_predicate("x = 5.5").unwrap();
        assert_eq!(p, Predicate::eq("x", 5.5));
        let p = parse_predicate("b = TRUE").unwrap();
        assert_eq!(p, Predicate::eq("b", true));
    }

    #[test]
    fn bad_limit_rejected() {
        let r = parse_query("BIN D ON COUNT(*) WHERE { x = 1 } ORDER BY COUNT(*) LIMIT 0;");
        assert!(matches!(r, Err(ParseError::BadLimit(_))));
        let r = parse_query("BIN D ON COUNT(*) WHERE { x = 1 } ORDER BY COUNT(*) LIMIT 2.5;");
        assert!(matches!(r, Err(ParseError::BadLimit(_))));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let r = parse_query("BIN D ON COUNT(*) WHERE { x = 1 }; banana");
        assert!(matches!(r, Err(ParseError::Unexpected { .. })));
    }

    #[test]
    fn invalid_confidence_rejected() {
        let r = parse_query("BIN D ON COUNT(*) WHERE { x = 1 } ERROR 10 CONFIDENCE 1.5;");
        assert!(matches!(r, Err(ParseError::Accuracy(_))));
    }

    #[test]
    fn missing_pieces_reported() {
        assert!(matches!(
            parse_query("BIN D ON"),
            Err(ParseError::UnexpectedEnd { .. })
        ));
        assert!(parse_query("SELECT * FROM t").is_err());
    }

    #[test]
    fn paper_example_state_population() {
        // From Section 3.1 of the paper (lightly adapted quoting).
        let q = parse_query(
            "BIN D ON COUNT(*) WHERE W = {state='AL', state='WY'} HAVING COUNT(*) > 5000000;",
        )
        .unwrap();
        assert_eq!(q.query.kind, QueryKind::Icq { threshold: 5e6 });
        assert_eq!(q.query.workload[0], Predicate::eq("state", "AL"));
    }
}
