//! Parser for the concrete APEx query syntax (Section 3):
//!
//! ```text
//! BIN D ON COUNT(*) WHERE W = { <pred> [, <pred>]* }
//!   [HAVING COUNT(*) > <number>]
//!   [ORDER BY COUNT(*) [DESC] LIMIT <int>]
//!   [ERROR <number> CONFIDENCE <number>] ;
//! ```
//!
//! Predicates support comparisons (`= != < <= > >=`), half-open ranges
//! (`attr IN [lo, hi)`), `attr IS [NOT] NULL`, `AND` / `OR` / `NOT`, and
//! parentheses. String literals use single quotes.

mod lexer;
mod parse;

pub use lexer::{LexError, Token};
pub use parse::{parse_predicate, parse_query, ParseError, ParsedQuery};
