//! Tokenizer for the APEx query syntax.

/// A lexical token. Keywords are case-insensitive and normalized to their
/// dedicated variants; everything else that looks like a word becomes an
/// [`Token::Ident`].
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Keywords.
    /// `BIN`
    Bin,
    /// `ON`
    On,
    /// `COUNT`
    Count,
    /// `WHERE`
    Where,
    /// `HAVING`
    Having,
    /// `ORDER`
    Order,
    /// `BY`
    By,
    /// `LIMIT`
    Limit,
    /// `DESC`
    Desc,
    /// `ERROR`
    ErrorKw,
    /// `CONFIDENCE`
    Confidence,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `IS`
    Is,
    /// `NULL`
    Null,
    /// `IN`
    In,
    /// `TRUE`
    True,
    /// `FALSE`
    False,

    // Literals and identifiers.
    /// Bare identifier or double-quoted attribute name.
    Ident(String),
    /// Numeric literal (always lexed as f64; integer-ness is contextual).
    Number(f64),
    /// Single-quoted string literal.
    Str(String),

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A lexing failure with byte position context.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset into the input where lexing failed.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input` into a vector of tokens.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string".into(),
                    });
                }
                out.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            '"' => {
                // Double-quoted attribute names, as the paper writes them
                // ("capital gain").
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated quoted identifier".into(),
                    });
                }
                out.push(Token::Ident(input[start..j].to_string()));
                i = j + 1;
            }
            _ if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()))
                || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let start = i;
                i += 1; // consume sign / first digit / leading dot
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let v: f64 = text.parse().map_err(|_| LexError {
                    position: start,
                    message: format!("invalid number {text:?}"),
                })?;
                out.push(Token::Number(v));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                out.push(keyword_or_ident(word));
            }
            _ => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn keyword_or_ident(word: &str) -> Token {
    match word.to_ascii_uppercase().as_str() {
        "BIN" => Token::Bin,
        "ON" => Token::On,
        "COUNT" => Token::Count,
        "WHERE" => Token::Where,
        "HAVING" => Token::Having,
        "ORDER" => Token::Order,
        "BY" => Token::By,
        "LIMIT" => Token::Limit,
        "DESC" => Token::Desc,
        "ERROR" => Token::ErrorKw,
        "CONFIDENCE" => Token::Confidence,
        "AND" => Token::And,
        "OR" => Token::Or,
        "NOT" => Token::Not,
        "IS" => Token::Is,
        "NULL" => Token::Null,
        "IN" => Token::In,
        "TRUE" => Token::True,
        "FALSE" => Token::False,
        _ => Token::Ident(word.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            lex("bin On WHERE").unwrap(),
            vec![Token::Bin, Token::On, Token::Where]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            lex("= != <> < <= > >=").unwrap(),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            lex("42 -7 3.5 1e-3 .25").unwrap(),
            vec![
                Token::Number(42.0),
                Token::Number(-7.0),
                Token::Number(3.5),
                Token::Number(1e-3),
                Token::Number(0.25)
            ]
        );
    }

    #[test]
    fn strings_and_quoted_idents() {
        assert_eq!(
            lex("'M' \"capital gain\"").unwrap(),
            vec![Token::Str("M".into()), Token::Ident("capital gain".into())]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn bad_character_errors() {
        let err = lex("a # b").unwrap_err();
        assert_eq!(err.position, 2);
    }

    #[test]
    fn count_star_sequence() {
        assert_eq!(
            lex("COUNT(*)").unwrap(),
            vec![Token::Count, Token::LParen, Token::Star, Token::RParen]
        );
    }
}
