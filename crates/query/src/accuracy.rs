//! The `(α, β)` accuracy requirement (Definitions 3.1–3.3).

/// Errors raised when constructing an accuracy requirement.
#[derive(Debug, Clone, PartialEq)]
pub enum AccuracyError {
    /// `α` must be strictly positive and finite.
    InvalidAlpha(f64),
    /// `β` must lie in `(0, 1)`.
    InvalidBeta(f64),
}

impl std::fmt::Display for AccuracyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccuracyError::InvalidAlpha(a) => {
                write!(f, "alpha must be positive and finite, got {a}")
            }
            AccuracyError::InvalidBeta(b) => write!(f, "beta must be in (0, 1), got {b}"),
        }
    }
}

impl std::error::Error for AccuracyError {}

/// An `(α, β)` accuracy requirement: with probability at least `1 − β`,
/// the answer error is bounded by `α`.
///
/// * For a WCQ the error is `‖y − q_W(D)‖∞` (Definition 3.1).
/// * For an ICQ / TCQ, `α` bounds the count distance at which a bin may be
///   mislabeled (Definitions 3.2 / 3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySpec {
    alpha: f64,
    beta: f64,
}

impl AccuracySpec {
    /// Builds a validated accuracy requirement.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite `α`, and `β ∉ (0, 1)`.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, AccuracyError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(AccuracyError::InvalidAlpha(alpha));
        }
        if !(beta > 0.0 && beta < 1.0) {
            return Err(AccuracyError::InvalidBeta(beta));
        }
        Ok(Self { alpha, beta })
    }

    /// The error bound `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The failure probability `β`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The confidence `1 − β` (as the concrete syntax writes it).
    #[inline]
    pub fn confidence(&self) -> f64 {
        1.0 - self.beta
    }

    /// A copy with `α` scaled by `factor` (used by sweeps over `α/|D|`).
    pub fn with_alpha(&self, alpha: f64) -> Result<Self, AccuracyError> {
        Self::new(alpha, self.beta)
    }
}

impl std::fmt::Display for AccuracySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ERROR {} CONFIDENCE {}", self.alpha, self.confidence())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_spec_round_trips() {
        let a = AccuracySpec::new(10.0, 0.0005).unwrap();
        assert_eq!(a.alpha(), 10.0);
        assert_eq!(a.beta(), 0.0005);
        assert!((a.confidence() - 0.9995).abs() < 1e-12);
    }

    #[test]
    fn invalid_alpha_rejected() {
        assert!(matches!(
            AccuracySpec::new(0.0, 0.1),
            Err(AccuracyError::InvalidAlpha(_))
        ));
        assert!(matches!(
            AccuracySpec::new(-1.0, 0.1),
            Err(AccuracyError::InvalidAlpha(_))
        ));
        assert!(matches!(
            AccuracySpec::new(f64::INFINITY, 0.1),
            Err(AccuracyError::InvalidAlpha(_))
        ));
        assert!(matches!(
            AccuracySpec::new(f64::NAN, 0.1),
            Err(AccuracyError::InvalidAlpha(_))
        ));
    }

    #[test]
    fn invalid_beta_rejected() {
        assert!(matches!(
            AccuracySpec::new(1.0, 0.0),
            Err(AccuracyError::InvalidBeta(_))
        ));
        assert!(matches!(
            AccuracySpec::new(1.0, 1.0),
            Err(AccuracyError::InvalidBeta(_))
        ));
        assert!(matches!(
            AccuracySpec::new(1.0, -0.2),
            Err(AccuracyError::InvalidBeta(_))
        ));
    }

    #[test]
    fn with_alpha_preserves_beta() {
        let a = AccuracySpec::new(10.0, 0.05).unwrap();
        let b = a.with_alpha(20.0).unwrap();
        assert_eq!(b.alpha(), 20.0);
        assert_eq!(b.beta(), 0.05);
    }
}
