//! Strategy matrices for the matrix (strategy-based) mechanism.
//!
//! Section 5.2: instead of answering the workload `W` directly, APEx can
//! answer a *strategy* `A` with low sensitivity `‖A‖₁` and reconstruct
//! `W x ≈ (W A⁺)(A x + η)`. The paper uses the hierarchical `H₂` strategy
//! of Hay et al. for all benchmark queries; we implement the general
//! `H_b` family (branching factor `b`), the identity strategy, and the
//! trivial "workload as strategy" fallback.

use std::sync::Arc;

use apex_linalg::{
    CsrBuilder, CsrMatrix, HierarchicalOperator, IdentityOperator, Matrix, SharedOperator,
};

/// Errors raised while building a strategy matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyError {
    /// Strategies require at least one domain cell.
    EmptyDomain,
    /// Branching factor must be at least 2.
    BadBranching(usize),
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::EmptyDomain => write!(f, "strategy requires a non-empty domain"),
            StrategyError::BadBranching(b) => {
                write!(f, "hierarchical branching factor must be >= 2, got {b}")
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// A strategy for answering a workload through the matrix mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Answer every domain cell directly (`A = I`). Optimal for disjoint
    /// histogram workloads.
    Identity,
    /// The hierarchical strategy `H_b`: interval sums arranged in a
    /// `b`-ary tree over the cells, leaves included. `H2` (the paper's
    /// choice) is `Hierarchical { branching: 2 }`.
    Hierarchical {
        /// Tree fan-out (`b >= 2`).
        branching: usize,
    },
}

impl Strategy {
    /// The paper's default `H2` strategy.
    pub const H2: Strategy = Strategy::Hierarchical { branching: 2 };

    /// Builds the strategy matrix over `n_cells` domain cells, densely.
    ///
    /// Thin wrapper over [`Strategy::build_csr`] — the hierarchical family
    /// is constructed sparsely and only materialized on request. Prefer the
    /// CSR form in mechanism code; the dense form exists for numerical
    /// routines (QR/pseudoinverse) and tests.
    ///
    /// # Errors
    /// * [`StrategyError::EmptyDomain`] when `n_cells == 0`.
    /// * [`StrategyError::BadBranching`] when `branching < 2`.
    pub fn build(&self, n_cells: usize) -> Result<Matrix, StrategyError> {
        Ok(self.build_csr(n_cells)?.to_dense())
    }

    /// Builds the strategy matrix over `n_cells` domain cells in CSR form,
    /// without ever materializing the dense tree: every row of `H_b` is a
    /// contiguous run of ones over the node's interval, so the sparse
    /// construction is `O(total interval length)` = `O(n log_b n)` instead
    /// of the dense `O(n²/  (b−1))` cells.
    ///
    /// The returned matrix always has full column rank (it contains every
    /// singleton row), which the pseudoinverse in the mechanism requires.
    ///
    /// # Errors
    /// * [`StrategyError::EmptyDomain`] when `n_cells == 0`.
    /// * [`StrategyError::BadBranching`] when `branching < 2`.
    pub fn build_csr(&self, n_cells: usize) -> Result<CsrMatrix, StrategyError> {
        if n_cells == 0 {
            return Err(StrategyError::EmptyDomain);
        }
        match self {
            Strategy::Identity => Ok(CsrMatrix::identity(n_cells)),
            Strategy::Hierarchical { branching } => {
                if *branching < 2 {
                    return Err(StrategyError::BadBranching(*branching));
                }
                Ok(hierarchical(n_cells, *branching))
            }
        }
    }

    /// Hands out the strategy as a matrix-free [`SharedOperator`] — the
    /// primary representation for mechanism code since the operator
    /// refactor. `apply` answers the strategy, `apply_transpose` +
    /// `solve_normal` compose into the pseudoinverse action `A⁺ŷ`, so the
    /// `O(n³)` dense pseudoinverse is never materialized: the hierarchical
    /// family solves its normal equations in `O(n)` per right-hand side.
    ///
    /// The operator's rows are in the exact order of
    /// [`Strategy::build_csr`], and `apply`/`apply_transpose` match the
    /// CSR matvecs bit for bit (property-tested).
    ///
    /// # Errors
    /// * [`StrategyError::EmptyDomain`] when `n_cells == 0`.
    /// * [`StrategyError::BadBranching`] when `branching < 2`.
    pub fn operator(&self, n_cells: usize) -> Result<SharedOperator, StrategyError> {
        if n_cells == 0 {
            return Err(StrategyError::EmptyDomain);
        }
        match self {
            Strategy::Identity => Ok(Arc::new(IdentityOperator::new(n_cells))),
            Strategy::Hierarchical { branching } => {
                if *branching < 2 {
                    return Err(StrategyError::BadBranching(*branching));
                }
                Ok(Arc::new(
                    HierarchicalOperator::new(n_cells, *branching)
                        .expect("non-empty domain checked above"),
                ))
            }
        }
    }

    /// Grows an existing operator of this strategy to `n_new` cells after
    /// a domain extension, reusing the operator's precompute when it
    /// supports incremental growth ([`apex_linalg::StrategyOperator::extend_to`])
    /// and falling back to a fresh [`Strategy::operator`] build otherwise.
    ///
    /// Either path yields an operator **bit-identical** to
    /// `self.operator(n_new)` — incremental maintenance must be
    /// indistinguishable from a rebuild (property-tested).
    ///
    /// # Errors
    /// * [`StrategyError::EmptyDomain`] when `n_new == 0`.
    /// * [`StrategyError::BadBranching`] when `branching < 2`.
    pub fn extend_to(
        &self,
        op: &SharedOperator,
        n_new: usize,
    ) -> Result<SharedOperator, StrategyError> {
        if n_new == 0 {
            return Err(StrategyError::EmptyDomain);
        }
        if let Strategy::Hierarchical { branching } = self {
            if *branching < 2 {
                return Err(StrategyError::BadBranching(*branching));
            }
        }
        match op.extend_to(n_new) {
            Some(grown) => Ok(grown),
            None => self.operator(n_new),
        }
    }

    /// Human-readable name used by benchmark output.
    pub fn name(&self) -> String {
        match self {
            Strategy::Identity => "identity".to_string(),
            Strategy::Hierarchical { branching } => format!("H{branching}"),
        }
    }
}

/// Builds the `H_b` hierarchy over `n` cells: one row per tree node
/// covering the node's interval `[lo, hi)`, emitted directly in CSR.
/// Every singleton leaf appears as a row, so the matrix has full column
/// rank.
fn hierarchical(n: usize, b: usize) -> CsrMatrix {
    // Collect intervals breadth-first; skip the root when it would
    // duplicate a single leaf (n == 1).
    let mut intervals: Vec<(usize, usize)> = Vec::new();
    let mut frontier = vec![(0usize, n)];
    while let Some((lo, hi)) = frontier.pop() {
        intervals.push((lo, hi));
        let len = hi - lo;
        if len <= 1 {
            continue;
        }
        // Split [lo, hi) into b nearly equal children.
        let base = len / b;
        let extra = len % b;
        let mut start = lo;
        for i in 0..b {
            let width = base + usize::from(i < extra);
            if width == 0 {
                continue;
            }
            frontier.push((start, start + width));
            start += width;
        }
    }
    // Deduplicate (n == 1 yields a single interval; nested equal spans
    // cannot occur otherwise, but dedup is cheap insurance).
    intervals.sort_unstable();
    intervals.dedup();

    let mut m = CsrBuilder::new(n);
    for &(lo, hi) in &intervals {
        m.push_interval_row(lo, hi);
    }
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex_linalg::{l1_operator_norm, pinv};

    #[test]
    fn identity_strategy() {
        let a = Strategy::Identity.build(5).unwrap();
        assert_eq!(a, Matrix::identity(5));
        assert_eq!(l1_operator_norm(&a), 1.0);
    }

    #[test]
    fn h2_sensitivity_is_logarithmic() {
        // For n a power of two, each cell appears in log2(n) + 1 nodes.
        let a = Strategy::H2.build(8).unwrap();
        assert_eq!(l1_operator_norm(&a), 4.0); // log2(8) + 1
        let a = Strategy::H2.build(16).unwrap();
        assert_eq!(l1_operator_norm(&a), 5.0);
    }

    #[test]
    fn h2_contains_all_singletons() {
        let a = Strategy::H2.build(6).unwrap();
        for c in 0..6 {
            let found =
                (0..a.rows()).any(|r| (0..6).all(|j| a[(r, j)] == if j == c { 1.0 } else { 0.0 }));
            assert!(found, "missing singleton for cell {c}");
        }
    }

    #[test]
    fn h2_has_full_column_rank() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let a = Strategy::H2.build(n).unwrap();
            // pinv only succeeds on full-rank input.
            let ap = pinv(&a).unwrap();
            let papa = ap.matmul(&a).unwrap();
            assert!(papa.approx_eq(&Matrix::identity(n), 1e-8), "n = {n}");
        }
    }

    #[test]
    fn higher_branching_reduces_sensitivity_for_wide_domains() {
        let h2 = Strategy::H2.build(64).unwrap();
        let h8 = Strategy::Hierarchical { branching: 8 }.build(64).unwrap();
        assert!(l1_operator_norm(&h8) < l1_operator_norm(&h2));
    }

    #[test]
    fn single_cell_domain() {
        let a = Strategy::H2.build(1).unwrap();
        assert_eq!(a.shape(), (1, 1));
        assert_eq!(a[(0, 0)], 1.0);
    }

    #[test]
    fn csr_and_dense_forms_agree() {
        for n in [1usize, 2, 7, 16, 33] {
            for strat in [
                Strategy::Identity,
                Strategy::H2,
                Strategy::Hierarchical { branching: 4 },
            ] {
                let sparse = strat.build_csr(n).unwrap();
                let dense = strat.build(n).unwrap();
                assert_eq!(sparse.to_dense(), dense, "{} over {n}", strat.name());
                assert_eq!(
                    sparse.l1_operator_norm(),
                    apex_linalg::l1_operator_norm(&dense)
                );
            }
        }
    }

    #[test]
    fn h2_is_sparse_at_scale() {
        // Density of H_b over n cells is Θ(log n / n): storing it densely
        // wastes >95% of the cells from n = 64 on.
        let a = Strategy::H2.build_csr(256).unwrap();
        assert!(a.density() < 0.04, "density {}", a.density());
        assert_eq!(
            a.nnz(),
            (0..a.rows()).map(|i| a.row(i).0.len()).sum::<usize>()
        );
    }

    #[test]
    fn operator_agrees_with_csr_bit_for_bit() {
        for n in [1usize, 2, 6, 17, 33] {
            for strat in [
                Strategy::Identity,
                Strategy::H2,
                Strategy::Hierarchical { branching: 3 },
            ] {
                let csr = strat.build_csr(n).unwrap();
                let op = strat.operator(n).unwrap();
                assert_eq!(op.shape(), csr.shape(), "{} over {n}", strat.name());
                assert_eq!(op.l1_operator_norm(), csr.l1_operator_norm());

                let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.37 - 1.0).collect();
                assert_eq!(op.apply(&x).unwrap(), csr.matvec(&x).unwrap());

                let y: Vec<f64> = (0..csr.rows()).map(|i| ((i % 9) as f64) - 4.0).collect();
                assert_eq!(
                    op.apply_transpose(&y).unwrap(),
                    csr.transpose().matvec(&y).unwrap()
                );
            }
        }
    }

    #[test]
    fn operator_pinv_apply_matches_dense_pinv() {
        for n in [3usize, 8, 13] {
            let op = Strategy::H2.operator(n).unwrap();
            let dense = Strategy::H2.build(n).unwrap();
            let ap = pinv(&dense).unwrap();
            let y: Vec<f64> = (0..op.rows()).map(|i| (i as f64).cos()).collect();
            let via_op = op.pinv_apply(&y).unwrap();
            let via_dense = ap.matvec(&y).unwrap();
            for (a, b) in via_op.iter().zip(&via_dense) {
                assert!((a - b).abs() < 1e-10, "n = {n}");
            }
        }
    }

    #[test]
    fn extend_to_matches_fresh_operator_bit_for_bit() {
        for strat in [
            Strategy::Identity,
            Strategy::H2,
            Strategy::Hierarchical { branching: 3 },
        ] {
            for &(n_old, n_new) in &[(1usize, 4usize), (6, 6), (6, 19), (32, 33)] {
                let op = strat.operator(n_old).unwrap();
                let grown = strat.extend_to(&op, n_new).unwrap();
                let fresh = strat.operator(n_new).unwrap();
                assert_eq!(
                    grown.shape(),
                    fresh.shape(),
                    "{} {n_old}->{n_new}",
                    strat.name()
                );
                assert_eq!(
                    grown.l1_operator_norm().to_bits(),
                    fresh.l1_operator_norm().to_bits()
                );
                let x: Vec<f64> = (0..n_new).map(|i| (i as f64) * 0.41 - 2.0).collect();
                let (ya, yb) = (grown.apply(&x).unwrap(), fresh.apply(&x).unwrap());
                for (a, b) in ya.iter().zip(&yb) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                let rhs: Vec<f64> = (0..n_new).map(|i| (i as f64).cos()).collect();
                let (sa, sb) = (
                    grown.solve_normal(&rhs).unwrap(),
                    fresh.solve_normal(&rhs).unwrap(),
                );
                for (a, b) in sa.iter().zip(&sb) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn extend_to_rejects_empty_target() {
        let op = Strategy::H2.operator(4).unwrap();
        assert!(matches!(
            Strategy::H2.extend_to(&op, 0),
            Err(StrategyError::EmptyDomain)
        ));
    }

    #[test]
    fn operator_errors_match_builder_errors() {
        assert!(matches!(
            Strategy::Identity.operator(0),
            Err(StrategyError::EmptyDomain)
        ));
        assert!(matches!(
            Strategy::Hierarchical { branching: 1 }.operator(4),
            Err(StrategyError::BadBranching(1))
        ));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            Strategy::Identity.build(0),
            Err(StrategyError::EmptyDomain)
        ));
        assert!(matches!(
            Strategy::Hierarchical { branching: 1 }.build(4),
            Err(StrategyError::BadBranching(1))
        ));
    }

    #[test]
    fn names() {
        assert_eq!(Strategy::Identity.name(), "identity");
        assert_eq!(Strategy::H2.name(), "H2");
        assert_eq!(Strategy::Hierarchical { branching: 4 }.name(), "H4");
    }
}
